"""Analytic IPV fitness surrogate: O(1) prefilter for paper-scale GAs.

The paper ran GA populations of 20 000 on a 200-CPU cluster.  After the
columnar engine the per-candidate cost is small but every candidate still
pays a full trace simulation, so *population scale* is the bottleneck.
This module removes it with three cooperating pieces:

1. **Per-trace features** (:class:`WorkloadFeatures`).  The vectorized
   Mattson profiler (:func:`repro.obs.analytics.profile_trace`) computes,
   once per ``(trace, num_sets)``, the aggregate per-set stack-distance
   histogram — the sufficient statistic for *every* LRU-like miss
   estimate.  Features are memoized in-process (bounded LRU, like the
   workload memos of :mod:`repro.ga.fitness`) and cached on disk in the
   eval result-cache directory keyed by a digest of the trace bytes, so a
   20k-population run pays the profiling cost once, ever.

2. **An analytic miss-rate surrogate** (:class:`SurrogateModel`), a
   Che/Fagin-style closed form over the per-start survival depths of a
   block-touch Markov chain.  In distinct-address units a block at
   recency position ``p`` is pushed down by an intervening first-touch
   event only if the event comes *from below* — a hit at source depth
   ``s > p`` promoted to ``promo[s] <= p`` — or misses (insertion at
   ``ins <= p``; the bottom position is additionally evicted by every
   miss).  Events that stay above ``p`` are excluded and the rates
   renormalised:

       ``q(p) = [fr·push_miss(p) + (1-fr)·sum_{s>p} Wh[s]·[promo[s]<=p]]
                / [fr + (1-fr)·sum_{s>p} Wh[s]]``

   A block left at ``t`` then survives ``N(t) = sum_{p=t}^{k-1} 1/q(p)``
   distinct addresses, and its reuse-miss probability is read off the
   trace's Mattson curve at ``N(t)``.  Which start positions matter is a
   Markov chain over touches: a hit at ``s`` moves the block to
   ``promo[s]``, a miss teleports it to ``ins``, and births follow the
   cold-fill distribution — fills into a not-yet-full set land at
   ``min(ins, fill order)``, the founder effect that lets deep insertion
   pin early reused blocks.  Because protected positions are absorbing
   on trace timescales the chain is averaged over *touch indices* with
   exact weights from the per-block touch-count histogram (reuse events
   are size-biased toward hot blocks; a geometric approximation inverts
   rankings on hit-rich workloads), and the environment (``fr``,
   ``Wh``) is refreshed from the chain's own solution for a few outer
   passes.  For the true-LRU vector the push numerator equals the
   denominator at every ``p``, so ``q == 1``, ``N == k`` and the model
   reproduces the exact LRU miss count — the anchor the correctness
   tests pin down.  The model lives in recency-stack (Mattson) space:
   against the ``substrate="lru"`` simulator rank fidelity is high
   (Spearman rho ~0.8+ on streaming workloads); the tree-PLRU substrate
   adds genuine reordering the stack model cannot see (the two
   *simulators* only agree at rho ~0.6), which is precisely what the
   prefilter's self-audit-and-deactivate safety net is for.  All
   parameters are per-workload (each workload simulates on its own
   cache).  Scoring a whole population is a few numpy einsums per
   workload over ``(N, k, k)`` tensors — milliseconds for 20k
   candidates — with a pure-Python twin behind the usual
   ``numpy_or_none`` seam.

3. **A prefilter + self-audit stage** (:class:`SurrogatePrefilter`) and a
   **cross-generation fitness memo** (:class:`FitnessMemo`).  The
   prefilter ranks a candidate batch analytically and only the top
   ``keep`` fraction (plus a random control sample) is simulated; the
   control sample's surrogate-vs-simulated Spearman rank correlation is
   reported live, and if it drops below ``rho_floor`` the prefilter
   *refuses to prefilter* (with a warning) and the search falls back to
   simulating everything.  The memo guarantees a canonical IPV tuple is
   never simulated twice in a run — across generations, hill-climbing
   passes and duplicate genomes alike — while returning the exact float
   the simulator produced (bit-identical results by construction).
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import random
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.ipv import IPV, lru_ipv
from ..kernels.tables import numpy_or_none
from ..obs.spans import span
from .fitness import FitnessEvaluator, _validate_ipv_entries

__all__ = [
    "SURROGATE_SCHEMA",
    "FitnessMemo",
    "SurrogateModel",
    "SurrogatePrefilter",
    "WorkloadFeatures",
    "clear_feature_memo",
    "feature_memo_stats",
    "features_for_trace",
    "publish_surrogate_gauges",
    "spearman_rho",
    "surrogate_code_version",
    "trace_digest",
]

logger = logging.getLogger(__name__)

#: Bump when the on-disk feature payload layout (or the feature
#: definition itself) changes — old cache entries then miss cleanly.
SURROGATE_SCHEMA = "repro-surrogate-features/2"

#: Feature histograms keep per-set stack distances up to ``depth - 1``
#: exactly plus one tail bucket; 8x a 16-way associativity leaves ample
#: headroom for effective depths beyond ``k`` (scan resistance) while
#: keeping the cached payload tiny.
DEFAULT_FEATURE_DEPTH_FACTOR = 8

#: Push probabilities are floored here before inversion: a structurally
#: unreachable position (q == 0) means "effectively never evicted", which
#: the depth clamp turns into the feature-depth ceiling rather than inf.
_Q_FLOOR = 1e-9

#: Fixed-point refinements of the environment (miss rate + promotion
#: targets); the LRU-seeded first pass is usually within a few percent
#: and the anchor cases are exact fixed points, so few passes suffice.
_OUTER_ITERS = 4

#: Power-iteration steps for the per-candidate stationary distribution.
#: Misses teleport the chain to the insertion state, so mass mixes
#: geometrically and 16 steps resolve it far below rank resolution.
_POWER_ITERS = 16

#: Candidates scored per numpy pass: bounds the (chunk, k, k) one-hot
#: promotion tensor to a few MB regardless of population size.
_SCORE_CHUNK = 4096

#: Per-block touch-count histogram buckets (last bucket: >= cap).  Must
#: exceed ``_POWER_ITERS + 2`` so every chain step's weight is exact.
_TOUCH_CAP = 64


# ----------------------------------------------------------------------
# Feature extraction.
# ----------------------------------------------------------------------
def trace_digest(addresses: Sequence[int]) -> str:
    """sha256 over the trace's int64-LE address bytes (cache identity)."""
    np = numpy_or_none()
    digest = hashlib.sha256()
    if np is not None:
        digest.update(np.ascontiguousarray(addresses, dtype="<i8").tobytes())
    else:
        for address in addresses:
            digest.update(int(address).to_bytes(8, "little", signed=True))
    return digest.hexdigest()


_surrogate_code_memo: Optional[str] = None


def surrogate_code_version() -> str:
    """Digest over the sources that determine feature *values*.

    The eval-cache ``code_version`` tracks simulator semantics; features
    additionally depend on this module and the Mattson profiler, so their
    disk entries carry their own digest and invalidate independently.
    """
    global _surrogate_code_memo
    if _surrogate_code_memo is not None:
        return _surrogate_code_memo
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for rel in ("ga/surrogate.py", "obs/analytics/profile.py"):
        try:
            digest.update((root / rel).read_bytes())
        except OSError:  # pragma: no cover - racing file removal
            pass
        digest.update(b"\0")
    _surrogate_code_memo = digest.hexdigest()[:16]
    return _surrogate_code_memo


class WorkloadFeatures:
    """Sufficient statistics of one trace for the analytic surrogate.

    ``counts[d]`` aggregates, over all sets, the reuses at per-set stack
    distance ``d`` (``d < depth``); ``tail`` collects ``d >= depth``;
    ``cold`` is the compulsory misses.  :meth:`misses_at` is then the
    exact set-associative LRU miss count at any integer depth ``c``
    ``<= depth`` — the Mattson identity the surrogate interpolates.
    """

    __slots__ = ("accesses", "cold", "counts", "tail", "depth", "touches",
                 "_suffix")

    def __init__(self, accesses: int, cold: int, counts: Sequence[int],
                 tail: int, depth: int,
                 touches: Optional[Sequence[int]] = None):
        self.accesses = int(accesses)
        self.cold = int(cold)
        self.counts = [int(c) for c in counts]
        self.tail = int(tail)
        self.depth = int(depth)
        #: touches[m-1] = # distinct blocks touched exactly m times
        #: (last bucket: >= len(touches) touches); sizes the per-step
        #: weights of the block-touch chain.  ``None`` falls back to a
        #: geometric approximation in the model.
        self.touches = [int(t) for t in touches] if touches else None
        if len(self.counts) != self.depth:
            raise ValueError(
                f"expected {self.depth} distance buckets, got {len(self.counts)}"
            )
        # suffix[c] = misses at integer depth c, c in 0..depth.
        suffix = [0.0] * (self.depth + 1)
        running = float(self.cold + self.tail)
        suffix[self.depth] = running
        for d in range(self.depth - 1, -1, -1):
            running += self.counts[d]
            suffix[d] = running
        self._suffix = suffix

    def misses_at(self, depth: Union[int, float]) -> float:
        """LRU misses at (possibly fractional) per-set depth ``depth``.

        Integer depths reproduce the simulator exactly (whole trace, no
        warmup window); fractional depths interpolate linearly between
        the two neighbouring Mattson points.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        clamped = min(float(depth), float(self.depth))
        lo = int(math.floor(clamped))
        hi = min(lo + 1, self.depth)
        frac = clamped - lo
        return self._suffix[lo] * (1.0 - frac) + self._suffix[hi] * frac

    def to_payload(self) -> dict:
        payload = {
            "schema": SURROGATE_SCHEMA,
            "accesses": self.accesses,
            "cold": self.cold,
            "counts": list(self.counts),
            "tail": self.tail,
            "depth": self.depth,
        }
        if self.touches is not None:
            payload["touches"] = list(self.touches)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "WorkloadFeatures":
        if payload.get("schema") != SURROGATE_SCHEMA:
            raise ValueError("not a surrogate feature payload")
        return cls(payload["accesses"], payload["cold"], payload["counts"],
                   payload["tail"], payload["depth"],
                   touches=payload.get("touches"))


def _feature_cache_path(root: Path, key: str) -> Path:
    return root / "surrogate" / key[:2] / f"{key}.json"


def _feature_cache_key(digest: str, num_sets: int, depth: int) -> str:
    payload = {
        "schema": SURROGATE_SCHEMA,
        "code": surrogate_code_version(),
        "trace": digest,
        "num_sets": int(num_sets),
        "depth": int(depth),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _feature_cache_get(root: Path, key: str) -> Optional[WorkloadFeatures]:
    try:
        with open(_feature_cache_path(root, key)) as handle:
            payload = json.load(handle)
        return WorkloadFeatures.from_payload(payload)
    except (OSError, ValueError, KeyError):
        return None


def _feature_cache_put(root: Path, key: str, features: WorkloadFeatures) -> None:
    path = _feature_cache_path(root, key)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w") as handle:
            json.dump(features.to_payload(), handle, separators=(",", ":"))
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - cache dir unwritable
        try:
            tmp.unlink()
        except OSError:
            pass


# In-process bounded memo, keyed by the trace *derivation* (not address
# list identity) exactly like the ColumnarTrace memo in ga.fitness.
_FEATURE_MEMO: "OrderedDict[tuple, WorkloadFeatures]" = OrderedDict()
_FEATURE_MEMO_LIMIT = 128
_FEATURE_MEMO_STATS = {"hits": 0, "misses": 0, "disk_hits": 0, "evictions": 0}


def clear_feature_memo() -> None:
    """Drop the in-process feature memo (tests, memory pressure)."""
    _FEATURE_MEMO.clear()
    for key in _FEATURE_MEMO_STATS:
        _FEATURE_MEMO_STATS[key] = 0


def feature_memo_stats() -> dict:
    """Snapshot of the feature memo: size, limit, hit/miss/disk/evict."""
    lookups = _FEATURE_MEMO_STATS["hits"] + _FEATURE_MEMO_STATS["misses"]
    return {
        "size": len(_FEATURE_MEMO),
        "limit": _FEATURE_MEMO_LIMIT,
        "hits": _FEATURE_MEMO_STATS["hits"],
        "misses": _FEATURE_MEMO_STATS["misses"],
        "disk_hits": _FEATURE_MEMO_STATS["disk_hits"],
        "evictions": _FEATURE_MEMO_STATS["evictions"],
        "hit_rate": (
            _FEATURE_MEMO_STATS["hits"] / lookups if lookups else 0.0
        ),
    }


def _touch_histogram(addresses: Sequence[int]) -> List[int]:
    """``hist[m-1]`` = # distinct blocks touched exactly ``m`` times
    (last bucket: >= ``_TOUCH_CAP``)."""
    np = numpy_or_none()
    hist = [0] * _TOUCH_CAP
    if np is not None:
        _unique, counts = np.unique(
            np.asarray(addresses, dtype=np.int64), return_counts=True
        )
        capped = np.minimum(counts, _TOUCH_CAP)
        binned = np.bincount(capped, minlength=_TOUCH_CAP + 1)
        for m in range(1, _TOUCH_CAP + 1):
            hist[m - 1] = int(binned[m])
        return hist
    per_block: Dict[int, int] = {}
    for address in addresses:
        per_block[address] = per_block.get(address, 0) + 1
    for count in per_block.values():
        hist[min(count, _TOUCH_CAP) - 1] += 1
    return hist


def features_for_trace(
    addresses: Sequence[int],
    num_sets: int,
    depth: int,
    memo_key: Optional[tuple] = None,
    cache_dir: Union[None, bool, str, Path] = True,
) -> WorkloadFeatures:
    """Features of one trace, via the in-process memo and the disk cache.

    ``memo_key`` is the trace derivation (benchmark, simpoint, length,
    capacity, seed); ``None`` skips the in-process memo (ad-hoc traces).
    ``cache_dir`` follows :func:`repro.eval.parallel.resolve_cache_dir`
    semantics: ``True`` uses the eval result-cache directory, a path uses
    that directory, ``None``/``False`` disables the disk layer.
    """
    full_key = None
    if memo_key is not None:
        full_key = tuple(memo_key) + (num_sets, depth)
        cached = _FEATURE_MEMO.get(full_key)
        if cached is not None:
            _FEATURE_MEMO_STATS["hits"] += 1
            _FEATURE_MEMO.move_to_end(full_key)
            return cached
        _FEATURE_MEMO_STATS["misses"] += 1

    from ..eval.parallel import resolve_cache_dir

    root = resolve_cache_dir(cache_dir)
    disk_key = None
    features = None
    if root is not None:
        disk_key = _feature_cache_key(trace_digest(addresses), num_sets, depth)
        features = _feature_cache_get(root, disk_key)
        if features is not None:
            _FEATURE_MEMO_STATS["disk_hits"] += 1
    if features is None:
        with span("surrogate.profile", accesses=len(addresses),
                  num_sets=num_sets):
            from ..obs.analytics import profile_trace

            profile = profile_trace(
                addresses, num_sets=num_sets, max_distance=depth
            )
        counts = [0] * depth
        tail = 0
        for row in profile.set_distance_counts:
            for d in range(depth):
                counts[d] += row[d]
            tail += row[depth]  # the capped bucket collects d >= depth
        features = WorkloadFeatures(
            profile.accesses, sum(profile.set_cold), counts, tail, depth,
            touches=_touch_histogram(addresses),
        )
        if root is not None and disk_key is not None:
            _feature_cache_put(root, disk_key, features)
    if full_key is not None:
        _FEATURE_MEMO[full_key] = features
        while len(_FEATURE_MEMO) > _FEATURE_MEMO_LIMIT:
            _FEATURE_MEMO.popitem(last=False)
            _FEATURE_MEMO_STATS["evictions"] += 1
    return features


# ----------------------------------------------------------------------
# The analytic model.
# ----------------------------------------------------------------------
def _step_weights(feat: WorkloadFeatures) -> List[float]:
    """Reuse-event weight of each block-touch chain step.

    A block touched ``m`` times contributes reuses at chain steps
    ``0..m-2``, so the fraction of *reuse events* happening at step ``t``
    is ``#blocks with >= t+2 touches / total reuses`` — exact from the
    touch histogram.  Reuse mass is size-biased toward hot blocks, whose
    late touches sit in the converged (protected) regime; a geometric
    approximation (matching only the mean touches/block) badly
    underweights that regime on Zipf-like traces and inverts rankings on
    hit-rich workloads.  Weights sum to < 1; the remainder belongs to
    steps beyond ``_POWER_ITERS`` and is applied to the converged state.
    """
    reuses = feat.accesses - feat.cold
    if reuses <= 0:
        return [1.0] + [0.0] * (_POWER_ITERS - 1)
    touches = feat.touches
    if touches:
        # ge[r-1] = # blocks with >= r touches (cap bucket = >= len).
        ge = list(touches)
        for i in range(len(ge) - 2, -1, -1):
            ge[i] += ge[i + 1]
        weights = []
        for t in range(_POWER_ITERS):
            r = t + 2
            count = ge[r - 1] if r - 1 < len(ge) else ge[-1]
            weights.append(count / reuses)
        return weights
    # No histogram (legacy payload): geometric with the mean reuse rate.
    gamma = reuses / feat.accesses if feat.accesses else 0.0
    return [(1.0 - gamma) * gamma ** t for t in range(_POWER_ITERS)]


class SurrogateModel:
    """Closed-form IPV fitness estimate over an evaluator's workloads.

    Scores live in the same units as the simulated fitness (mean
    linear-CPI speedup over a predicted-LRU baseline) so surrogate and
    simulator values are directly rank-comparable; only the *ranking* is
    consumed by the prefilter.
    """

    def __init__(
        self,
        assoc: int,
        workloads: Sequence[Tuple[str, float, int, float, WorkloadFeatures]],
        base_cpi: float,
        miss_penalty: float,
        num_sets: Optional[int] = None,
    ):
        """``workloads`` rows: (name, weight, instructions, measured_frac,
        features).  ``num_sets`` enables the cold-fill (founder) birth
        states — fills into a not-yet-full set land at ``min(ins, fill
        order)``, not at ``ins`` — which dominate whenever the footprint
        is within a small factor of the cache capacity."""
        if assoc < 2:
            raise ValueError("assoc must be at least 2")
        self.assoc = assoc
        self.num_sets = num_sets
        self.workloads = list(workloads)
        if not self.workloads:
            raise ValueError("surrogate model needs at least one workload")
        self.base_cpi = float(base_cpi)
        self.miss_penalty = float(miss_penalty)
        self.depth = min(w[4].depth for w in self.workloads)
        k = assoc
        # Per-workload model parameters (each workload simulates on its
        # own cache): the LRU miss fraction fr — the *initial* guess for
        # the policy's environment miss rate, refined by the fixed point
        # — and the LRU hit-depth distribution Wh[d] seeding the
        # promotion-target crossing probabilities.
        self._params: List[Dict[str, object]] = []
        for _name, _weight, _instr, _frac, feat in self.workloads:
            lru_misses = feat.misses_at(k)
            fr = lru_misses / feat.accesses if feat.accesses else 1.0
            hits = [
                float(feat.counts[d]) for d in range(min(k, feat.depth))
            ]
            hits += [0.0] * (k - len(hits))
            hit_total = sum(hits)
            wh = [h / hit_total for h in hits] if hit_total else [0.0] * k
            self._params.append({
                "fr": fr, "wh": wh, "step_w": _step_weights(feat),
            })
        # Predicted LRU baseline cycles per benchmark name (the surrogate
        # twin of FitnessEvaluator._lru_cycles).
        self._base_cycles: Dict[str, float] = {}
        for name, weight, instructions, frac, feat in self.workloads:
            cycles = (instructions * self.base_cpi
                      + feat.misses_at(k) * frac * self.miss_penalty)
            self._base_cycles[name] = (
                self._base_cycles.get(name, 0.0) + weight * cycles
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_evaluator(
        cls,
        evaluator: FitnessEvaluator,
        cache_dir: Union[None, bool, str, Path] = True,
        depth_factor: int = DEFAULT_FEATURE_DEPTH_FACTOR,
    ) -> "SurrogateModel":
        """Build the model from a :class:`FitnessEvaluator`'s workloads.

        Reuses the evaluator's exact trace derivations (so the in-process
        feature memo and disk cache are shared with any other model built
        over the same traces) and its timing constants.
        """
        cfg = evaluator.config
        depth = max(depth_factor * cfg.assoc, 4 * cfg.assoc)
        rows: List[Tuple[str, float, int, float, WorkloadFeatures]] = []
        with span("surrogate.features", workloads=len(evaluator._workloads)):
            for index, (name, weight, addresses, instructions, _pos) in (
                enumerate(evaluator._workloads)
            ):
                wname, simpoint = evaluator._workload_keys[index]
                memo_key = (wname, simpoint, cfg.trace_length,
                            cfg.capacity_blocks, cfg.seed)
                features = features_for_trace(
                    addresses, cfg.num_sets, depth,
                    memo_key=memo_key, cache_dir=cache_dir,
                )
                frac = max(
                    0.0, 1.0 - cfg.warmup_accesses / max(1, len(addresses))
                )
                rows.append((name, weight, instructions, frac, features))
        return cls(cfg.assoc, rows, evaluator.timing.base_cpi,
                   evaluator.timing.miss_penalty, num_sets=cfg.num_sets)

    # ------------------------------------------------------------------
    def _entries_matrix(self, ipvs: Sequence) -> List[Tuple[int, ...]]:
        out = []
        for ipv in ipvs:
            entries = tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
            _validate_ipv_entries(entries, self.assoc)
            out.append(entries)
        return out

    def _batch_arrays(self, np, batch: List[Tuple[int, ...]]):
        """Population-shaped arrays reused by every workload pass."""
        k = self.assoc
        n = len(batch)
        entries = np.asarray(batch, dtype=np.int64)
        promo = entries[:, :k]
        ins = entries[:, k]
        positions = np.arange(k, dtype=np.int64)
        # ind[n, d, p] = [promo[n, d] <= p]; insmask[n, p] = [ins[n] <= p].
        ind = (promo[:, :, None] <= positions[None, None, :]).astype(
            np.float64
        )
        insmask = (ins[:, None] <= positions[None, :]).astype(np.float64)
        # onehot[n, s, t] = [promo[n, s] == t]: the hit-promotion move.
        onehot = (promo[:, :, None] == positions[None, None, :]).astype(
            np.float64
        )
        ins_onehot = np.zeros((n, k), dtype=np.float64)
        ins_onehot[np.arange(n), ins] = 1.0
        return promo, ins, ind, insmask, onehot, ins_onehot

    def _workload_predict_np(
        self, np, arrays, feat: WorkloadFeatures, params: Dict[str, object]
    ):
        """Predicted misses + mean protected depth for one workload.

        Vectorised fixed point of the block-touch Markov chain: a reuse
        from start position ``s`` survives its gap with probability read
        off the Mattson curve at the survival threshold ``N(s)``; a hit
        at ``s`` moves the block to ``promo[s]``, a miss teleports it to
        the fill state ``ins``.  Because protected positions are
        absorbing on trace timescales, the chain is averaged over a
        block's *touch sequence* (geometric weights with the per-block
        reuse rate) from the cold-fill birth distribution — founders
        born into a not-yet-full set land at ``min(ins, fill order)``,
        the effect that makes deep insertion pin early reused blocks —
        rather than evaluated at its stationary point.  The environment
        (miss rate ``fr``, promotion-target crossing probabilities) is
        refreshed from the chain's own solution.
        """
        promo, ins, ind, insmask, onehot, ins_onehot = arrays
        k = self.assoc
        n = promo.shape[0]
        rows = np.arange(n)
        suffix = np.asarray(feat._suffix, dtype=np.float64)
        cold = float(feat.cold)
        accesses = float(max(1, feat.accesses))
        reuses = float(feat.accesses - feat.cold)
        cap = float(feat.depth)
        positions = np.arange(k, dtype=np.int64)
        # A block at position p is pushed down by a first-touch event
        # only if the event comes *from below* (source depth s > p,
        # promotion target <= p) or misses (insertion at <= p; the
        # bottom position is evicted by every miss).  Events staying
        # above p are excluded and the rates renormalised — for the LRU
        # vector numerator == denominator at every p, so q == 1 exactly.
        below = (positions[:, None] > positions[None, :]).astype(np.float64)
        cross_from_below = ind * below[None, :, :]
        push_miss = insmask.copy()
        push_miss[:, k - 1] = 1.0
        # Birth states: founder fills (set not yet full) land at
        # min(ins, fill order) — uniform over the k fill orders — with
        # probability capacity/footprint; later fills land at ins.
        capacity = (self.num_sets or 0) * k
        founder_frac = (
            min(1.0, capacity / cold) if (capacity and cold) else 0.0
        )
        birth = (1.0 - founder_frac) * ins_onehot
        if founder_frac:
            positions = np.arange(k, dtype=np.int64)
            founder = (positions[None, :] < ins[:, None]) / float(k)
            founder[rows, ins] = (k - ins) / float(k)
            birth = birth + founder_frac * founder
        # Chain-step weights: the exact fraction of reuse events at each
        # touch index (see _step_weights); the remainder is converged.
        step_w = params["step_w"]
        # LRU-seeded environment: miss rate + hit source-depth weights.
        fr = np.full(n, float(params["fr"]), dtype=np.float64)
        hd = np.broadcast_to(
            np.asarray(params["wh"], dtype=np.float64), (n, k)
        ).copy()
        pred = np.full(n, float(params["fr"]) * accesses, dtype=np.float64)
        depths = np.full(n, float(k), dtype=np.float64)
        for _ in range(_OUTER_ITERS):
            hit_push = np.einsum("ns,nsp->np", hd, cross_from_below)
            hit_any = np.einsum("ns,sp->np", hd, below)
            q = (
                fr[:, None] * push_miss + (1.0 - fr[:, None]) * hit_push
            ) / np.maximum(
                fr[:, None] + (1.0 - fr[:, None]) * hit_any, _Q_FLOOR
            )
            inv = 1.0 / np.maximum(q, _Q_FLOOR)
            # N(s) = sum_{p=s}^{k-1} 1/q(p), clipped to the histogram cap.
            thresholds = np.clip(
                np.cumsum(inv[:, ::-1], axis=1)[:, ::-1], 0.0, cap
            )
            lo = np.floor(thresholds).astype(np.int64)
            hi = np.minimum(lo + 1, feat.depth)
            frac = thresholds - lo
            m_at = suffix[lo] * (1.0 - frac) + suffix[hi] * frac
            if reuses > 0:
                rm = np.clip((m_at - cold) / reuses, 0.0, 1.0)
            else:
                rm = np.ones((n, k), dtype=np.float64)
            survive = 1.0 - rm
            cur = birth.copy()
            pi = np.zeros_like(cur)
            weight_sum = 0.0
            for w in step_w:
                pi += w * cur
                weight_sum += w
                hit_mass = cur * survive
                miss_mass = (cur * rm).sum(axis=1)
                cur = np.einsum("ns,nst->nt", hit_mass, onehot)
                cur[rows, ins] += miss_mass
            pi += (1.0 - weight_sum) * cur
            reuse_miss = (pi * rm).sum(axis=1)
            pred = cold + reuse_miss * reuses
            depths = (pi * thresholds).sum(axis=1)
            # Refresh the environment from the chain's own solution.
            fr = pred / accesses
            hit_pos = pi * survive
            total_hit = np.maximum(
                hit_pos.sum(axis=1, keepdims=True), 1e-12
            )
            hd = hit_pos / total_hit
        return pred, depths

    def _workload_predict_py(
        self, entries: Tuple[int, ...], feat: WorkloadFeatures,
        params: Dict[str, object],
    ) -> Tuple[float, float]:
        """Scalar twin of :meth:`_workload_predict_np` (no-numpy path)."""
        k = self.assoc
        promo = list(entries[:k])
        ins = entries[k]
        cold = float(feat.cold)
        accesses = float(max(1, feat.accesses))
        reuses = float(feat.accesses - feat.cold)
        cap = float(feat.depth)
        wh = params["wh"]
        fr = float(params["fr"])
        hd = list(wh)
        capacity = (self.num_sets or 0) * k
        founder_frac = (
            min(1.0, capacity / cold) if (capacity and cold) else 0.0
        )
        birth = [0.0] * k
        birth[ins] += 1.0 - founder_frac
        if founder_frac:
            for j in range(k):
                birth[min(ins, j)] += founder_frac / k
        step_w = params["step_w"]
        pred = fr * accesses
        depth_mean = float(k)
        for _ in range(_OUTER_ITERS):
            inv = []
            for p in range(k):
                push_miss = 1.0 if (ins <= p or p == k - 1) else 0.0
                hit_push = sum(
                    hd[s] for s in range(p + 1, k) if promo[s] <= p
                )
                hit_any = sum(hd[s] for s in range(p + 1, k))
                q = (fr * push_miss + (1.0 - fr) * hit_push) / max(
                    fr + (1.0 - fr) * hit_any, _Q_FLOOR
                )
                inv.append(1.0 / max(q, _Q_FLOOR))
            thresholds = [0.0] * k
            running = 0.0
            for p in range(k - 1, -1, -1):
                running += inv[p]
                thresholds[p] = min(max(running, 0.0), cap)
            if reuses > 0:
                rm = [
                    min(max(
                        (feat.misses_at(t) - cold) / reuses, 0.0), 1.0)
                    for t in thresholds
                ]
            else:
                rm = [1.0] * k
            cur = list(birth)
            pi = [0.0] * k
            weight_sum = 0.0
            for w in step_w:
                for s in range(k):
                    pi[s] += w * cur[s]
                weight_sum += w
                nxt = [0.0] * k
                miss_mass = 0.0
                for s in range(k):
                    if not cur[s]:
                        continue
                    nxt[promo[s]] += cur[s] * (1.0 - rm[s])
                    miss_mass += cur[s] * rm[s]
                nxt[ins] += miss_mass
                cur = nxt
            for s in range(k):
                pi[s] += (1.0 - weight_sum) * cur[s]
            reuse_miss = sum(p * r for p, r in zip(pi, rm))
            pred = cold + reuse_miss * reuses
            depth_mean = sum(p * t for p, t in zip(pi, thresholds))
            fr = pred / accesses
            hit_pos = [p * (1.0 - r) for p, r in zip(pi, rm)]
            total_hit = max(sum(hit_pos), 1e-12)
            hd = [h / total_hit for h in hit_pos]
        return pred, depth_mean

    def effective_depths(self, ipvs: Sequence) -> List[float]:
        """Access-weighted stationary mean of the survival thresholds.

        For true LRU this is exactly ``assoc`` (the chain sits at the
        MRU state whose threshold is k); elsewhere it is a summary only
        — :meth:`score_population` weighs the full per-start Mattson
        mixture, not this mean.
        """
        batch = self._entries_matrix(ipvs)
        if not batch:
            return []
        total_acc = float(
            sum(w[4].accesses for w in self.workloads)
        ) or 1.0
        np = numpy_or_none()
        if np is not None:
            depths = np.zeros(len(batch), dtype=np.float64)
            for start in range(0, len(batch), _SCORE_CHUNK):
                chunk = batch[start:start + _SCORE_CHUNK]
                arrays = self._batch_arrays(np, chunk)
                for (_n, _w, _i, _f, feat), params in zip(
                    self.workloads, self._params
                ):
                    _pred, d = self._workload_predict_np(
                        np, arrays, feat, params
                    )
                    depths[start:start + len(chunk)] += d * (
                        feat.accesses / total_acc
                    )
            return depths.tolist()
        out = []
        for entries in batch:
            depth = 0.0
            for (_n, _w, _i, _f, feat), params in zip(
                self.workloads, self._params
            ):
                _pred, d = self._workload_predict_py(entries, feat, params)
                depth += d * (feat.accesses / total_acc)
            out.append(depth)
        return out

    def score_population(self, ipvs: Sequence) -> List[float]:
        """Analytic fitness estimate of every candidate, in input order.

        Chunked numpy passes per workload over the whole population; the
        pure-Python twin (``REPRO_FORCE_NO_NUMPY=1``) computes the same
        closed form.  Returns a plain list so callers never hold numpy
        types.
        """
        if not len(ipvs):
            return []
        np = numpy_or_none()
        with span("surrogate.score", candidates=len(ipvs)):
            if np is None:
                return self._score_py(ipvs)
            batch = self._entries_matrix(ipvs)
            out = np.zeros(len(batch), dtype=np.float64)
            for start in range(0, len(batch), _SCORE_CHUNK):
                chunk = batch[start:start + _SCORE_CHUNK]
                arrays = self._batch_arrays(np, chunk)
                cycles: Dict[str, object] = {}
                for (name, weight, instructions, mfrac, feat), params in (
                    zip(self.workloads, self._params)
                ):
                    pred, _depths = self._workload_predict_np(
                        np, arrays, feat, params
                    )
                    value = (instructions * self.base_cpi
                             + pred * mfrac * self.miss_penalty) * weight
                    cycles[name] = cycles.get(name, 0.0) + value
                total = np.zeros(len(chunk), dtype=np.float64)
                for name, lane_cycles in cycles.items():
                    total += self._base_cycles[name] / lane_cycles
                out[start:start + len(chunk)] = total / len(cycles)
            return out.tolist()

    def _score_py(self, ipvs: Sequence) -> List[float]:
        batch = self._entries_matrix(ipvs)
        out = []
        for entries in batch:
            cycles: Dict[str, float] = {}
            for (name, weight, instructions, mfrac, feat), params in zip(
                self.workloads, self._params
            ):
                pred, _depth = self._workload_predict_py(
                    entries, feat, params
                )
                value = (instructions * self.base_cpi
                         + pred * mfrac * self.miss_penalty) * weight
                cycles[name] = cycles.get(name, 0.0) + value
            speedups = [
                self._base_cycles[name] / cycles[name] for name in cycles
            ]
            out.append(sum(speedups) / len(speedups))
        return out


# ----------------------------------------------------------------------
# Spearman rank correlation (stdlib/numpy only — no scipy dependency).
# ----------------------------------------------------------------------
def _average_ranks(values: Sequence[float]) -> List[float]:
    """1-based average ranks with standard tie handling."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for pos in range(i, j + 1):
            ranks[order[pos]] = rank
        i = j + 1
    return ranks


def spearman_rho(a: Sequence[float], b: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation of two samples (``None`` if degenerate).

    Pearson correlation over tie-averaged ranks; needs at least three
    points and non-constant ranks on both sides.
    """
    if len(a) != len(b):
        raise ValueError("samples must have equal length")
    n = len(a)
    if n < 3:
        return None
    ra = _average_ranks(list(a))
    rb = _average_ranks(list(b))
    mean = (n + 1) / 2.0
    cov = sxx = syy = 0.0
    for x, y in zip(ra, rb):
        dx = x - mean
        dy = y - mean
        cov += dx * dy
        sxx += dx * dx
        syy += dy * dy
    if sxx == 0.0 or syy == 0.0:
        return None
    return cov / math.sqrt(sxx * syy)


# ----------------------------------------------------------------------
# Cross-generation fitness memo.
# ----------------------------------------------------------------------
class FitnessMemo:
    """Bounded LRU of simulated fitness keyed by canonical IPV tuple.

    Stores the exact float the simulator returned, so routing a batch
    through the memo is bit-identical to re-simulating it.  One memo
    serves a whole search run: GA generations, hill-climbing passes and
    duplicate genomes all share it.
    """

    def __init__(self, limit: int = 1 << 20):
        if limit < 1:
            raise ValueError("limit must be positive")
        self.limit = int(limit)
        self._memo: "OrderedDict[Tuple[int, ...], float]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memo)

    def get(self, entries: Tuple[int, ...]) -> Optional[float]:
        value = self._memo.get(entries)
        if value is not None:
            self._memo.move_to_end(entries)
        return value

    def put(self, entries: Tuple[int, ...], fitness: float) -> None:
        self._memo[entries] = fitness
        while len(self._memo) > self.limit:
            self._memo.popitem(last=False)

    def evaluate_all(
        self, pop_eval, individuals: Sequence[Sequence[int]]
    ) -> List[float]:
        """``pop_eval.evaluate_all`` with memoization and in-batch dedup.

        Only tuples never simulated before reach the evaluator; results
        come back in input order and duplicate inputs (within the batch
        or across calls) receive the identical cached float.
        """
        batch = [tuple(ind) for ind in individuals]
        results: List[Optional[float]] = [None] * len(batch)
        fresh: List[Tuple[int, ...]] = []
        fresh_pos: Dict[Tuple[int, ...], int] = {}
        for i, entries in enumerate(batch):
            cached = self.get(entries)
            if cached is not None:
                self.hits += 1
                results[i] = cached
            elif entries in fresh_pos:
                self.hits += 1  # in-batch duplicate: one simulation serves all
            else:
                self.misses += 1
                fresh_pos[entries] = len(fresh)
                fresh.append(entries)
        if fresh:
            scores = pop_eval.evaluate_all(fresh)
            for entries, score in zip(fresh, scores):
                self.put(entries, score)
        for i, entries in enumerate(batch):
            if results[i] is None:
                results[i] = self._memo[entries]
        return results  # type: ignore[return-value]

    def stats(self) -> dict:
        lookups = self.hits + self.misses
        return {
            "size": len(self._memo),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }


# ----------------------------------------------------------------------
# The prefilter stage.
# ----------------------------------------------------------------------
class SurrogatePrefilter:
    """Rank candidates analytically; simulate only the promising tail.

    Parameters
    ----------
    model:
        The :class:`SurrogateModel` (build with
        :meth:`SurrogateModel.from_evaluator`).
    keep:
        Fraction of each batch to simulate (the paper's "top decile" is
        ``0.1``, the default).  At least ``min_keep`` candidates always
        survive so tiny batches stay meaningful.
    audit:
        Size of the random control sample simulated *in addition to* the
        kept fraction; its surrogate-vs-simulated Spearman rho is the
        live fidelity signal.  ``0`` disables auditing (not recommended).
    rho_floor:
        If an audit rho drops below this, the prefilter deactivates
        itself with a warning and every later batch is simulated in full
        — rank infidelity must never silently cull good candidates.
    seed:
        Seed of the private control-sample RNG (kept separate from the
        GA's breeding RNG so prefiltering never perturbs evolution).
    """

    def __init__(
        self,
        model: SurrogateModel,
        keep: float = 0.1,
        audit: int = 32,
        rho_floor: float = 0.5,
        seed: int = 0,
        min_keep: int = 4,
    ):
        if not 0.0 < keep <= 1.0:
            raise ValueError("keep must be in (0, 1]")
        if audit < 0:
            raise ValueError("audit must be non-negative")
        if min_keep < 1:
            raise ValueError("min_keep must be positive")
        self.model = model
        self.keep = float(keep)
        self.audit = int(audit)
        self.rho_floor = float(rho_floor)
        self.min_keep = int(min_keep)
        self._rng = random.Random(seed ^ 0x5AFE5EED)
        self.active = True
        self.scored = 0
        self.simulated = 0
        self.skipped = 0
        self.audits = 0
        self.rho: Optional[float] = None
        self.rho_history: List[float] = []

    @classmethod
    def from_evaluator(
        cls,
        evaluator: FitnessEvaluator,
        keep: float = 0.1,
        audit: int = 32,
        rho_floor: float = 0.5,
        seed: int = 0,
        min_keep: int = 4,
        cache_dir: Union[None, bool, str, Path] = True,
    ) -> "SurrogatePrefilter":
        model = SurrogateModel.from_evaluator(evaluator, cache_dir=cache_dir)
        return cls(model, keep=keep, audit=audit, rho_floor=rho_floor,
                   seed=seed, min_keep=min_keep)

    # ------------------------------------------------------------------
    def evaluate_batch(
        self,
        pop_eval,
        memo: FitnessMemo,
        individuals: Sequence[Sequence[int]],
    ) -> List[Tuple[float, Tuple[int, ...]]]:
        """Score, select, simulate and audit one candidate batch.

        Returns ``(fitness, entries)`` pairs for the *simulated* subset
        only (all of the batch when the prefilter is inactive or the
        batch is small).  Simulated fitness comes from the same memoized
        evaluator path an unfiltered run uses, so surviving candidates'
        values are bit-identical to full simulation.
        """
        batch = [tuple(ind) for ind in individuals]
        if not batch:
            return []
        floor = min(len(batch), max(self.min_keep, self.audit))
        if not self.active or len(batch) <= floor:
            scores = memo.evaluate_all(pop_eval, batch)
            self.simulated += len(batch)
            return list(zip(scores, batch))
        surrogate = self.model.score_population(batch)
        self.scored += len(batch)
        keep_count = max(self.min_keep, int(round(self.keep * len(batch))))
        keep_count = min(keep_count, len(batch))
        order = sorted(range(len(batch)), key=lambda i: surrogate[i],
                       reverse=True)
        chosen = set(order[:keep_count])
        audit_idx: List[int] = []
        if self.audit:
            audit_idx = self._rng.sample(
                range(len(batch)), min(self.audit, len(batch))
            )
            chosen.update(audit_idx)
        selected = sorted(chosen)
        with span("ga.surrogate_simulate", batch=len(batch),
                  simulated=len(selected)):
            fitnesses = memo.evaluate_all(
                pop_eval, [batch[i] for i in selected]
            )
        self.simulated += len(selected)
        self.skipped += len(batch) - len(selected)
        fitness_of = dict(zip(selected, fitnesses))
        if audit_idx:
            self._run_audit([surrogate[i] for i in audit_idx],
                            [fitness_of[i] for i in audit_idx])
        return [(fitness_of[i], batch[i]) for i in selected]

    def _run_audit(self, surrogate_scores: List[float],
                   simulated_scores: List[float]) -> None:
        with span("ga.surrogate_audit", sample=len(surrogate_scores)):
            rho = spearman_rho(surrogate_scores, simulated_scores)
        if rho is None:
            return
        self.audits += 1
        self.rho = rho
        self.rho_history.append(rho)
        if rho < self.rho_floor and self.active:
            self.active = False
            logger.warning(
                "surrogate prefilter disabled: audit Spearman rho %.3f "
                "fell below the floor %.3f — simulating every candidate "
                "from here on", rho, self.rho_floor,
            )

    def stats(self) -> dict:
        """Counters for status publishing, metrics gauges and reports."""
        return {
            "active": self.active,
            "keep": self.keep,
            "audit": self.audit,
            "rho_floor": self.rho_floor,
            "scored": self.scored,
            "simulated": self.simulated,
            "skipped": self.skipped,
            "audits": self.audits,
            "rho": self.rho,
            "rho_min": min(self.rho_history) if self.rho_history else None,
        }


def publish_surrogate_gauges(
    registry,
    prefilter: Optional[SurrogatePrefilter] = None,
    memo: Optional[FitnessMemo] = None,
) -> None:
    """Export prefilter/memo/feature counters as ``repro_surrogate_*``
    gauges (idempotent republish, like the kernel/memo gauges)."""
    if prefilter is not None:
        stats = prefilter.stats()
        for field, help_text in (
            ("scored", "Candidates scored by the analytic surrogate"),
            ("simulated", "Candidates simulated after prefiltering"),
            ("skipped", "Candidates culled by the surrogate prefilter"),
            ("audits", "Surrogate control-sample audits performed"),
        ):
            registry.gauge(f"repro_surrogate_{field}", help_text).set(
                stats[field]
            )
        registry.gauge(
            "repro_surrogate_active",
            "Whether the surrogate prefilter is still active (1) or "
            "deactivated by a failed audit (0)",
        ).set(1 if stats["active"] else 0)
        if stats["rho"] is not None:
            registry.gauge(
                "repro_surrogate_rho",
                "Latest surrogate-vs-simulated Spearman rank correlation",
            ).set(stats["rho"])
    if memo is not None:
        mstats = memo.stats()
        for field, help_text in (
            ("size", "Fitness memo entries resident"),
            ("hits", "Fitness memo lookup hits (simulations avoided)"),
            ("misses", "Fitness memo lookup misses (simulations performed)"),
        ):
            registry.gauge(f"repro_fitness_memo_{field}", help_text).set(
                mstats[field]
            )
    fstats = feature_memo_stats()
    for field, help_text in (
        ("hits", "Surrogate feature memo hits"),
        ("misses", "Surrogate feature memo misses"),
        ("disk_hits", "Surrogate features loaded from the disk cache"),
    ):
        registry.gauge(f"repro_surrogate_features_{field}", help_text).set(
            fstats[field]
        )


def _self_check_lru_anchor() -> None:  # pragma: no cover - debug aid
    """Tiny inline sanity check: the LRU vector maps to depth == assoc."""
    from ..eval.config import default_config

    evaluator = FitnessEvaluator(
        ["429.mcf"], config=default_config(trace_length=2_000)
    )
    model = SurrogateModel.from_evaluator(evaluator, cache_dir=None)
    depth = model.effective_depths([lru_ipv(model.assoc)])[0]
    assert abs(depth - model.assoc) < 1e-6, depth
