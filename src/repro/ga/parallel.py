"""Spawn-safe parallel population evaluation for the IPV searches.

The GA, hill climber and random sampler all reduce to the same primitive:
score a batch of independent IPVs against one :class:`FitnessEvaluator`.
:class:`PopulationEvaluator` fans that batch over a spawn-context worker
pool following the PR-1 runner's discipline (:mod:`repro.eval.parallel`):

* Workers never receive pickled megabyte trace objects.  They rebuild the
  evaluator from its small :meth:`FitnessEvaluator.spec` recipe and
  regenerate traces deterministically — the exact derivation the serial
  path uses — so parallel fitness values are bit-identical to serial ones.
* Within each worker, the module-level workload/baseline memos in
  :mod:`repro.ga.fitness` and the transition-table compile cache in
  :mod:`repro.kernels` are shared across every evaluation that worker
  performs: one compiled table set + one trace copy serve the whole run.
* Results are returned in submission order (``pool.map``), so the caller's
  selection logic is order-stable and ``seed ⇒ output`` determinism holds
  for any worker count.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder, current_recorder, install_recorder, span
from .fitness import FitnessEvaluator

__all__ = ["PopulationEvaluator"]

_WORKER_EVALUATOR: Optional[FitnessEvaluator] = None

#: GA worker telemetry: [SpoolWriter, MetricsRegistry, SpanRecorder,
#: last-heartbeat-monotonic].  None when the pool was started without a
#: spool directory.
_WORKER_TELEMETRY: Optional[list] = None

#: Heartbeats are throttled worker-side: IPV evaluations can be orders of
#: magnitude quicker than matrix jobs, and one atomic file replace per
#: evaluation would turn the spool into an I/O hot spot.
_HEARTBEAT_INTERVAL_SEC = 0.5


def _worker_final_publish() -> None:  # pragma: no cover - runs at exit
    """atexit hook: flush the worker's final cumulative snapshot.

    Per-evaluation publishes are throttled, so without this the tail of a
    worker's metrics (everything since the last throttled write) would be
    lost when ``Pool.close()``/``join()`` lets the process exit.
    """
    telemetry = _WORKER_TELEMETRY
    if telemetry is None:
        return
    writer, registry, recorder, _ = telemetry
    try:
        writer.publish(registry=registry, recorder=recorder, force=True)
    except Exception:
        pass


def _init_worker(spec: dict, spool_dir: Optional[str] = None) -> None:
    """Pool initializer: rebuild the evaluator once per worker process."""
    global _WORKER_EVALUATOR, _WORKER_TELEMETRY
    _WORKER_EVALUATOR = FitnessEvaluator.from_spec(spec)
    if spool_dir:
        from ..obs.shipping import SpoolWriter

        recorder = SpanRecorder(process_label=f"ga-worker-{os.getpid()}")
        install_recorder(recorder)
        _WORKER_TELEMETRY = [
            SpoolWriter(spool_dir, min_interval=_HEARTBEAT_INTERVAL_SEC),
            MetricsRegistry(),
            recorder,
            0.0,
        ]
        _WORKER_TELEMETRY[0].heartbeat()
        atexit.register(_worker_final_publish)


def _worker_evaluate(entries: Tuple[int, ...]) -> float:
    telemetry = _WORKER_TELEMETRY
    if telemetry is None:
        return _WORKER_EVALUATOR.evaluate(entries)
    writer, registry, recorder, last_hb = telemetry
    now = time.monotonic()
    if now - last_hb >= _HEARTBEAT_INTERVAL_SEC:
        telemetry[3] = now
        writer.heartbeat()
    started = time.perf_counter()
    with span("ga.worker_evaluate"):
        fitness = _WORKER_EVALUATOR.evaluate(entries)
    registry.counter(
        "repro_ga_worker_evaluations_total",
        "IPV fitness evaluations performed in GA worker processes",
    ).inc()
    registry.gauge(
        "repro_ga_worker_evaluate_seconds_total",
        "Wall seconds spent evaluating fitness in GA worker processes",
    ).inc(time.perf_counter() - started)
    writer.publish(registry=registry, recorder=recorder, force=False)
    return fitness


def _worker_evaluate_many(chunk: Tuple[Tuple[int, ...], ...]) -> List[float]:
    """Batched twin of :func:`_worker_evaluate` for the columnar engine.

    One worker receives a contiguous sub-population and amortizes the
    columnar trace pass across all of its lanes; results stay in chunk
    order so the caller's flatten preserves submission order.
    """
    telemetry = _WORKER_TELEMETRY
    if telemetry is None:
        return _WORKER_EVALUATOR.evaluate_many(chunk)
    writer, registry, recorder, last_hb = telemetry
    now = time.monotonic()
    if now - last_hb >= _HEARTBEAT_INTERVAL_SEC:
        telemetry[3] = now
        writer.heartbeat()
    started = time.perf_counter()
    with span("ga.worker_evaluate_many", lanes=len(chunk)):
        fitnesses = _WORKER_EVALUATOR.evaluate_many(chunk)
    registry.counter(
        "repro_ga_worker_evaluations_total",
        "IPV fitness evaluations performed in GA worker processes",
    ).inc(len(chunk))
    registry.gauge(
        "repro_ga_worker_evaluate_seconds_total",
        "Wall seconds spent evaluating fitness in GA worker processes",
    ).inc(time.perf_counter() - started)
    writer.publish(registry=registry, recorder=recorder, force=False)
    return fitnesses


class PopulationEvaluator:
    """Evaluate batches of IPVs, serially or over a spawn-safe pool.

    Parameters
    ----------
    evaluator:
        The fitness evaluator.  ``workers <= 1`` evaluates in-process with
        it; ``workers > 1`` ships its :meth:`~FitnessEvaluator.spec` to a
        persistent worker pool (one evaluator rebuild per worker, reused
        across every batch until :meth:`close`).
    workers:
        Worker process count.  ``0``/``1`` — serial reference path.
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) matches the
        PR-1 runner and works everywhere fork is unsafe.
    telemetry:
        Cross-process telemetry spool (parallel pools only).
        ``None``/``True`` — workers spool metrics/spans through a private
        temp directory that :meth:`close` merges and removes; ``False`` —
        off; a path — spool under that directory and keep it
        (:attr:`last_spool_dir`).  After :meth:`close`, worker metrics are
        summed into :attr:`worker_metrics` and worker spans merged into
        the installed :class:`~repro.obs.spans.SpanRecorder` (if any);
        the scan summary is :attr:`last_spool_state`.
    """

    def __init__(
        self,
        evaluator: FitnessEvaluator,
        workers: int = 0,
        mp_context: str = "spawn",
        telemetry: Union[None, bool, str, Path] = None,
    ):
        self.evaluator = evaluator
        self.workers = int(workers or 0)
        self.evaluations = 0
        self._pool = None
        #: Summed worker-side instruments, populated by :meth:`close`.
        self.worker_metrics = MetricsRegistry()
        self.last_spool_state = None
        self.last_spool_dir: Optional[Path] = None
        self._spool_dir: Optional[Path] = None
        self._owned_spool = False
        if self.workers > 1:
            if telemetry is None or telemetry is True:
                self._spool_dir = Path(tempfile.mkdtemp(prefix="repro-ga-spool-"))
                self._owned_spool = True
            elif telemetry is not False:
                base = Path(telemetry).expanduser()
                self._spool_dir = base / f"ga-{os.getpid()}-{id(self):x}"
                self._spool_dir.mkdir(parents=True, exist_ok=True)
            context = multiprocessing.get_context(mp_context)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    evaluator.spec(),
                    str(self._spool_dir) if self._spool_dir else None,
                ),
            )

    # ------------------------------------------------------------------
    def evaluate_all(self, individuals: Sequence[Sequence[int]]) -> List[float]:
        """Fitness of every individual, in input order (deterministic)."""
        batch = [tuple(ind) for ind in individuals]
        self.evaluations += len(batch)
        if self._pool is None:
            # evaluate_many batches through the columnar engine when the
            # evaluator is eligible and falls back to the per-IPV scalar
            # loop otherwise — bit-identical either way.
            return self.evaluator.evaluate_many(batch)
        if self.evaluator.kernel == "columnar":
            # Columnar workers want big lane counts, not small chunks:
            # split the population into one contiguous slice per worker so
            # each pays for one engine pass over the (memoized) traces.
            chunks = self._columnar_chunks(batch)
            with span("ga.evaluate_batch", batch=len(batch),
                      workers=self.workers, columnar=True):
                parts = self._pool.map(_worker_evaluate_many, chunks,
                                       chunksize=1)
            return [fitness for part in parts for fitness in part]
        chunksize = max(1, len(batch) // (4 * self.workers))
        with span("ga.evaluate_batch", batch=len(batch),
                  workers=self.workers):
            return self._pool.map(_worker_evaluate, batch, chunksize=chunksize)

    def _columnar_chunks(
        self, batch: List[Tuple[int, ...]]
    ) -> List[Tuple[Tuple[int, ...], ...]]:
        """Split ``batch`` into ≤``workers`` contiguous, near-even slices."""
        n = len(batch)
        workers = min(self.workers, n) or 1
        size, extra = divmod(n, workers)
        chunks = []
        start = 0
        for i in range(workers):
            stop = start + size + (1 if i < extra else 0)
            chunks.append(tuple(batch[start:stop]))
            start = stop
        return chunks

    def evaluate(self, individual: Sequence[int]) -> float:
        """Single-individual convenience (always in-process)."""
        self.evaluations += 1
        return self.evaluator.evaluate(tuple(individual))

    # ------------------------------------------------------------------
    def heartbeats(self) -> dict:
        """Latest worker heartbeat timestamps (live watchdog input)."""
        if self._spool_dir is None:
            return {}
        from ..obs.shipping import read_spool

        return dict(read_spool(self._spool_dir).heartbeats)

    def close(self) -> None:
        """Shut the worker pool down and merge its telemetry (idempotent).

        ``Pool.join`` waits for the workers to exit, and each worker's
        ``atexit`` hook force-publishes its final cumulative snapshot on
        the way out — so the merge below sees complete totals even though
        per-evaluation publishes are throttled.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
        if self._spool_dir is not None:
            from ..obs.shipping import merge_spool

            self.last_spool_state = merge_spool(
                self._spool_dir, registry=self.worker_metrics,
                recorder=current_recorder(),
            )
            if self._owned_spool:
                shutil.rmtree(self._spool_dir, ignore_errors=True)
                self.last_spool_dir = None
            else:
                self.last_spool_dir = self._spool_dir
            self._spool_dir = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = f"{self.workers} workers" if self._pool else "serial"
        return f"PopulationEvaluator({mode}, {self.evaluations} evaluations)"
