"""Spawn-safe parallel population evaluation for the IPV searches.

The GA, hill climber and random sampler all reduce to the same primitive:
score a batch of independent IPVs against one :class:`FitnessEvaluator`.
:class:`PopulationEvaluator` fans that batch over a spawn-context worker
pool following the PR-1 runner's discipline (:mod:`repro.eval.parallel`):

* Workers never receive pickled megabyte trace objects.  They rebuild the
  evaluator from its small :meth:`FitnessEvaluator.spec` recipe and
  regenerate traces deterministically — the exact derivation the serial
  path uses — so parallel fitness values are bit-identical to serial ones.
* Within each worker, the module-level workload/baseline memos in
  :mod:`repro.ga.fitness` and the transition-table compile cache in
  :mod:`repro.kernels` are shared across every evaluation that worker
  performs: one compiled table set + one trace copy serve the whole run.
* Results are returned in submission order (``pool.map``), so the caller's
  selection logic is order-stable and ``seed ⇒ output`` determinism holds
  for any worker count.
"""

from __future__ import annotations

import multiprocessing
from typing import List, Optional, Sequence, Tuple

from .fitness import FitnessEvaluator

__all__ = ["PopulationEvaluator"]

_WORKER_EVALUATOR: Optional[FitnessEvaluator] = None


def _init_worker(spec: dict) -> None:
    """Pool initializer: rebuild the evaluator once per worker process."""
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = FitnessEvaluator.from_spec(spec)


def _worker_evaluate(entries: Tuple[int, ...]) -> float:
    return _WORKER_EVALUATOR.evaluate(entries)


class PopulationEvaluator:
    """Evaluate batches of IPVs, serially or over a spawn-safe pool.

    Parameters
    ----------
    evaluator:
        The fitness evaluator.  ``workers <= 1`` evaluates in-process with
        it; ``workers > 1`` ships its :meth:`~FitnessEvaluator.spec` to a
        persistent worker pool (one evaluator rebuild per worker, reused
        across every batch until :meth:`close`).
    workers:
        Worker process count.  ``0``/``1`` — serial reference path.
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) matches the
        PR-1 runner and works everywhere fork is unsafe.
    """

    def __init__(
        self,
        evaluator: FitnessEvaluator,
        workers: int = 0,
        mp_context: str = "spawn",
    ):
        self.evaluator = evaluator
        self.workers = int(workers or 0)
        self.evaluations = 0
        self._pool = None
        if self.workers > 1:
            context = multiprocessing.get_context(mp_context)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(evaluator.spec(),),
            )

    # ------------------------------------------------------------------
    def evaluate_all(self, individuals: Sequence[Sequence[int]]) -> List[float]:
        """Fitness of every individual, in input order (deterministic)."""
        batch = [tuple(ind) for ind in individuals]
        self.evaluations += len(batch)
        if self._pool is None:
            return [self.evaluator.evaluate(ind) for ind in batch]
        chunksize = max(1, len(batch) // (4 * self.workers))
        return self._pool.map(_worker_evaluate, batch, chunksize=chunksize)

    def evaluate(self, individual: Sequence[int]) -> float:
        """Single-individual convenience (always in-process)."""
        self.evaluations += 1
        return self.evaluator.evaluate(tuple(individual))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PopulationEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = f"{self.workers} workers" if self._pool else "serial"
        return f"PopulationEvaluator({mode}, {self.evaluations} evaluations)"
