"""IPV search: genetic algorithm, random sampling and hill climbing."""

from .fitness import (
    FitnessEvaluator,
    clear_workload_memo,
    simulate_misses_lru_ipv,
    simulate_misses_plru_ipv,
)
from .genetic import GAResult, crossover, evolve_ipv, mutate
from .hillclimb import HillClimbResult, hill_climb
from .parallel import PopulationEvaluator
from .random_search import random_search
from .surrogate import (
    FitnessMemo,
    SurrogateModel,
    SurrogatePrefilter,
    WorkloadFeatures,
    features_for_trace,
    spearman_rho,
    trace_digest,
)
from .systematic import derive_ipv, derive_ipv_for_benchmarks

__all__ = [
    "FitnessEvaluator",
    "PopulationEvaluator",
    "clear_workload_memo",
    "simulate_misses_lru_ipv",
    "simulate_misses_plru_ipv",
    "GAResult",
    "evolve_ipv",
    "crossover",
    "mutate",
    "HillClimbResult",
    "hill_climb",
    "random_search",
    "FitnessMemo",
    "SurrogateModel",
    "SurrogatePrefilter",
    "WorkloadFeatures",
    "features_for_trace",
    "spearman_rho",
    "trace_digest",
    "derive_ipv",
    "derive_ipv_for_benchmarks",
]
