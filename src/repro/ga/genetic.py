"""Genetic algorithm for evolving IPVs (paper Sections 2.5 and 4.2).

The operators follow the paper: single-point crossover between two parent
vectors, 5 % point mutation (one random element replaced by a random
position), a large initial population shrunk for subsequent generations,
and elitism.  The paper ran populations of 20 000/4 000 on a cluster; the
defaults here are laptop-scale and configurable — the *algorithm* is the
contribution being reproduced, not the cluster.

Fan-out uses the spawn-safe :class:`~repro.ga.parallel.PopulationEvaluator`
the way the paper used MPI/pgapack: the fitness of each individual is
independent, workers rebuild the evaluator from a small spec (never a
pickled trace set), and results come back in submission order — so
``workers=N`` is bit-identical to the serial path for every ``N``.
"""

from __future__ import annotations

import random
import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..core.ipv import IPV
from ..obs.spans import span
from .fitness import FitnessEvaluator
from .parallel import PopulationEvaluator
from .surrogate import FitnessMemo, SurrogatePrefilter

__all__ = ["GAResult", "evolve_ipv", "crossover", "mutate"]

#: Probability that a freshly created individual suffers a point mutation.
MUTATION_RATE = 0.05


class GAResult:
    """Outcome of one GA run."""

    def __init__(
        self,
        best: IPV,
        best_fitness: float,
        history: List[float],
        evaluations: int,
        convergence: Optional[List[dict]] = None,
        surrogate: Optional[dict] = None,
        memo: Optional[dict] = None,
    ):
        self.best = best
        self.best_fitness = best_fitness
        self.history = history  # best fitness per generation
        self.evaluations = evaluations
        #: Per-generation convergence records (best/median/p90, diversity,
        #: eval throughput) — see :mod:`repro.obs.analytics.convergence`.
        self.convergence = convergence if convergence is not None else []
        #: :meth:`SurrogatePrefilter.stats` snapshot (``None`` when the
        #: run was unfiltered) and :meth:`FitnessMemo.stats` snapshot.
        self.surrogate = surrogate
        self.memo = memo

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GAResult(best={list(self.best.entries)}, "
            f"fitness={self.best_fitness:.4f}, generations={len(self.history)})"
        )


def crossover(
    a: Sequence[int], b: Sequence[int], rng: random.Random
) -> Tuple[int, ...]:
    """Single-point crossover: a prefix of one parent, suffix of the other."""
    if len(a) != len(b):
        raise ValueError("parents must have equal length")
    cut = rng.randrange(1, len(a))
    return tuple(a[:cut]) + tuple(b[cut:])


def mutate(
    entries: Sequence[int],
    k: int,
    rng: random.Random,
    rate: float = MUTATION_RATE,
) -> Tuple[int, ...]:
    """With probability ``rate``, replace one random element (paper §4.2)."""
    entries = tuple(entries)
    if rng.random() >= rate:
        return entries
    index = rng.randrange(len(entries))
    out = list(entries)
    out[index] = rng.randrange(k)
    return tuple(out)


def _status_publisher(status_path):
    """StatusPublisher for a GA run, or ``None`` when status is disabled."""
    from ..obs.status import StatusPublisher, default_status_path

    path = status_path if status_path is not None else default_status_path()
    if not path:
        return None
    return StatusPublisher(path, kind="ga")


def evolve_ipv(
    evaluator: FitnessEvaluator,
    population_size: int = 40,
    initial_population_size: Optional[int] = None,
    generations: int = 12,
    mutation_rate: float = MUTATION_RATE,
    elite: int = 2,
    seed: int = 0,
    workers: int = 0,
    seeds: Optional[Sequence[IPV]] = None,
    on_generation: Optional[Callable[[int, float], None]] = None,
    telemetry: Union[None, bool, str, Path] = None,
    status_path: Union[None, str, Path] = None,
    convergence_path: Union[None, str, Path] = None,
    surrogate: Union[None, bool, SurrogatePrefilter] = None,
    surrogate_keep: float = 0.1,
    surrogate_audit: int = 32,
    surrogate_rho_floor: float = 0.5,
    memo: Optional[FitnessMemo] = None,
    feature_cache: Union[None, bool, str, Path] = True,
) -> GAResult:
    """Evolve an IPV against ``evaluator``.

    ``initial_population_size`` defaults to 5x the steady population,
    echoing the paper's 20 000 -> 4 000 schedule.  ``seeds`` inject known
    vectors (the paper seeds its pgapack stage with earlier GA winners).

    ``telemetry`` is forwarded to :class:`PopulationEvaluator` (worker
    metrics/span spooling for parallel runs).  ``status_path`` publishes a
    live ``run-status.json`` per generation (``None`` falls back to
    ``$REPRO_STATUS_PATH``; unset disables it); the final record carries
    the best fitness and survives the run.  The whole search is wrapped in
    ``ga.run`` / ``ga.generation`` / ``ga.breed`` / ``ga.evaluate`` spans
    when a recorder is installed (no-ops otherwise).

    Every batch is routed through a cross-generation :class:`FitnessMemo`
    keyed by the canonical IPV tuple, so duplicate genomes — common once
    the population converges — are never re-simulated; pass ``memo`` to
    share one memo across several searches (e.g. GA then hill climb).
    The memoized values are the exact simulator floats, so results stay
    bit-identical to a memo-less run.

    ``surrogate`` enables the analytic prefilter (``True`` builds a
    :class:`SurrogatePrefilter` from the evaluator with ``surrogate_keep``
    / ``surrogate_audit`` / ``surrogate_rho_floor``; pass a prefilter
    instance for full control): each batch is ranked by the closed-form
    miss-rate model and only the top ``surrogate_keep`` fraction plus a
    random control sample is simulated.  The control sample's
    surrogate-vs-simulated Spearman rho rides on the live status; if it
    falls below the floor the prefilter deactivates itself and the rest
    of the run simulates everything.  Candidates that survive the filter
    carry bit-identical simulated fitness — the surrogate only decides
    *who* gets simulated, never what their fitness is.

    Every run computes per-generation convergence records (fitness
    best/median/p90, population diversity, eval throughput — see
    :func:`repro.obs.analytics.generation_stats`); they ride along on
    ``GAResult.convergence``, feed the live status fields, and with
    ``convergence_path`` are additionally persisted as an atomically
    rewritten JSON log that ``repro obs analyze`` renders.
    """
    k = evaluator.k
    length = k + 1
    rng = random.Random(seed)
    if initial_population_size is None:
        initial_population_size = 5 * population_size
    population: List[Tuple[int, ...]] = [
        tuple(s.entries) for s in (seeds or []) if s.k == k
    ]
    while len(population) < initial_population_size:
        population.append(tuple(rng.randrange(k) for _ in range(length)))

    status = _status_publisher(status_path)
    pop_eval = PopulationEvaluator(
        evaluator, workers=workers, telemetry=telemetry
    )
    fitness_memo = memo if memo is not None else FitnessMemo()
    prefilter: Optional[SurrogatePrefilter]
    if isinstance(surrogate, SurrogatePrefilter):
        prefilter = surrogate
    elif surrogate:
        prefilter = SurrogatePrefilter.from_evaluator(
            evaluator, keep=surrogate_keep, audit=surrogate_audit,
            rho_floor=surrogate_rho_floor, seed=seed,
            cache_dir=feature_cache,
        )
    else:
        prefilter = None

    def score_batch(batch: List[Tuple[int, ...]]):
        """(fitness, entries) pairs for the simulated subset of ``batch``
        (the whole batch when no prefilter is active)."""
        if prefilter is not None:
            return prefilter.evaluate_batch(pop_eval, fitness_memo, batch)
        return list(zip(
            fitness_memo.evaluate_all(pop_eval, batch), batch
        ))

    from ..obs.analytics.convergence import ConvergenceLog, generation_stats

    convergence: List[dict] = []
    conv_log = None
    if convergence_path is not None:
        conv_log = ConvergenceLog(
            convergence_path,
            meta={"k": k, "seed": seed, "population": population_size,
                  "generations": generations, "workers": workers},
        )

    evaluations = 0
    history: List[float] = []
    try:
        with span("ga.run", k=k, generations=generations,
                  population=population_size, workers=workers):
            if status is not None:
                status.update(
                    force=True, phase="init-population",
                    jobs_total=generations, jobs_done=0,
                    population=len(population), workers_requested=workers,
                )
            with span("ga.init_population", size=len(population)):
                scored = score_batch(population)
            evaluations += len(population)
            scored.sort(key=lambda p: p[0], reverse=True)
            for generation in range(generations):
                with span("ga.generation", gen=generation) as gen_span:
                    survivors = scored[: max(2, population_size // 2)]
                    with span("ga.breed", gen=generation):
                        next_population: List[Tuple[int, ...]] = [
                            ind for _, ind in scored[:elite]
                        ]
                        while len(next_population) < population_size:
                            pa = survivors[rng.randrange(len(survivors))][1]
                            pb = survivors[rng.randrange(len(survivors))][1]
                            child = mutate(
                                crossover(pa, pb, rng), k, rng, mutation_rate
                            )
                            next_population.append(child)
                    fresh = next_population[elite:]
                    with span("ga.evaluate", gen=generation,
                              batch=len(fresh)):
                        eval_start = time.perf_counter()
                        fresh_scored = score_batch(fresh)
                        eval_elapsed = time.perf_counter() - eval_start
                    evaluations += len(fresh)
                    scored = scored[:elite] + fresh_scored
                    scored.sort(key=lambda p: p[0], reverse=True)
                    history.append(scored[0][0])
                    record = generation_stats(
                        generation, scored,
                        evaluations=evaluations,
                        batch_evaluations=len(fresh_scored),
                        elapsed_sec=eval_elapsed,
                    )
                    convergence.append(record)
                    if conv_log is not None:
                        conv_log.append(record)
                    gen_span.set(best_fitness=scored[0][0])
                if status is not None:
                    extra = {}
                    if prefilter is not None:
                        pstats = prefilter.stats()
                        extra = {
                            "surrogate_scored": pstats["scored"],
                            "surrogate_simulated": pstats["simulated"],
                            "surrogate_skipped": pstats["skipped"],
                            "surrogate_active": pstats["active"],
                            "surrogate_rho": pstats["rho"],
                        }
                    status.update(
                        phase=f"generation {generation + 1}/{generations}",
                        jobs_done=generation + 1,
                        jobs_total=generations,
                        best_fitness=scored[0][0],
                        evaluations=evaluations,
                        memo_hits=fitness_memo.hits,
                        fitness_median=record["median"],
                        fitness_p90=record["p90"],
                        unique_fraction=record["unique_fraction"],
                        eval_per_sec=record["eval_per_sec"],
                        **extra,
                    )
                if on_generation is not None:
                    on_generation(generation, scored[0][0])
    finally:
        pop_eval.close()

    best_fitness, best_entries = scored[0]
    if status is not None:
        final_extra = {}
        if prefilter is not None:
            pstats = prefilter.stats()
            final_extra = {
                "surrogate_scored": pstats["scored"],
                "surrogate_simulated": pstats["simulated"],
                "surrogate_skipped": pstats["skipped"],
                "surrogate_active": pstats["active"],
                "surrogate_rho": pstats["rho"],
            }
        status.finalize(
            phase="done", jobs_done=len(history), jobs_total=generations,
            best_fitness=best_fitness, evaluations=evaluations,
            memo_hits=fitness_memo.hits, **final_extra,
        )
    return GAResult(
        IPV(best_entries, name=f"evolved-s{seed}"),
        best_fitness,
        history,
        evaluations,
        convergence=convergence,
        surrogate=prefilter.stats() if prefilter is not None else None,
        memo=fitness_memo.stats(),
    )
