"""Hill-climbing refinement of an IPV (paper Section 2.6).

The paper notes the GA's vector is not locally optimal — e.g. zeroing the
first twelve GIPLR entries nudges the speedup from 3.1 % to 3.12 % — and
suggests hill climbing as the refinement.  This climber tries alternative
values entry-by-entry and keeps strict improvements until a full pass makes
no progress.

Every candidate batch is routed through a cross-run
:class:`~repro.ga.surrogate.FitnessMemo` keyed by the canonical IPV
tuple.  This fixes a long-standing inefficiency: the exact
first-improvement replay re-visits every entry on every pass, and before
the memo a variant whose fitness was already computed in pass 1 was
re-*simulated* in pass 2 whenever the current vector had not changed at
that entry.  The memo returns the exact float the simulator produced, so
the refinement trail is bit-identical to the unmemoized walk — only the
redundant simulations disappear (asserted by a call-counting regression
test in ``tests/ga/test_surrogate.py``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.ipv import IPV
from .fitness import FitnessEvaluator
from .parallel import PopulationEvaluator
from .surrogate import FitnessMemo, SurrogatePrefilter

__all__ = ["HillClimbResult", "hill_climb"]


class HillClimbResult:
    """Refined vector plus the improvement trail."""

    def __init__(
        self,
        best: IPV,
        best_fitness: float,
        start_fitness: float,
        steps: List[Tuple[int, int, float]],
        evaluations: int,
        memo: Optional[dict] = None,
        surrogate: Optional[dict] = None,
    ):
        self.best = best
        self.best_fitness = best_fitness
        self.start_fitness = start_fitness
        self.steps = steps  # (entry index, new value, fitness after)
        self.evaluations = evaluations
        #: :meth:`FitnessMemo.stats` / :meth:`SurrogatePrefilter.stats`
        #: snapshots for the climb (``surrogate`` is None when unfiltered).
        self.memo = memo
        self.surrogate = surrogate

    @property
    def improvement(self) -> float:
        return self.best_fitness - self.start_fitness

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HillClimbResult(fitness {self.start_fitness:.4f} -> "
            f"{self.best_fitness:.4f} in {len(self.steps)} steps)"
        )


def hill_climb(
    evaluator: FitnessEvaluator,
    start: IPV,
    candidate_values: Optional[Sequence[int]] = None,
    max_passes: int = 2,
    workers: int = 0,
    memo: Optional[FitnessMemo] = None,
    surrogate: Union[None, bool, SurrogatePrefilter] = None,
    surrogate_keep: float = 0.25,
    feature_cache: Union[None, bool, str, Path] = True,
) -> HillClimbResult:
    """First-improvement hill climbing over single-entry changes.

    ``candidate_values`` restricts the values tried per entry (default: all
    positions 0..k-1, which costs (k+1)*k evaluations per pass).

    ``workers > 1`` scores each entry's candidate batch over the spawn-safe
    :class:`~repro.ga.parallel.PopulationEvaluator` and then replays the
    sequential accept rule against the batch scores.  Because a candidate's
    fitness depends only on the value at the entry under consideration (the
    other entries are frozen during the scan), the replay is bit-identical
    to the serial first-improvement walk — same steps, same evaluation
    count, same refined vector.

    ``memo`` shares a cross-run fitness memo (e.g. with the GA whose
    winner is being refined); ``None`` creates a private one — either
    way, variants revisited across passes are never re-simulated.

    ``surrogate`` enables analytic prefiltering of each entry's batch:
    only the top ``surrogate_keep`` fraction by surrogate rank (at least
    one candidate) is simulated, the rest are treated as non-improving.
    This makes the climb *approximate* — the exact-replay guarantee above
    holds only for unfiltered climbs — in exchange for an
    O(``surrogate_keep``) simulation bill, the right trade at paper-scale
    ``k`` and candidate sets.
    """
    k = evaluator.k
    values = list(candidate_values) if candidate_values is not None else list(range(k))
    current = list(start.entries)
    pop_eval = PopulationEvaluator(evaluator, workers=workers)
    fitness_memo = memo if memo is not None else FitnessMemo()
    prefilter: Optional[SurrogatePrefilter]
    if isinstance(surrogate, SurrogatePrefilter):
        prefilter = surrogate
    elif surrogate:
        prefilter = SurrogatePrefilter.from_evaluator(
            evaluator, keep=surrogate_keep, audit=0, min_keep=1,
            cache_dir=feature_cache,
        )
    else:
        prefilter = None
    try:
        current_fitness = fitness_memo.evaluate_all(
            pop_eval, [tuple(current)]
        )[0]
        start_fitness = current_fitness
        steps: List[Tuple[int, int, float]] = []
        evaluations = 1
        for _ in range(max_passes):
            improved = False
            for index in range(k + 1):
                original = current[index]
                # One fitness per distinct candidate value: the scan only
                # ever varies this entry, so f(value) is scan-invariant.
                # f(original) is the fitness we already hold.
                score_of: Dict[int, float] = {original: current_fitness}
                batch = [v for v in dict.fromkeys(values) if v != original]
                variants = []
                for value in batch:
                    variant = list(current)
                    variant[index] = value
                    variants.append(tuple(variant))
                if prefilter is not None:
                    pairs = prefilter.evaluate_batch(
                        pop_eval, fitness_memo, variants
                    )
                    fitness_by_variant = {
                        entries: fitness for fitness, entries in pairs
                    }
                    for value, variant in zip(batch, variants):
                        if variant in fitness_by_variant:
                            score_of[value] = fitness_by_variant[variant]
                else:
                    for value, fitness in zip(
                        batch,
                        fitness_memo.evaluate_all(pop_eval, variants),
                    ):
                        score_of[value] = fitness
                # Replay the sequential first-improvement scan exactly
                # (culled candidates are absent and treated as
                # non-improving under the surrogate).
                for value in values:
                    if value == original:
                        continue
                    fitness = score_of.get(value)
                    if fitness is None:
                        continue
                    evaluations += 1
                    if fitness > current_fitness:
                        current_fitness = fitness
                        steps.append((index, value, fitness))
                        improved = True
                        original = value
                current[index] = original
            if not improved:
                break
    finally:
        pop_eval.close()
    return HillClimbResult(
        IPV(current, name=f"{start.name}+hc"),
        current_fitness,
        start_fitness,
        steps,
        evaluations,
        memo=fitness_memo.stats(),
        surrogate=prefilter.stats() if prefilter is not None else None,
    )
