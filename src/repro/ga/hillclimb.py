"""Hill-climbing refinement of an IPV (paper Section 2.6).

The paper notes the GA's vector is not locally optimal — e.g. zeroing the
first twelve GIPLR entries nudges the speedup from 3.1 % to 3.12 % — and
suggests hill climbing as the refinement.  This climber tries alternative
values entry-by-entry and keeps strict improvements until a full pass makes
no progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ipv import IPV
from .fitness import FitnessEvaluator
from .parallel import PopulationEvaluator

__all__ = ["HillClimbResult", "hill_climb"]


class HillClimbResult:
    """Refined vector plus the improvement trail."""

    def __init__(
        self,
        best: IPV,
        best_fitness: float,
        start_fitness: float,
        steps: List[Tuple[int, int, float]],
        evaluations: int,
    ):
        self.best = best
        self.best_fitness = best_fitness
        self.start_fitness = start_fitness
        self.steps = steps  # (entry index, new value, fitness after)
        self.evaluations = evaluations

    @property
    def improvement(self) -> float:
        return self.best_fitness - self.start_fitness

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HillClimbResult(fitness {self.start_fitness:.4f} -> "
            f"{self.best_fitness:.4f} in {len(self.steps)} steps)"
        )


def hill_climb(
    evaluator: FitnessEvaluator,
    start: IPV,
    candidate_values: Optional[Sequence[int]] = None,
    max_passes: int = 2,
    workers: int = 0,
) -> HillClimbResult:
    """First-improvement hill climbing over single-entry changes.

    ``candidate_values`` restricts the values tried per entry (default: all
    positions 0..k-1, which costs (k+1)*k evaluations per pass).

    ``workers > 1`` scores each entry's candidate batch over the spawn-safe
    :class:`~repro.ga.parallel.PopulationEvaluator` and then replays the
    sequential accept rule against the batch scores.  Because a candidate's
    fitness depends only on the value at the entry under consideration (the
    other entries are frozen during the scan), the replay is bit-identical
    to the serial first-improvement walk — same steps, same evaluation
    count, same refined vector.
    """
    k = evaluator.k
    values = list(candidate_values) if candidate_values is not None else list(range(k))
    current = list(start.entries)
    pop_eval = PopulationEvaluator(evaluator, workers=workers)
    try:
        current_fitness = evaluator.evaluate(tuple(current))
        start_fitness = current_fitness
        steps: List[Tuple[int, int, float]] = []
        evaluations = 1
        for _ in range(max_passes):
            improved = False
            for index in range(k + 1):
                original = current[index]
                # One fitness per distinct candidate value: the scan only
                # ever varies this entry, so f(value) is scan-invariant.
                # f(original) is the fitness we already hold.
                score_of: Dict[int, float] = {original: current_fitness}
                batch = [v for v in dict.fromkeys(values) if v != original]
                variants = []
                for value in batch:
                    variant = list(current)
                    variant[index] = value
                    variants.append(tuple(variant))
                for value, fitness in zip(batch, pop_eval.evaluate_all(variants)):
                    score_of[value] = fitness
                # Replay the sequential first-improvement scan exactly.
                for value in values:
                    if value == original:
                        continue
                    fitness = score_of[value]
                    evaluations += 1
                    if fitness > current_fitness:
                        current_fitness = fitness
                        steps.append((index, value, fitness))
                        improved = True
                        original = value
                current[index] = original
            if not improved:
                break
    finally:
        pop_eval.close()
    return HillClimbResult(
        IPV(current, name=f"{start.name}+hc"),
        current_fitness,
        start_fitness,
        steps,
        evaluations,
    )
