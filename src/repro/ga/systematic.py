"""Systematic IPV construction (paper future work, item 3).

Section 7: "We use a genetic algorithm to develop the vectors, but we are
investigating ways to find these vectors more systematically."

This module derives a vector analytically from a workload's per-set
reuse-distance histogram — no search at all:

* **Insertion**: a block is worth keeping only if its first reuse tends to
  arrive before ~k set-accesses evict it.  We compute the fraction of
  reuses that land within the associativity window and map it to a stack
  depth: streams (no near reuse) insert at PLRU, strongly-recency-friendly
  profiles insert at PMRU, mixtures in between — the DIP insight made
  continuous.
* **Promotion**: a block re-referenced at position *p* has proven a reuse;
  how far to promote depends on how likely a *second* reuse is to arrive
  soon, estimated from the conditional mass of short distances.  Fully
  recency-friendly profiles promote to MRU (LRU's choice); heavy-tailed
  profiles promote part-way, keeping the top of the stack for blocks with
  the shortest intervals.

The result is not expected to beat an evolved vector (the GA exploits
interactions the closed form ignores — see the comparison test), but it
beats LRU where it matters and needs zero search time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.ipv import IPV
from ..eval.config import ExperimentConfig, default_config
from ..trace.analysis import per_set_reuse_histogram
from ..workloads.spec import SPEC_BENCHMARKS

__all__ = ["derive_ipv", "derive_ipv_for_benchmarks"]


def _near_reuse_fraction(histogram: Sequence[int], window: int) -> float:
    """Fraction of observed reuses with per-set distance <= window."""
    total = sum(histogram[1:])
    if total == 0:
        return 0.0
    near = sum(histogram[1 : min(window + 1, len(histogram))])
    return near / total


def derive_ipv(
    histogram: Sequence[int],
    k: int = 16,
    name: str = "systematic",
) -> IPV:
    """Derive an insertion/promotion vector from a reuse-distance histogram.

    ``histogram[d]`` counts reuses at per-set distance ``d`` (the format of
    :func:`repro.trace.per_set_reuse_histogram`).
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    near = _near_reuse_fraction(histogram, window=k)
    very_near = _near_reuse_fraction(histogram, window=max(1, k // 4))

    # Insertion: near == 1 -> position 0 (PMRU); near == 0 -> k-1 (PLRU).
    insertion = round((1.0 - near) * (k - 1))

    # Promotion: a proven-reused block is promoted toward MRU by an amount
    # reflecting how likely its next reuse is to be near.  promote_to(p)
    # interpolates between 0 (always promote fully) and p (never promote).
    promote_strength = 0.5 + 0.5 * very_near  # in [0.5, 1.0]
    entries: List[int] = []
    for position in range(k):
        target = round(position * (1.0 - promote_strength))
        entries.append(max(0, min(k - 1, target)))
    entries.append(max(0, min(k - 1, insertion)))
    return IPV(entries, name=name)


def derive_ipv_for_benchmarks(
    benchmarks: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    name: str = "systematic",
) -> IPV:
    """Derive one vector from the pooled reuse profile of a training set."""
    config = config or default_config(trace_length=10_000)
    pooled: List[int] = [0] * 257
    for bench_name in benchmarks:
        benchmark = SPEC_BENCHMARKS[bench_name]
        traces = benchmark.traces(
            config.trace_length, config.capacity_blocks, seed=config.seed
        )
        for trace, weight in zip(traces, benchmark.weights()):
            histogram = per_set_reuse_histogram(
                trace, config.num_sets, max_distance=256
            )
            for distance, count in enumerate(histogram):
                pooled[distance] += int(round(weight * count))
    return derive_ipv(pooled, k=config.assoc, name=name)
