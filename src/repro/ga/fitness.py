"""GA fitness function (paper Section 4.3).

The fitness of an IPV is the arithmetic-mean estimated speedup over true
LRU across a set of workload traces, with CPI estimated as a linear
function of miss count — exactly the paper's simplified fitness, which it
notes runs in minutes where a performance simulation takes hours.

The evaluator embeds two specialised simulators (true-LRU-IPV and
PLRU-IPV) that skip the general cache machinery: the GA calls them millions
of times, so the hot loops run on plain lists and ints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ipv import IPV, lru_ipv
from ..eval.config import ExperimentConfig, default_config
from ..timing import LinearCPIModel
from ..workloads.spec import SPEC_BENCHMARKS, benchmark_names

__all__ = [
    "simulate_misses_lru_ipv",
    "simulate_misses_plru_ipv",
    "FitnessEvaluator",
]


def simulate_misses_lru_ipv(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
) -> int:
    """Misses in the measured window for an IPV on true-LRU stacks.

    Each set's recency stack is a list of block addresses, MRU first.
    Returns misses at indices >= ``warmup``; when ``miss_indices`` is given,
    the access index of every measured miss is appended to it (for
    MLP-aware fitness).
    """
    promo = list(entries[:assoc])
    insert = entries[assoc]
    mask = num_sets - 1
    stacks: List[List[int]] = [[] for _ in range(num_sets)]
    misses = 0
    for i, addr in enumerate(addresses):
        stack = stacks[addr & mask]
        try:
            pos = stack.index(addr)
        except ValueError:
            if i >= warmup:
                misses += 1
                if miss_indices is not None:
                    miss_indices.append(i)
            if len(stack) >= assoc:
                stack.pop()  # evict LRU
            # Incoming block conceptually lands at LRU then moves to V[k].
            stack.append(addr)
            pos = len(stack) - 1
            new = insert if insert < len(stack) else len(stack) - 1
        else:
            new = promo[pos]
            if new >= len(stack):
                new = len(stack) - 1
        if new != pos:
            del stack[pos]
            stack.insert(new, addr)
    return misses


def simulate_misses_plru_ipv(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
) -> int:
    """Misses in the measured window for an IPV on tree-PLRU state.

    Inlines the Figure 5/7/9 walks over a packed plru-bit integer per set.
    ``miss_indices``, when given, collects the access index of every
    measured miss (for MLP-aware fitness).
    """
    promo = list(entries[:assoc])
    insert = entries[assoc]
    mask = num_sets - 1
    states = [0] * num_sets
    tag_to_way: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
    way_to_tag: List[List[int]] = [[-1] * assoc for _ in range(num_sets)]
    misses = 0
    for i, addr in enumerate(addresses):
        si = addr & mask
        ways = tag_to_way[si]
        state = states[si]
        way = ways.get(addr)
        if way is None:
            if i >= warmup:
                misses += 1
                if miss_indices is not None:
                    miss_indices.append(i)
            tags = way_to_tag[si]
            if len(ways) < assoc:
                way = len(ways)  # cold fill: ways fill in order
            else:
                # find_plru walk
                n = 1
                while n < assoc:
                    n = (n << 1) | ((state >> (n - 1)) & 1)
                way = n - assoc
                del ways[tags[way]]
            tags[way] = addr
            ways[addr] = way
            new_pos = insert
        else:
            # position decode (Figure 7)
            q = assoc + way
            pos = 0
            b = 0
            while q > 1:
                parent = q >> 1
                bit = (state >> (parent - 1)) & 1
                if not (q & 1):
                    bit ^= 1
                pos |= bit << b
                q = parent
                b += 1
            new_pos = promo[pos]
        # set_position (Figure 9)
        q = assoc + way
        b = 0
        while q > 1:
            parent = q >> 1
            bit = (new_pos >> b) & 1
            if not (q & 1):
                bit ^= 1
            pmask = 1 << (parent - 1)
            state = (state | pmask) if bit else (state & ~pmask)
            q = parent
            b += 1
        states[si] = state
    return misses


class FitnessEvaluator:
    """Arithmetic-mean linear-CPI speedup over LRU across workloads.

    Parameters
    ----------
    benchmarks:
        Benchmark names to include (the GA's training set; for WN1
        cross-validation the held-out benchmark is simply omitted).
    config:
        Geometry and trace sizing; the GA typically uses a shorter
        ``trace_length`` than the evaluation runs.
    substrate:
        ``"plru"`` evolves GIPPR vectors, ``"lru"`` evolves GIPLR vectors.
    mlp_aware:
        When True, fitness uses :class:`~repro.timing.MLPAwareCPIModel`
        over per-miss instruction positions instead of the paper's linear
        model — the paper's future-work item 2 ("take MLP into account in
        the fitness function").  Accesses get bursty instruction positions
        (see :func:`repro.trace.assign_instruction_positions`) so miss
        clustering actually matters.
    """

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        config: Optional[ExperimentConfig] = None,
        substrate: str = "plru",
        mlp_aware: bool = False,
        burstiness: float = 0.5,
    ):
        if substrate not in ("plru", "lru"):
            raise ValueError("substrate must be 'plru' or 'lru'")
        self.substrate = substrate
        self.config = config or default_config(trace_length=30_000)
        self.benchmark_names = list(benchmarks or benchmark_names())
        self.timing: LinearCPIModel = self.config.timing
        self.mlp_aware = mlp_aware
        if mlp_aware:
            from ..timing import MLPAwareCPIModel

            self.mlp_model = MLPAwareCPIModel(
                base_cpi=self.timing.base_cpi,
                miss_penalty=self.timing.miss_penalty,
            )
        else:
            self.mlp_model = None
        # Workload tuples: (name, weight, addresses, instructions, positions)
        self._workloads: List[
            Tuple[str, float, List[int], int, Optional[List[int]]]
        ] = []
        self._simulate = (
            simulate_misses_plru_ipv
            if substrate == "plru"
            else simulate_misses_lru_ipv
        )
        cfg = self.config
        for name in self.benchmark_names:
            benchmark = SPEC_BENCHMARKS[name]
            traces = benchmark.traces(
                cfg.trace_length, cfg.capacity_blocks, seed=cfg.seed
            )
            for trace, weight in zip(traces, benchmark.weights()):
                measured_instructions = max(
                    1, int(trace.instructions * (1.0 - cfg.warmup_fraction))
                )
                positions = None
                if mlp_aware:
                    from ..trace.record import assign_instruction_positions

                    positions = assign_instruction_positions(
                        trace, seed=cfg.seed ^ 0xB00, burstiness=burstiness
                    ).position_list()
                self._workloads.append(
                    (
                        name,
                        weight,
                        trace.address_list(),
                        measured_instructions,
                        positions,
                    )
                )
        # Baseline: true LRU (the paper computes speedup over LRU).
        baseline = tuple(lru_ipv(cfg.assoc).entries)
        self._lru_cycles: Dict[str, float] = {}
        for name, weight, addresses, instructions, positions in self._workloads:
            cycles = self._cycles_for(
                simulate_misses_lru_ipv, baseline, addresses, instructions,
                positions,
            )
            self._lru_cycles[name] = (
                self._lru_cycles.get(name, 0.0) + weight * cycles
            )

    def _cycles_for(
        self,
        simulate,
        entries: Tuple[int, ...],
        addresses: List[int],
        instructions: int,
        positions: Optional[List[int]],
    ) -> float:
        """Cycles under the active timing model for one workload."""
        cfg = self.config
        if self.mlp_model is None:
            misses = simulate(
                addresses, cfg.num_sets, cfg.assoc, entries, cfg.warmup_accesses
            )
            return self.timing.cycles(instructions, misses)
        miss_indices: List[int] = []
        simulate(
            addresses, cfg.num_sets, cfg.assoc, entries, cfg.warmup_accesses,
            miss_indices=miss_indices,
        )
        miss_positions = [positions[i] for i in miss_indices]
        return self.mlp_model.cycles(instructions, miss_positions)

    @property
    def k(self) -> int:
        return self.config.assoc

    def evaluate(self, ipv) -> float:
        """Fitness of an IPV (IPV object or raw entry sequence)."""
        entries = tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
        if len(entries) != self.config.assoc + 1:
            raise ValueError(
                f"IPV must have {self.config.assoc + 1} entries, got {len(entries)}"
            )
        cycles: Dict[str, float] = {}
        for name, weight, addresses, instructions, positions in self._workloads:
            value = self._cycles_for(
                self._simulate, entries, addresses, instructions, positions
            )
            cycles[name] = cycles.get(name, 0.0) + weight * value
        speedups = [
            self._lru_cycles[name] / cycles[name] for name in cycles
        ]
        return sum(speedups) / len(speedups)

    def per_benchmark_speedup(self, ipv) -> Dict[str, float]:
        """Per-benchmark speedups (diagnostics and WN1 reporting)."""
        entries = tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
        cycles: Dict[str, float] = {}
        for name, weight, addresses, instructions, positions in self._workloads:
            value = self._cycles_for(
                self._simulate, entries, addresses, instructions, positions
            )
            cycles[name] = cycles.get(name, 0.0) + weight * value
        return {name: self._lru_cycles[name] / cycles[name] for name in cycles}
