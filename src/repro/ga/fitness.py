"""GA fitness function (paper Section 4.3).

The fitness of an IPV is the arithmetic-mean estimated speedup over true
LRU across a set of workload traces, with CPI estimated as a linear
function of miss count — exactly the paper's simplified fitness, which it
notes runs in minutes where a performance simulation takes hours.

The evaluator embeds two specialised simulators (true-LRU-IPV and
PLRU-IPV) that skip the general cache machinery: the GA calls them millions
of times, so the hot loops run on plain lists and ints.  The PLRU simulator
additionally dispatches to the precompiled transition-table kernels of
:mod:`repro.kernels` when available, replacing the three ``log2(k)``
bit-walks per access with O(1) ``array('H')`` lookups (the bit-walk
reference below remains the ground truth and the fallback).

Workload sharing: generated traces, their MLP instruction positions and
the baseline LRU miss counts are memoized at module level keyed by the
exact trace derivation ``(benchmark, trace_length, capacity, seed)``, so
every :class:`FitnessEvaluator` instance in a process — including the GA
worker processes of :mod:`repro.ga.parallel` — shares one copy instead of
regenerating and re-simulating per instance.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ipv import IPV, lru_ipv
from ..eval.config import ExperimentConfig, default_config
from ..kernels import record_kernel_call, resolve_kernel
from ..timing import LinearCPIModel
from ..workloads.spec import SPEC_BENCHMARKS, benchmark_names

__all__ = [
    "simulate_misses_lru_ipv",
    "simulate_misses_plru_ipv",
    "FitnessEvaluator",
    "clear_workload_memo",
    "columnar_memo_stats",
    "publish_columnar_memo_gauges",
]


def _validate_ipv_entries(entries: Sequence[int], assoc: int) -> None:
    """Reject malformed IPVs up front: silent mis-simulation is worse than
    a :class:`ValueError` (an out-of-range ``V[i]`` used to corrupt the
    recency state without any diagnostic)."""
    if len(entries) != assoc + 1:
        raise ValueError(
            f"IPV for a {assoc}-way set needs {assoc + 1} entries, "
            f"got {len(entries)}"
        )
    for i, e in enumerate(entries):
        if not 0 <= e < assoc:
            raise ValueError(
                f"IPV entry V[{i}]={e} out of range 0..{assoc - 1}"
            )


def _validate_window(addresses: Sequence[int], warmup: int) -> None:
    """Reject degenerate measurement windows.

    ``warmup >= len(addresses)`` used to yield a silently empty measured
    window: every simulator returned 0 misses, so fitness compared 0-vs-0
    cycles and ranked all IPVs equal without any diagnostic.  Raise
    instead — a caller who wants a pure-warmup run is holding a config
    bug, not a result.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be non-negative, got {warmup}")
    if warmup >= len(addresses):
        raise ValueError(
            f"warmup ({warmup}) consumes the whole trace "
            f"({len(addresses)} accesses): the measured window is empty"
        )


def simulate_misses_lru_ipv(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
) -> int:
    """Misses in the measured window for an IPV on true-LRU stacks.

    Each set's recency stack is a list of block addresses, MRU first.
    Returns misses at indices >= ``warmup``; when ``miss_indices`` is given,
    the access index of every measured miss is appended to it (for
    MLP-aware fitness).
    """
    _validate_ipv_entries(entries, assoc)
    _validate_window(addresses, warmup)
    promo = list(entries[:assoc])
    insert = entries[assoc]
    mask = num_sets - 1
    stacks: List[List[int]] = [[] for _ in range(num_sets)]
    misses = 0
    for i, addr in enumerate(addresses):
        stack = stacks[addr & mask]
        try:
            pos = stack.index(addr)
        except ValueError:
            if i >= warmup:
                misses += 1
                if miss_indices is not None:
                    miss_indices.append(i)
            if len(stack) >= assoc:
                stack.pop()  # evict LRU
            # Incoming block conceptually lands at LRU then moves to V[k].
            stack.append(addr)
            pos = len(stack) - 1
            new = insert if insert < len(stack) else len(stack) - 1
        else:
            new = promo[pos]
            if new >= len(stack):
                new = len(stack) - 1
        if new != pos:
            del stack[pos]
            stack.insert(new, addr)
    return misses


def _simulate_misses_plru_walk(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
) -> int:
    """Bit-walk reference: inlined Figure 5/7/9 over packed plru bits."""
    promo = list(entries[:assoc])
    insert = entries[assoc]
    mask = num_sets - 1
    states = [0] * num_sets
    tag_to_way: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
    way_to_tag: List[List[int]] = [[-1] * assoc for _ in range(num_sets)]
    misses = 0
    for i, addr in enumerate(addresses):
        si = addr & mask
        ways = tag_to_way[si]
        state = states[si]
        way = ways.get(addr)
        if way is None:
            if i >= warmup:
                misses += 1
                if miss_indices is not None:
                    miss_indices.append(i)
            tags = way_to_tag[si]
            if len(ways) < assoc:
                way = len(ways)  # cold fill: ways fill in order
            else:
                # find_plru walk
                n = 1
                while n < assoc:
                    n = (n << 1) | ((state >> (n - 1)) & 1)
                way = n - assoc
                del ways[tags[way]]
            tags[way] = addr
            ways[addr] = way
            new_pos = insert
        else:
            # position decode (Figure 7)
            q = assoc + way
            pos = 0
            b = 0
            while q > 1:
                parent = q >> 1
                bit = (state >> (parent - 1)) & 1
                if not (q & 1):
                    bit ^= 1
                pos |= bit << b
                q = parent
                b += 1
            new_pos = promo[pos]
        # set_position (Figure 9)
        q = assoc + way
        b = 0
        while q > 1:
            parent = q >> 1
            bit = (new_pos >> b) & 1
            if not (q & 1):
                bit ^= 1
            pmask = 1 << (parent - 1)
            state = (state | pmask) if bit else (state & ~pmask)
            q = parent
            b += 1
        states[si] = state
    return misses


def _simulate_misses_plru_lut(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    tables,
    warmup: int,
    miss_indices: Optional[List[int]] = None,
) -> int:
    """LUT kernel: every Figure 5/7/9 walk replaced by one table index.

    Performs *exactly* the reference's state transitions (the composed
    ``hit``/``fill`` tables are the walks, memoized), so miss counts are
    bit-identical — asserted exhaustively in ``tests/kernels``.
    """
    victim = tables.victim
    hit = tables.hit
    fill = tables.fill
    shift = tables.log2k
    mask = num_sets - 1
    states = [0] * num_sets
    tag_to_way: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
    way_to_tag: List[List[int]] = [[-1] * assoc for _ in range(num_sets)]
    misses = 0
    for i, addr in enumerate(addresses):
        si = addr & mask
        ways = tag_to_way[si]
        way = ways.get(addr)
        state = states[si]
        if way is None:
            if i >= warmup:
                misses += 1
                if miss_indices is not None:
                    miss_indices.append(i)
            tags = way_to_tag[si]
            if len(ways) < assoc:
                way = len(ways)  # cold fill: ways fill in order
            else:
                way = victim[state]
                del ways[tags[way]]
            tags[way] = addr
            ways[addr] = way
            states[si] = fill[(state << shift) | way]
        else:
            states[si] = hit[(state << shift) | way]
    return misses


def simulate_misses_plru_ipv(
    addresses: Sequence[int],
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    warmup: int,
    miss_indices: Optional[List[int]] = None,
    kernel: str = "auto",
) -> int:
    """Misses in the measured window for an IPV on tree-PLRU state.

    ``kernel`` selects the implementation: ``"auto"`` (default) uses the
    precompiled transition tables of :mod:`repro.kernels` when available
    and falls back to the bit-walk reference otherwise; ``"lut"`` demands
    tables (raises when unsupported); ``"walk"`` forces the reference;
    ``"columnar"`` runs the numpy batch engine of
    :mod:`repro.engine.columnar` (raises without numpy — it never
    silently degrades).  All paths are bit-identical.  ``miss_indices``,
    when given, collects the access index of every measured miss (for
    MLP-aware fitness).
    """
    _validate_ipv_entries(entries, assoc)
    _validate_window(addresses, warmup)
    if kernel == "columnar":
        from ..engine.columnar import simulate_misses_plru_columnar

        record_kernel_call("columnar")
        return simulate_misses_plru_columnar(
            addresses, num_sets, assoc, entries, warmup, miss_indices
        )
    tables = resolve_kernel(kernel, assoc, entries)
    if tables is not None:
        record_kernel_call("lut")
        return _simulate_misses_plru_lut(
            addresses, num_sets, assoc, tables, warmup, miss_indices
        )
    record_kernel_call("walk")
    return _simulate_misses_plru_walk(
        addresses, num_sets, assoc, entries, warmup, miss_indices
    )


# ----------------------------------------------------------------------
# Shared workload / baseline memos.
#
# Keys mirror the trace derivation in SpecBenchmark.trace exactly; two
# evaluators (or one evaluator and a GA worker) with the same geometry and
# seed therefore share address lists by reference and never re-simulate
# the LRU baseline.  Bounded LRU to keep long-lived processes flat.
# ----------------------------------------------------------------------
_WORKLOAD_MEMO: "OrderedDict[tuple, list]" = OrderedDict()
_POSITIONS_MEMO: "OrderedDict[tuple, list]" = OrderedDict()
_BASELINE_MEMO: "OrderedDict[tuple, tuple]" = OrderedDict()
_COLUMNAR_MEMO: "OrderedDict[tuple, object]" = OrderedDict()
_WORKLOAD_MEMO_LIMIT = 64
_BASELINE_MEMO_LIMIT = 256
#: Step-transposed layouts are the largest memoized objects (a few x the
#: address list), so their LRU bound is the tightest: 32 comfortably
#: covers a 29-benchmark matrix at one geometry without letting a
#: num_sets sweep accumulate every layout it ever built.
_COLUMNAR_MEMO_LIMIT = 32
_COLUMNAR_MEMO_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def clear_workload_memo() -> None:
    """Drop every shared trace/baseline memo (tests, memory pressure)."""
    _WORKLOAD_MEMO.clear()
    _POSITIONS_MEMO.clear()
    _BASELINE_MEMO.clear()
    _COLUMNAR_MEMO.clear()
    for key in _COLUMNAR_MEMO_STATS:
        _COLUMNAR_MEMO_STATS[key] = 0


def _shared_columnar_trace(key: tuple, addresses, num_sets: int):
    """Bounded LRU memo of :class:`~repro.engine.columnar.ColumnarTrace`.

    Keyed by the trace *derivation* (benchmark, simpoint, length,
    capacity, seed) plus ``num_sets`` — never by address-list identity,
    so evaluators rebuilt across GA generations (or sweep points) reuse
    layouts instead of growing one dict per instance without limit.
    """
    trace = _COLUMNAR_MEMO.get(key)
    if trace is None:
        from ..engine.columnar import ColumnarTrace

        _COLUMNAR_MEMO_STATS["misses"] += 1
        trace = ColumnarTrace(addresses, num_sets)
        _COLUMNAR_MEMO[key] = trace
        while len(_COLUMNAR_MEMO) > _COLUMNAR_MEMO_LIMIT:
            _COLUMNAR_MEMO.popitem(last=False)
            _COLUMNAR_MEMO_STATS["evictions"] += 1
    else:
        _COLUMNAR_MEMO_STATS["hits"] += 1
        _COLUMNAR_MEMO.move_to_end(key)
    return trace


def columnar_memo_stats() -> dict:
    """Snapshot of the ColumnarTrace memo: size, limit, hit/miss/evict."""
    lookups = _COLUMNAR_MEMO_STATS["hits"] + _COLUMNAR_MEMO_STATS["misses"]
    return {
        "size": len(_COLUMNAR_MEMO),
        "limit": _COLUMNAR_MEMO_LIMIT,
        "hits": _COLUMNAR_MEMO_STATS["hits"],
        "misses": _COLUMNAR_MEMO_STATS["misses"],
        "evictions": _COLUMNAR_MEMO_STATS["evictions"],
        "hit_rate": (
            _COLUMNAR_MEMO_STATS["hits"] / lookups if lookups else 0.0
        ),
    }


def publish_columnar_memo_gauges(registry) -> None:
    """Export the memo stats as ``repro_columnar_memo_*`` gauges.

    Gauges are *set* from the snapshot (idempotent republish), matching
    :func:`repro.kernels.tables.publish_kernel_gauges`.
    """
    stats = columnar_memo_stats()
    for field, help_text in (
        ("size", "ColumnarTrace memo entries resident"),
        ("limit", "ColumnarTrace memo LRU bound"),
        ("hits", "ColumnarTrace memo lookup hits"),
        ("misses", "ColumnarTrace memo lookup misses"),
        ("evictions", "ColumnarTrace memo LRU evictions"),
        ("hit_rate", "ColumnarTrace memo hit rate"),
    ):
        registry.gauge(
            f"repro_columnar_memo_{field}", help_text
        ).set(stats[field])


def _memo_get(memo: OrderedDict, key, limit: int, build):
    value = memo.get(key)
    if value is None:
        value = build()
        memo[key] = value
        while len(memo) > limit:
            memo.popitem(last=False)
    else:
        memo.move_to_end(key)
    return value


def _shared_workloads(
    name: str, trace_length: int, capacity: int, seed: int
) -> List[Tuple[List[int], int]]:
    """Per-simpoint ``(address list, instruction count)`` for a benchmark,
    shared by every evaluator with the same trace derivation."""

    def build():
        benchmark = SPEC_BENCHMARKS[name]
        traces = benchmark.traces(trace_length, capacity, seed=seed)
        return [(t.address_list(), t.instructions) for t in traces]

    key = (name, trace_length, capacity, seed)
    return _memo_get(_WORKLOAD_MEMO, key, _WORKLOAD_MEMO_LIMIT, build)


def _shared_positions(
    name: str,
    trace_length: int,
    capacity: int,
    seed: int,
    pos_seed: int,
    burstiness: float,
) -> List[List[int]]:
    """Per-simpoint MLP instruction positions, shared like the traces."""

    def build():
        from ..trace.record import assign_instruction_positions

        benchmark = SPEC_BENCHMARKS[name]
        traces = benchmark.traces(trace_length, capacity, seed=seed)
        return [
            assign_instruction_positions(
                t, seed=pos_seed, burstiness=burstiness
            ).position_list()
            for t in traces
        ]

    key = (name, trace_length, capacity, seed, pos_seed, burstiness)
    return _memo_get(_POSITIONS_MEMO, key, _WORKLOAD_MEMO_LIMIT, build)


def _shared_baseline(
    name: str,
    simpoint: int,
    trace_length: int,
    capacity: int,
    seed: int,
    num_sets: int,
    assoc: int,
    warmup: int,
    collect_indices: bool,
) -> Tuple[int, Optional[Tuple[int, ...]]]:
    """Baseline (true-LRU vector) misses for one simpoint, memoized.

    Returns ``(misses, miss_indices or None)``; cycles are derived by the
    caller from its own timing model, so one memo entry serves evaluators
    with different CPI parameters.
    """

    def build():
        addresses = _shared_workloads(name, trace_length, capacity, seed)[
            simpoint
        ][0]
        baseline = tuple(lru_ipv(assoc).entries)
        if collect_indices:
            indices: List[int] = []
            misses = simulate_misses_lru_ipv(
                addresses, num_sets, assoc, baseline, warmup,
                miss_indices=indices,
            )
            return misses, tuple(indices)
        misses = simulate_misses_lru_ipv(
            addresses, num_sets, assoc, baseline, warmup
        )
        return misses, None

    key = (
        name, simpoint, trace_length, capacity, seed, num_sets, assoc,
        warmup, collect_indices,
    )
    return _memo_get(_BASELINE_MEMO, key, _BASELINE_MEMO_LIMIT, build)


class FitnessEvaluator:
    """Arithmetic-mean linear-CPI speedup over LRU across workloads.

    Parameters
    ----------
    benchmarks:
        Benchmark names to include (the GA's training set; for WN1
        cross-validation the held-out benchmark is simply omitted).
    config:
        Geometry and trace sizing; the GA typically uses a shorter
        ``trace_length`` than the evaluation runs.
    substrate:
        ``"plru"`` evolves GIPPR vectors, ``"lru"`` evolves GIPLR vectors.
    mlp_aware:
        When True, fitness uses :class:`~repro.timing.MLPAwareCPIModel`
        over per-miss instruction positions instead of the paper's linear
        model — the paper's future-work item 2 ("take MLP into account in
        the fitness function").  Accesses get bursty instruction positions
        (see :func:`repro.trace.assign_instruction_positions`) so miss
        clustering actually matters.
    kernel:
        Kernel selection for the PLRU substrate: ``"auto"`` (transition
        tables when available), ``"lut"`` (demand tables), ``"walk"``
        (force the bit-walk reference) or ``"columnar"`` (the numpy batch
        engine; :meth:`evaluate_many` then shares one columnar trace pass
        across the whole population).  All choices are bit-identical.
    """

    #: ``kernel="auto"`` batches through the columnar engine only at or
    #: above this many lanes — below it the per-run numpy setup outweighs
    #: the amortized trace pass and the scalar LUT path wins.  Class-level
    #: default; per-instance it resolves through ``columnar_min_lanes`` /
    #: ``$REPRO_COLUMNAR_MIN_LANES`` (see
    #: :func:`repro.engine.columnar.resolve_min_lanes`).
    COLUMNAR_AUTO_MIN_LANES = 4

    def __init__(
        self,
        benchmarks: Optional[Sequence[str]] = None,
        config: Optional[ExperimentConfig] = None,
        substrate: str = "plru",
        mlp_aware: bool = False,
        burstiness: float = 0.5,
        kernel: str = "auto",
        columnar_min_lanes: Optional[int] = None,
    ):
        if substrate not in ("plru", "lru"):
            raise ValueError("substrate must be 'plru' or 'lru'")
        if kernel not in ("auto", "lut", "walk", "columnar"):
            raise ValueError(
                f"kernel must be 'auto', 'lut', 'walk' or 'columnar', "
                f"got {kernel!r}"
            )
        self.substrate = substrate
        self.kernel = kernel
        from ..engine.columnar import resolve_min_lanes

        self.columnar_min_lanes = resolve_min_lanes(
            columnar_min_lanes, default=self.COLUMNAR_AUTO_MIN_LANES
        )
        self.config = config or default_config(trace_length=30_000)
        self.benchmark_names = list(benchmarks or benchmark_names())
        self.timing: LinearCPIModel = self.config.timing
        self.mlp_aware = mlp_aware
        self.burstiness = burstiness
        if mlp_aware:
            from ..timing import MLPAwareCPIModel

            self.mlp_model = MLPAwareCPIModel(
                base_cpi=self.timing.base_cpi,
                miss_penalty=self.timing.miss_penalty,
            )
        else:
            self.mlp_model = None
        # Workload tuples: (name, weight, addresses, instructions, positions)
        self._workloads: List[
            Tuple[str, float, List[int], int, Optional[List[int]]]
        ] = []
        # Parallel (name, simpoint) keys: the workload's derivation
        # identity, used to address the shared ColumnarTrace memo.
        self._workload_keys: List[Tuple[str, int]] = []
        cfg = self.config
        for name in self.benchmark_names:
            benchmark = SPEC_BENCHMARKS[name]
            shared = _shared_workloads(
                name, cfg.trace_length, cfg.capacity_blocks, cfg.seed
            )
            positions_by_sp: Optional[List[List[int]]] = None
            if mlp_aware:
                positions_by_sp = _shared_positions(
                    name, cfg.trace_length, cfg.capacity_blocks, cfg.seed,
                    cfg.seed ^ 0xB00, burstiness,
                )
            for simpoint, ((addresses, trace_instructions), weight) in enumerate(
                zip(shared, benchmark.weights())
            ):
                measured_instructions = max(
                    1, int(trace_instructions * (1.0 - cfg.warmup_fraction))
                )
                positions = (
                    positions_by_sp[simpoint] if positions_by_sp else None
                )
                self._workloads.append(
                    (name, weight, addresses, measured_instructions, positions)
                )
                self._workload_keys.append((name, simpoint))
        # Baseline: true LRU (the paper computes speedup over LRU), via the
        # cross-evaluator memo so repeated instantiations (GA workers, WN1
        # folds over overlapping training sets) never re-simulate it.
        self._lru_cycles: Dict[str, float] = {}
        index = 0
        for name in self.benchmark_names:
            benchmark = SPEC_BENCHMARKS[name]
            for simpoint, weight in enumerate(benchmark.weights()):
                _, _, addresses, instructions, positions = self._workloads[index]
                index += 1
                misses, miss_idx = _shared_baseline(
                    name, simpoint, cfg.trace_length, cfg.capacity_blocks,
                    cfg.seed, cfg.num_sets, cfg.assoc, cfg.warmup_accesses,
                    collect_indices=self.mlp_model is not None,
                )
                if self.mlp_model is None:
                    cycles = self.timing.cycles(instructions, misses)
                else:
                    miss_positions = [positions[i] for i in miss_idx]
                    cycles = self.mlp_model.cycles(instructions, miss_positions)
                self._lru_cycles[name] = (
                    self._lru_cycles.get(name, 0.0) + weight * cycles
                )

    def _simulate(self, addresses, num_sets, assoc, entries, warmup,
                  miss_indices=None):
        if self.substrate == "plru":
            return simulate_misses_plru_ipv(
                addresses, num_sets, assoc, entries, warmup,
                miss_indices=miss_indices, kernel=self.kernel,
            )
        return simulate_misses_lru_ipv(
            addresses, num_sets, assoc, entries, warmup,
            miss_indices=miss_indices,
        )

    def _cycles_for(
        self,
        entries: Tuple[int, ...],
        addresses: List[int],
        instructions: int,
        positions: Optional[List[int]],
    ) -> float:
        """Cycles under the active timing model for one workload."""
        cfg = self.config
        if self.mlp_model is None:
            misses = self._simulate(
                addresses, cfg.num_sets, cfg.assoc, entries, cfg.warmup_accesses
            )
            return self.timing.cycles(instructions, misses)
        miss_indices: List[int] = []
        self._simulate(
            addresses, cfg.num_sets, cfg.assoc, entries, cfg.warmup_accesses,
            miss_indices=miss_indices,
        )
        miss_positions = [positions[i] for i in miss_indices]
        return self.mlp_model.cycles(instructions, miss_positions)

    @property
    def k(self) -> int:
        return self.config.assoc

    # ------------------------------------------------------------------
    # Spawn-safe reconstruction (repro.ga.parallel): the spec is a small
    # picklable dict; workers rebuild the evaluator and regenerate traces
    # from it (hitting the module memos), mirroring how the PR-1 runner
    # regenerates simpoint traces instead of pickling them.
    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """Picklable recipe from which :meth:`from_spec` rebuilds ``self``."""
        cfg = self.config
        return {
            "benchmarks": list(self.benchmark_names),
            "config": {
                "num_sets": cfg.num_sets,
                "assoc": cfg.assoc,
                "trace_length": cfg.trace_length,
                "warmup_fraction": cfg.warmup_fraction,
                "seed": cfg.seed,
            },
            "timing": {
                "base_cpi": self.timing.base_cpi,
                "miss_penalty": self.timing.miss_penalty,
            },
            "substrate": self.substrate,
            "mlp_aware": self.mlp_aware,
            "burstiness": self.burstiness,
            "kernel": self.kernel,
            "columnar_min_lanes": self.columnar_min_lanes,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "FitnessEvaluator":
        """Rebuild an equivalent evaluator from :meth:`spec` output."""
        config = ExperimentConfig(
            apply_env_scale=False,
            timing=LinearCPIModel(**spec["timing"]),
            **spec["config"],
        )
        return cls(
            benchmarks=spec["benchmarks"],
            config=config,
            substrate=spec["substrate"],
            mlp_aware=spec["mlp_aware"],
            burstiness=spec["burstiness"],
            kernel=spec["kernel"],
            columnar_min_lanes=spec.get("columnar_min_lanes"),
        )

    def evaluate(self, ipv) -> float:
        """Fitness of an IPV (IPV object or raw entry sequence)."""
        entries = tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
        if len(entries) != self.config.assoc + 1:
            raise ValueError(
                f"IPV must have {self.config.assoc + 1} entries, got {len(entries)}"
            )
        cycles: Dict[str, float] = {}
        for name, weight, addresses, instructions, positions in self._workloads:
            value = self._cycles_for(entries, addresses, instructions, positions)
            cycles[name] = cycles.get(name, 0.0) + weight * value
        speedups = [
            self._lru_cycles[name] / cycles[name] for name in cycles
        ]
        return sum(speedups) / len(speedups)

    # ------------------------------------------------------------------
    # Batched evaluation: the columnar engine's raison d'être.  One trace
    # pass serves every IPV lane, so a GA generation amortizes trace
    # decoding across the whole population.
    # ------------------------------------------------------------------
    def _columnar_batchable(self, lanes: int) -> bool:
        """Can (and should) a batch of ``lanes`` IPVs go columnar?

        ``kernel="columnar"`` always says yes — the engine then raises its
        own clear error if numpy is missing, rather than silently running
        scalar.  ``"auto"`` opts in only when the engine is actually
        available and the batch is big enough to amortize the numpy setup;
        MLP-aware fitness stays scalar (it needs per-miss indices fed
        through the position model, a per-lane post-pass not worth the
        gather today).
        """
        if self.substrate != "plru" or self.mlp_model is not None:
            return False
        if self.kernel == "columnar":
            return True
        if self.kernel != "auto" or lanes < self.columnar_min_lanes:
            return False
        from ..engine.columnar import columnar_supported

        return columnar_supported(self.config.assoc)

    def _columnar_trace(self, index: int, addresses: List[int]):
        """The workload's step-transposed layout, via the bounded memo.

        The layout is a pure function of the trace derivation and
        geometry, so one build serves every generation's population —
        and, through the module-level LRU, every *evaluator* with the
        same derivation (GA workers, sweep points).
        """
        cfg = self.config
        name, simpoint = self._workload_keys[index]
        key = (name, simpoint, cfg.trace_length, cfg.capacity_blocks,
               cfg.seed, cfg.num_sets)
        return _shared_columnar_trace(key, addresses, cfg.num_sets)

    def evaluate_many(self, ipvs: Sequence) -> List[float]:
        """Fitness of many IPVs, batched through the columnar engine.

        Bit-identical to ``[self.evaluate(ipv) for ipv in ipvs]`` — the
        per-lane miss counts match the scalar kernels exactly and the
        cycle accumulation runs in the same workload order with the same
        float operations — but one engine pass per workload serves the
        whole batch.  Falls back to that scalar loop whenever the batch
        cannot go columnar (see :meth:`_columnar_batchable`).
        """
        batch = [
            tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
            for ipv in ipvs
        ]
        if not batch:
            return []
        for entries in batch:
            if len(entries) != self.config.assoc + 1:
                raise ValueError(
                    f"IPV must have {self.config.assoc + 1} entries, "
                    f"got {len(entries)}"
                )
            _validate_ipv_entries(entries, self.config.assoc)
        if not self._columnar_batchable(len(batch)):
            return [self.evaluate(entries) for entries in batch]
        from ..engine.columnar import BatchSimulator

        cfg = self.config
        simulator = BatchSimulator(
            cfg.num_sets, cfg.assoc, batch, cfg.warmup_accesses
        )
        cycles: List[Dict[str, float]] = [{} for _ in batch]
        for index, (name, weight, addresses, instructions, _positions) in (
            enumerate(self._workloads)
        ):
            trace = self._columnar_trace(index, addresses)
            record_kernel_call("columnar")
            misses = simulator.run(trace)
            for lane, lane_cycles in enumerate(cycles):
                value = self.timing.cycles(instructions, int(misses[lane]))
                lane_cycles[name] = lane_cycles.get(name, 0.0) + weight * value
        results: List[float] = []
        for lane_cycles in cycles:
            speedups = [
                self._lru_cycles[name] / lane_cycles[name]
                for name in lane_cycles
            ]
            results.append(sum(speedups) / len(speedups))
        return results

    def per_benchmark_speedup(self, ipv) -> Dict[str, float]:
        """Per-benchmark speedups (diagnostics and WN1 reporting)."""
        entries = tuple(ipv.entries if isinstance(ipv, IPV) else ipv)
        cycles: Dict[str, float] = {}
        for name, weight, addresses, instructions, positions in self._workloads:
            value = self._cycles_for(entries, addresses, instructions, positions)
            cycles[name] = cycles.get(name, 0.0) + weight * value
        return {name: self._lru_cycles[name] / cycles[name] for name in cycles}
