"""Uniformly random IPV design-space sampling (paper Figure 1 / Section 4.1).

The paper samples 15 000 uniformly random IPVs, evaluates each with the
linear-CPI fitness, and sorts the speedups: most random vectors lose to LRU,
a thin tail wins by up to ~2.8 %.  This module reproduces that experiment at
configurable sample counts.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..core.ipv import IPV
from .fitness import FitnessEvaluator
from .parallel import PopulationEvaluator
from .surrogate import FitnessMemo, SurrogatePrefilter

__all__ = ["random_search"]


def random_search(
    evaluator: FitnessEvaluator,
    samples: int = 500,
    seed: int = 0,
    workers: int = 0,
    memo: Optional[FitnessMemo] = None,
    surrogate: Union[None, bool, SurrogatePrefilter] = None,
    surrogate_keep: float = 0.1,
    surrogate_audit: int = 32,
    surrogate_rho_floor: float = 0.5,
    feature_cache: Union[None, bool, str, Path] = True,
) -> List[Tuple[float, IPV]]:
    """Evaluate ``samples`` random IPVs; return (fitness, ipv) ascending.

    The ascending sort matches Figure 1's x-axis ("sorted points in the
    design space").

    ``memo`` shares a cross-run :class:`FitnessMemo` so duplicate draws
    (likely at small k) and candidates seen by an earlier search are not
    re-simulated; the returned fitness floats are bit-identical either way.

    ``surrogate`` enables the analytic prefilter: only the analytically
    top ``surrogate_keep`` fraction plus the random audit sample is
    simulated and *returned* — the result list is then shorter than
    ``samples`` by design (the paper's Figure 1 tail is exactly the
    region the prefilter keeps).  The default keeps the exhaustive
    paper-faithful behaviour.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    k = evaluator.k
    rng = random.Random(seed)
    candidates = [
        tuple(rng.randrange(k) for _ in range(k + 1)) for _ in range(samples)
    ]
    fitness_memo = memo if memo is not None else FitnessMemo()
    prefilter: Optional[SurrogatePrefilter]
    if isinstance(surrogate, SurrogatePrefilter):
        prefilter = surrogate
    elif surrogate:
        prefilter = SurrogatePrefilter.from_evaluator(
            evaluator, keep=surrogate_keep, audit=surrogate_audit,
            rho_floor=surrogate_rho_floor, seed=seed,
            cache_dir=feature_cache,
        )
    else:
        prefilter = None
    with PopulationEvaluator(evaluator, workers=workers) as pop_eval:
        if prefilter is not None:
            pairs = prefilter.evaluate_batch(
                pop_eval, fitness_memo, candidates
            )
            fitness_by_entries = {
                entries: fitness for fitness, entries in pairs
            }
            results = [
                (fitness_by_entries[entries], IPV(entries, name=f"rand{i}"))
                for i, entries in enumerate(candidates)
                if entries in fitness_by_entries
            ]
        else:
            scores = fitness_memo.evaluate_all(pop_eval, candidates)
            results = [
                (score, IPV(entries, name=f"rand{i}"))
                for i, (score, entries) in enumerate(zip(scores, candidates))
            ]
    results.sort(key=lambda p: p[0])
    return results
