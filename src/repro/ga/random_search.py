"""Uniformly random IPV design-space sampling (paper Figure 1 / Section 4.1).

The paper samples 15 000 uniformly random IPVs, evaluates each with the
linear-CPI fitness, and sorts the speedups: most random vectors lose to LRU,
a thin tail wins by up to ~2.8 %.  This module reproduces that experiment at
configurable sample counts.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.ipv import IPV
from .fitness import FitnessEvaluator
from .parallel import PopulationEvaluator

__all__ = ["random_search"]


def random_search(
    evaluator: FitnessEvaluator,
    samples: int = 500,
    seed: int = 0,
    workers: int = 0,
) -> List[Tuple[float, IPV]]:
    """Evaluate ``samples`` random IPVs; return (fitness, ipv) ascending.

    The ascending sort matches Figure 1's x-axis ("sorted points in the
    design space").
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    k = evaluator.k
    rng = random.Random(seed)
    candidates = [
        tuple(rng.randrange(k) for _ in range(k + 1)) for _ in range(samples)
    ]
    with PopulationEvaluator(evaluator, workers=workers) as pop_eval:
        scores = pop_eval.evaluate_all(candidates)
    results = [
        (score, IPV(entries, name=f"rand{i}"))
        for i, (score, entries) in enumerate(zip(scores, candidates))
    ]
    results.sort(key=lambda p: p[0])
    return results
