"""Streaming Zipf key-value serving scenario.

:mod:`repro.serve.workload` generates bounded-memory, deterministic,
chunk-invariant Zipf/churn/flash-crowd access streams;
:mod:`repro.serve.frontend` shards them by set index into persistent
streaming simulators (columnar when numpy is present, scalar otherwise);
:mod:`repro.serve.service` wires the two into the observability stack
and backs the ``repro serve`` CLI.
"""

from .frontend import ShardedFrontend, ShardResult
from .service import ServingReport, run_serving
from .telemetry import DEFAULT_WINDOW_ACCESSES, ServeTelemetry
from .workload import (
    GEN_BLOCK,
    FlashPhase,
    ServingSpec,
    ServingStream,
    auto_flash_phases,
    zipf_cdf,
)

__all__ = [
    "DEFAULT_WINDOW_ACCESSES",
    "GEN_BLOCK",
    "FlashPhase",
    "ServeTelemetry",
    "ServingReport",
    "ServingSpec",
    "ServingStream",
    "ShardResult",
    "ShardedFrontend",
    "auto_flash_phases",
    "run_serving",
    "zipf_cdf",
]
