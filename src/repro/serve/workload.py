"""Bounded-memory streaming Zipf key-value workload generator.

The ROADMAP's north star is a service "serving heavy traffic from
millions of users".  This module models that traffic the way the KV-
serving literature does (Multi-step LRU; Berthet's power-law miss-rate
analysis): key popularity follows a Zipf law with configurable ``alpha``,
the key space *churns* (old keys retire, fresh keys arrive), flash-crowd
phases concentrate traffic on a tiny hot subset, and several tenants
interleave on one cache.

Design constraints, in order:

1. **Bounded memory.**  The stream is produced in fixed
   :data:`GEN_BLOCK`-access generation blocks; working memory is
   O(keys + chunk), never O(accesses) — a 100M-access stream
   materializes nothing.
2. **Deterministic and chunk-invariant.**  Every random draw is a pure
   counter-based hash (splitmix64 finalizer) of
   ``(seed, stream tag, access index)``, and churn is applied on fixed
   generation-block boundaries — so the address sequence is a pure
   function of the spec, independent of how the consumer chunks it.
3. **Backend bit-identity.**  The numpy backend computes exactly the
   integer/float64 operations of the pure-Python backend (shared
   Zipf CDF, ``u >> 11`` 53-bit uniform floats, `searchsorted` ==
   `bisect_right`), so a no-numpy host generates the identical stream.
4. **Churned-out keys never reappear.**  Every key slot holds a
   monotonically increasing uid; retiring a slot assigns a fresh uid and
   uids are never reused.  Addresses are an *injective* image of
   ``(tenant, uid)`` (odd-multiplier bijection mod 2**62), so a retired
   key's address is gone for good.

Address layout: ``addr = ((uid * tenants + tenant) * ADDR_MULT) mod
2**62``.  The odd multiplier is invertible mod 2**62 (injectivity) and
scatters Zipf rank away from the set-index bits, so low-order set
selection is unbiased.  Addresses are non-negative int64 — exactly what
:class:`~repro.engine.columnar.ColumnarTrace` requires.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Optional, Tuple

from ..kernels.tables import numpy_or_none
from ..obs.slo import SLOSpec
from ..workloads.seeding import derive_seed, spec_digest

__all__ = [
    "ADDR_MASK",
    "GEN_BLOCK",
    "FlashPhase",
    "ServingSpec",
    "ServingStream",
    "auto_flash_phases",
    "zipf_cdf",
]

#: Accesses per generation block.  Churn is applied on these boundaries,
#: which is what makes the stream invariant under consumer chunking.
GEN_BLOCK = 8192

_M64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: Odd multiplier of the address bijection (invertible mod 2**62).
ADDR_MULT = 0x9E3779B97F4A7C15
ADDR_MASK = (1 << 62) - 1

# Stream tags: one independent hash stream per random decision.
_TAG_TENANT = 1
_TAG_RANK = 2
_TAG_FLASH = 3
_TAG_HOT = 4
_TAG_CHURN_TENANT = 5
_TAG_CHURN_SLOT = 6


def _mix64(x: int) -> int:
    """splitmix64 finalizer over a 64-bit int (pure Python)."""
    x &= _M64
    x = ((x ^ (x >> 30)) * _MIX1) & _M64
    x = ((x ^ (x >> 27)) * _MIX2) & _M64
    return x ^ (x >> 31)


def _stream_seed(seed: int, tag: int) -> int:
    """Base state of one counter-based hash stream."""
    return _mix64((seed + tag * _GOLDEN) & _M64)


def _hash_at(stream: int, i: int) -> int:
    """The ``i``-th draw of a stream: pure function of (stream, i)."""
    return _mix64((stream + i * _GOLDEN) & _M64)


def _u53(v: int) -> float:
    """Uniform float64 in [0, 1) from a 64-bit draw (exact, portable)."""
    return (v >> 11) * (2.0 ** -53)


def _share_threshold(share: float) -> int:
    """Integer threshold for ``draw < threshold`` == prob. ``share``."""
    return min(int(share * 2.0 ** 64), _M64)


def zipf_cdf(keys: int, alpha: float) -> List[float]:
    """CDF of the Zipf(alpha) law over ranks ``0..keys-1``.

    Built once in pure Python and shared verbatim by both backends —
    the float64 list *is* the contract, so numpy and no-numpy hosts
    binary-search identical values.  The last entry is pinned to 1.0.
    """
    if keys < 1:
        raise ValueError(f"keys must be positive, got {keys}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    weights = [float(r + 1) ** -alpha for r in range(keys)]
    total = 0.0
    cdf = []
    for w in weights:
        total += w
        cdf.append(total)
    inv = 1.0 / total
    cdf = [c * inv for c in cdf]
    cdf[-1] = 1.0
    return cdf


class FlashPhase(Tuple[int, int, float, int]):
    """A flash-crowd window: ``share`` of accesses in
    ``[start, start + length)`` are redirected onto the hottest
    ``hot_keys`` Zipf ranks."""

    __slots__ = ()

    def __new__(cls, start: int, length: int, share: float = 0.5,
                hot_keys: int = 64):
        if start < 0 or length < 0:
            raise ValueError("flash phase start/length must be >= 0")
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"flash share must be in [0, 1], got {share}")
        if hot_keys < 1:
            raise ValueError("flash hot_keys must be positive")
        return super().__new__(
            cls, (int(start), int(length), float(share), int(hot_keys))
        )

    @property
    def start(self) -> int:
        return self[0]

    @property
    def length(self) -> int:
        return self[1]

    @property
    def share(self) -> float:
        return self[2]

    @property
    def hot_keys(self) -> int:
        return self[3]


def auto_flash_phases(
    accesses: int, count: int, share: float = 0.5, hot_keys: int = 64,
    duty: float = 0.1,
) -> Tuple[FlashPhase, ...]:
    """``count`` evenly spaced flash crowds, each ``duty`` of the stream."""
    if count < 0:
        raise ValueError("phase count must be >= 0")
    if count == 0 or accesses == 0:
        return ()
    count = min(count, accesses)  # never more phases than accesses
    period = accesses // count
    length = max(1, int(period * duty))
    return tuple(
        FlashPhase(i * period + max(0, (period - length) // 2), length,
                   share, hot_keys)
        for i in range(count)
    )


@dataclass(frozen=True)
class ServingSpec:
    """Everything that determines a serving stream, digestibly.

    ``seed=None`` never touches global random state: the effective seed
    is derived from the spec digest (:func:`resolved_seed`) and recorded
    in the provenance manifest via :meth:`manifest_extra`.

    ``slo`` is an *operational overlay* — an
    :class:`~repro.obs.slo.SLOSpec` (or its dict form) the serving
    driver evaluates over the run's windowed telemetry.  It never
    shapes the generated stream, so it is deliberately **excluded from
    the digest payload**: attaching or changing an SLO must not change
    the derived seed or the golden serving corpus.
    """

    keys: int = 1 << 14            # live key slots per tenant
    alpha: float = 1.2             # Zipf skew
    tenants: int = 1
    accesses: int = 1 << 20        # total stream length
    churn_per_million: int = 0     # slot retirements per 1M accesses
    phases: Tuple[FlashPhase, ...] = field(default_factory=tuple)
    seed: Optional[int] = None
    slo: Optional[SLOSpec] = None

    def __post_init__(self):
        if self.keys < 1:
            raise ValueError(f"keys must be positive, got {self.keys}")
        if self.tenants < 1:
            raise ValueError(
                f"tenants must be positive, got {self.tenants}"
            )
        if self.accesses < 0:
            raise ValueError(
                f"accesses must be non-negative, got {self.accesses}"
            )
        if self.alpha < 0:
            raise ValueError(
                f"alpha must be non-negative, got {self.alpha}"
            )
        if self.churn_per_million < 0:
            raise ValueError("churn_per_million must be non-negative")
        object.__setattr__(
            self,
            "phases",
            tuple(
                p if isinstance(p, FlashPhase) else FlashPhase(*p)
                for p in self.phases
            ),
        )
        if self.slo is not None and not isinstance(self.slo, SLOSpec):
            object.__setattr__(self, "slo", SLOSpec.from_dict(self.slo))

    def digest_payload(self) -> dict:
        # NOTE: ``slo`` is intentionally absent — see the class docstring.
        return {
            "kind": "serving-spec",
            "keys": self.keys,
            "alpha": self.alpha,
            "tenants": self.tenants,
            "accesses": self.accesses,
            "churn_per_million": self.churn_per_million,
            "phases": [list(p) for p in self.phases],
            "seed": self.seed,
        }

    def digest(self) -> str:
        return spec_digest(self.digest_payload())

    def resolved_seed(self) -> int:
        """The effective seed: ``seed``, or spec-digest derivation."""
        if self.seed is not None:
            return int(self.seed)
        # Derive from the digest *without* the (None) seed field so the
        # derivation is a pure function of the workload shape.
        payload = self.digest_payload()
        del payload["seed"]
        return derive_seed(spec_digest(payload))

    def with_accesses(self, accesses: int) -> "ServingSpec":
        return replace(self, accesses=accesses)

    def manifest_extra(self) -> dict:
        """Provenance-manifest fields describing this spec exactly."""
        out = {
            "serving_spec": self.digest_payload(),
            "serving_spec_digest": self.digest(),
            "serving_seed": self.resolved_seed(),
            "serving_seed_derived": self.seed is None,
        }
        if self.slo is not None:
            out["serving_slo"] = self.slo.to_dict()
        return out


class ServingStream:
    """Iterator factory over one :class:`ServingSpec`'s address stream.

    ``backend`` is ``"auto"`` (numpy when importable), ``"numpy"``
    (demand it) or ``"python"`` (force the scalar mirror — bit-identical
    output).  ``track_retired=True`` records every retired address in
    :attr:`retired_addresses` (test hook; unbounded, off by default).
    """

    def __init__(self, spec: ServingSpec, backend: str = "auto",
                 track_retired: bool = False):
        if backend not in ("auto", "numpy", "python"):
            raise ValueError(
                f"backend must be auto|numpy|python, got {backend!r}"
            )
        np = numpy_or_none() if backend in ("auto", "numpy") else None
        if backend == "numpy" and np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not importable"
            )
        self.spec = spec
        self._np = np
        self.backend = "numpy" if np is not None else "python"
        self.track_retired = track_retired
        self.retired_addresses: set = set()
        seed = spec.resolved_seed()
        self._s_tenant = _stream_seed(seed, _TAG_TENANT)
        self._s_rank = _stream_seed(seed, _TAG_RANK)
        self._s_flash = _stream_seed(seed, _TAG_FLASH)
        self._s_hot = _stream_seed(seed, _TAG_HOT)
        self._s_churn_t = _stream_seed(seed, _TAG_CHURN_TENANT)
        self._s_churn_s = _stream_seed(seed, _TAG_CHURN_SLOT)
        self._cdf = zipf_cdf(spec.keys, spec.alpha)
        self._cdf_np = (
            np.asarray(self._cdf, dtype=np.float64)
            if np is not None else None
        )
        self._phases = [
            (p.start, p.start + p.length, _share_threshold(p.share),
             min(p.hot_keys, spec.keys))
            for p in spec.phases
        ]
        self.reset()

    # -- deterministic churn/uid state ---------------------------------
    def reset(self) -> "ServingStream":
        """Return to stream position 0 (slot uids back to initial)."""
        spec = self.spec
        T, K = spec.tenants, spec.keys
        if self._np is not None:
            np = self._np
            # slot s of tenant t starts as uid s: uid*T + t enumerates
            # the initial key population injectively.
            self._slots = np.tile(
                np.arange(K, dtype=np.uint64), (T, 1)
            )
        else:
            self._slots = [list(range(K)) for _ in range(T)]
        self._next_uid = [K] * T
        self._churn_done = 0
        self.retired = 0
        if self.track_retired:
            self.retired_addresses = set()
        return self

    def _address_of(self, tenant: int, uid: int) -> int:
        g = uid * self.spec.tenants + tenant
        return (g * ADDR_MULT) & ADDR_MASK

    def _apply_churn(self, block: int) -> None:
        """Retire slots due before generation block ``block`` begins."""
        cpm = self.spec.churn_per_million
        if not cpm:
            return
        due = (block * GEN_BLOCK * cpm) // 1_000_000
        T, K = self.spec.tenants, self.spec.keys
        np = self._np
        if np is not None and due - self._churn_done > 16:
            # Bulk-hash the pending events: the per-event splitmix in
            # Python dominates generation under heavy churn.  The
            # scatter itself stays sequential for exact parity with the
            # Python backend — a slot drawn twice in one batch must
            # retire the uid installed by the earlier event.
            j = np.arange(self._churn_done, due, dtype=np.uint64)
            golden = np.uint64(_GOLDEN)
            mix1, mix2 = np.uint64(_MIX1), np.uint64(_MIX2)
            s30, s27, s31 = np.uint64(30), np.uint64(27), np.uint64(31)

            def draws(stream):
                x = np.uint64(stream) + j * golden
                x = (x ^ (x >> s30)) * mix1
                x = (x ^ (x >> s27)) * mix2
                return x ^ (x >> s31)

            t_list = (draws(self._s_churn_t) % np.uint64(T)).tolist()
            s_list = (draws(self._s_churn_s) % np.uint64(K)).tolist()
            slots = self._slots
            next_uid = self._next_uid
            track = self.track_retired
            for t, slot in zip(t_list, s_list):
                if track:
                    self.retired_addresses.add(
                        self._address_of(t, int(slots[t, slot]))
                    )
                slots[t, slot] = next_uid[t]
                next_uid[t] += 1
            self.retired += len(t_list)
            self._churn_done = due
            return
        numpy_slots = np is not None
        while self._churn_done < due:
            j = self._churn_done
            t = _hash_at(self._s_churn_t, j) % T
            slot = _hash_at(self._s_churn_s, j) % K
            old = int(self._slots[t][slot]) if not numpy_slots else int(
                self._slots[t, slot]
            )
            uid = self._next_uid[t]
            if numpy_slots:
                self._slots[t, slot] = uid
            else:
                self._slots[t][slot] = uid
            self._next_uid[t] = uid + 1
            self.retired += 1
            if self.track_retired:
                self.retired_addresses.add(self._address_of(t, old))
            self._churn_done += 1

    # -- block generation ----------------------------------------------
    def _block_python(self, block: int, m: int) -> List[int]:
        spec = self.spec
        T = spec.tenants
        cdf = self._cdf
        slots = self._slots
        base = block * GEN_BLOCK
        phases = [
            p for p in self._phases if p[0] < base + m and p[1] > base
        ]
        out = []
        for i in range(base, base + m):
            tenant = _hash_at(self._s_tenant, i) % T
            rank = bisect_right(cdf, _u53(_hash_at(self._s_rank, i)))
            for start, end, thr, hot in phases:
                if start <= i < end and _hash_at(self._s_flash, i) < thr:
                    rank = _hash_at(self._s_hot, i) % hot
            uid = slots[tenant][rank]
            g = uid * T + tenant
            out.append((g * ADDR_MULT) & ADDR_MASK)
        return out

    def _block_numpy(self, block: int, m: int):
        np = self._np
        spec = self.spec
        T = spec.tenants
        base = block * GEN_BLOCK
        i = np.arange(base, base + m, dtype=np.uint64)
        golden = np.uint64(_GOLDEN)
        mix1, mix2 = np.uint64(_MIX1), np.uint64(_MIX2)
        s30, s27, s31 = np.uint64(30), np.uint64(27), np.uint64(31)

        def draws(stream):
            x = np.uint64(stream) + i * golden
            x = (x ^ (x >> s30)) * mix1
            x = (x ^ (x >> s27)) * mix2
            return x ^ (x >> s31)

        tenant = (draws(self._s_tenant) % np.uint64(T)).astype(np.int64)
        u = (draws(self._s_rank) >> np.uint64(11)).astype(np.float64)
        u *= 2.0 ** -53
        rank = np.searchsorted(self._cdf_np, u, side="right")
        for start, end, thr, hot in self._phases:
            if start >= base + m or end <= base:
                continue
            mask = (i >= np.uint64(start)) & (i < np.uint64(end))
            mask &= draws(self._s_flash) < np.uint64(thr)
            if mask.any():
                hot_rank = (
                    draws(self._s_hot) % np.uint64(hot)
                ).astype(np.int64)
                rank = np.where(mask, hot_rank, rank)
        uid = self._slots[tenant, rank]
        g = uid * np.uint64(T) + tenant.astype(np.uint64)
        addr = (g * np.uint64(ADDR_MULT)) & np.uint64(ADDR_MASK)
        return addr.astype(np.int64)

    # -- public chunk iterator -----------------------------------------
    def chunks(self, chunk_accesses: int = 1 << 16) -> Iterator:
        """Yield the stream as address batches of ``chunk_accesses``.

        Restarts from position 0 on every call (:meth:`reset`), so the
        sequence is a pure function of the spec: any two chunk sizes
        yield the same concatenated stream, numpy or not.  Batches are
        int64 numpy arrays (numpy backend) or Python int lists.
        """
        if chunk_accesses < 1:
            raise ValueError("chunk_accesses must be positive")
        self.reset()
        np = self._np
        total = self.spec.accesses
        buf: List = []
        have = 0
        nblocks = (total + GEN_BLOCK - 1) // GEN_BLOCK
        for block in range(nblocks):
            self._apply_churn(block)
            m = min(GEN_BLOCK, total - block * GEN_BLOCK)
            if np is not None:
                buf.append(self._block_numpy(block, m))
            else:
                buf.append(self._block_python(block, m))
            have += m
            if have >= chunk_accesses:
                if np is not None:
                    flat = np.concatenate(buf)
                else:
                    flat = [a for part in buf for a in part]
                pos = 0
                while have - pos >= chunk_accesses:
                    yield flat[pos:pos + chunk_accesses]
                    pos += chunk_accesses
                buf = [flat[pos:]] if have - pos else []
                have -= pos
        if have:
            if np is not None:
                yield np.concatenate(buf)
            else:
                yield [a for part in buf for a in part]

    def addresses(self) -> List[int]:
        """The full stream as a flat Python int list (small specs only)."""
        out: List[int] = []
        for chunk in self.chunks(max(1, min(self.spec.accesses, 1 << 16))):
            out.extend(int(a) for a in chunk)
        return out
