"""Serving run driver: stream -> sharded front-end -> observability.

``run_serving`` wires one :class:`~repro.serve.workload.ServingSpec`
through a :class:`~repro.serve.frontend.ShardedFrontend`:

* phases are span-profiled (``serve.generate`` / ``serve.simulate``
  under one ``serve.run`` root) so a flamegraph says where the time
  went;
* :class:`~repro.obs.status.StatusPublisher` gets live
  throughput/progress/ETA (``repro obs watch`` renders it);
* ``repro_serve_*`` gauges land in a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* a provenance manifest (spec digest + resolved seed — derived seeds
  are *recorded*, per the workloads seeding contract) is written next
  to the report when a report path is given.

The driver is backend-agnostic: with numpy the stream generates in
columnar blocks and the shards run the PR-6 batch engine; without it
both degrade to the pure-Python mirrors with bit-identical results.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..core.ipv import lip_ipv, lru_ipv, mru_pessimistic_ipv
from ..core.plru import is_power_of_two
from ..obs.metrics import MetricsRegistry
from ..obs.slo import SLOSpec
from ..obs.spans import span
from ..obs.status import StatusPublisher
from .frontend import ShardedFrontend
from .telemetry import DEFAULT_WINDOW_ACCESSES, ServeTelemetry
from .workload import ServingSpec, ServingStream

__all__ = [
    "ServingReport",
    "resolve_policy_entries",
    "run_serving",
]

SERVING_POLICIES = ("lru", "lip", "static", "gippr")


def resolve_policy_entries(
    policy: Union[str, Sequence[int]], assoc: int
) -> Tuple[str, Tuple[int, ...]]:
    """``(name, IPV entries)`` for a named policy or an explicit vector."""
    if not isinstance(policy, str):
        entries = tuple(int(e) for e in policy)
        return f"ipv{len(entries) - 1}", entries
    name = policy.lower()
    if name == "lru":
        return name, tuple(lru_ipv(assoc).entries)
    if name == "lip":
        return name, tuple(lip_ipv(assoc).entries)
    if name == "static":
        return name, tuple(mru_pessimistic_ipv(assoc).entries)
    if name == "gippr":
        from ..core.vectors import GIPPR_WI_VECTOR

        if assoc != GIPPR_WI_VECTOR.k:
            raise ValueError(
                f"gippr is a {GIPPR_WI_VECTOR.k}-way vector; "
                f"geometry has assoc={assoc}"
            )
        return name, tuple(GIPPR_WI_VECTOR.entries)
    raise ValueError(
        f"unknown serving policy {policy!r}; "
        f"known: {', '.join(SERVING_POLICIES)}"
    )


class ServingReport:
    """Everything a serving run produced, JSON-ready via :meth:`to_dict`."""

    def __init__(self, spec, policy, entries, num_sets, assoc, shards,
                 engine, backend, accesses, misses, wall_sec, shed,
                 retired, shard_snapshots, totals_snapshot,
                 telemetry=None, slo_summary=None):
        self.spec = spec
        self.policy = policy
        self.entries = entries
        self.num_sets = num_sets
        self.assoc = assoc
        self.shards = shards
        self.engine = engine
        self.backend = backend
        self.accesses = accesses
        self.misses = misses
        self.wall_sec = wall_sec
        self.shed = shed
        self.retired = retired
        self.shard_snapshots = shard_snapshots
        self.totals_snapshot = totals_snapshot
        self.telemetry = telemetry        # report_section() dict or None
        self.slo_summary = slo_summary    # SLOEvaluator.summary() or None

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def shed_ratio(self) -> float:
        """Fraction of *offered* load that was shed by backpressure."""
        offered = self.accesses + self.shed
        return self.shed / offered if offered else 0.0

    @property
    def slo_ok(self) -> bool:
        """False only when an SLO was evaluated and violated."""
        if self.slo_summary is None:
            return True
        return bool(self.slo_summary.get("ok", True))

    @property
    def throughput(self) -> float:
        """Sustained accesses/sec over the whole run."""
        return self.accesses / self.wall_sec if self.wall_sec > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            # /2 adds shed_ratio + the telemetry and slo blocks.
            "schema": "repro-serving-report/2",
            "spec": self.spec.digest_payload(),
            "spec_digest": self.spec.digest(),
            "seed": self.spec.resolved_seed(),
            "seed_derived": self.spec.seed is None,
            "policy": self.policy,
            "ipv": list(self.entries),
            "num_sets": self.num_sets,
            "assoc": self.assoc,
            "shards": self.shards,
            "engine": self.engine,
            "backend": self.backend,
            "accesses": self.accesses,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "wall_sec": self.wall_sec,
            "throughput_accesses_per_sec": self.throughput,
            "shed_accesses": self.shed,
            "shed_ratio": self.shed_ratio,
            "retired_keys": self.retired,
            "shards_detail": self.shard_snapshots,
            "totals": self.totals_snapshot,
            "telemetry": self.telemetry,
            "slo": self.slo_summary,
        }


def _publish_run_gauges(registry, done, misses, rate, shards,
                        shed, retired) -> None:
    """Run-level gauges, refreshed per chunk so mid-run scrapes are live."""
    registry.gauge(
        "throughput_accesses_per_sec",
        "Sustained serving throughput over the whole run",
    ).set(rate)
    registry.gauge("accesses", "Accesses served").set(done)
    registry.gauge("misses", "Measured misses").set(misses)
    registry.gauge(
        "miss_rate", "Misses / accesses"
    ).set(misses / done if done else 0.0)
    registry.gauge("shards", "Set-shard count").set(shards)
    registry.gauge(
        "shed_accesses", "Accesses shed by backpressure"
    ).set(shed)
    registry.gauge(
        "retired_keys", "Key slots churned out of the stream"
    ).set(retired)


def run_serving(
    spec: ServingSpec,
    num_sets: int,
    assoc: int,
    policy: Union[str, Sequence[int]] = "lru",
    shards: int = 1,
    engine: str = "auto",
    chunk_accesses: int = 1 << 16,
    status_path: Optional[Union[str, Path]] = None,
    registry: Optional[MetricsRegistry] = None,
    report_path: Optional[Union[str, Path]] = None,
    telemetry: bool = True,
    window_accesses: int = DEFAULT_WINDOW_ACCESSES,
    slo: Optional[SLOSpec] = None,
    metrics_port: Optional[int] = None,
    tracer=None,
) -> ServingReport:
    """Drive ``spec``'s stream through a sharded front-end; report.

    ``report_path``, when given, receives the JSON report *and* a
    provenance manifest sidecar carrying the spec digest and the
    resolved (possibly derived) seed.

    ``telemetry=True`` (the default) attaches a
    :class:`~repro.serve.telemetry.ServeTelemetry`: per-shard HDR batch
    latency, sliding windows, drift detection and — when ``slo`` (or
    ``spec.slo``) is given — burn-rate SLO evaluation, all surfaced
    through the registry, the status file's ``serving`` section, the
    ``tracer`` (``drift``/``slo_violation`` events) and the final
    report.  ``metrics_port`` (0 = ephemeral) additionally serves the
    registry as an OpenMetrics scrape endpoint for the duration of the
    run; the bound port is published in ``run-status.json``.
    """
    if not is_power_of_two(num_sets) or not is_power_of_two(assoc):
        raise ValueError(
            f"geometry must be powers of two, got {num_sets}x{assoc}"
        )
    name, entries = resolve_policy_entries(policy, assoc)
    slo = slo if slo is not None else spec.slo
    telem = (
        ServeTelemetry(shards, window_accesses=window_accesses,
                       slo=slo, tracer=tracer)
        if telemetry else None
    )
    frontend = ShardedFrontend(
        num_sets, assoc, entries, shards=shards, engine=engine,
        telemetry=telem,
    )
    stream = ServingStream(spec, backend="auto")
    publisher = (
        StatusPublisher(status_path, "serve") if status_path else None
    )
    if registry is None:
        registry = MetricsRegistry("repro_serve")
    server = None
    if metrics_port is not None:
        from ..obs.export_http import MetricsServer

        server = MetricsServer(registry, port=metrics_port)
    total = spec.accesses
    done = 0
    misses = 0
    start = time.monotonic()
    try:
        with span("serve.run", accesses=total, shards=shards,
                  policy=name, engine=frontend.engine):
            if publisher:
                publisher.update(
                    force=True, phase="serving", accesses_total=total,
                    accesses_done=0, policy=name, shards=shards,
                    engine=frontend.engine,
                    metrics_port=server.port if server else None,
                )
            chunks = stream.chunks(chunk_accesses)
            while True:
                with span("serve.generate"):
                    chunk = next(chunks, None)
                if chunk is None:
                    break
                with span("serve.simulate", accesses=len(chunk)):
                    misses += frontend.process(chunk)
                done += len(chunk)
                elapsed = time.monotonic() - start
                rate = done / elapsed if elapsed > 0 else 0.0
                if telem is not None:
                    _publish_run_gauges(
                        registry, done, misses, rate, shards,
                        frontend.shed_accesses, stream.retired,
                    )
                    telem.publish(registry)
                if publisher:
                    fields = dict(
                        phase="serving",
                        accesses_done=done,
                        accesses_total=total,
                        throughput=rate,
                        miss_rate=misses / done if done else 0.0,
                        eta_sec=(total - done) / rate if rate else None,
                    )
                    if telem is not None:
                        serving = telem.snapshot()
                        serving["metrics_port"] = (
                            server.port if server else None
                        )
                        fields["serving"] = serving
                    publisher.update(**fields)
        wall = time.monotonic() - start
        if telem is not None:
            telem.finalize()
        totals = frontend.totals()
        report = ServingReport(
            spec, name, entries, num_sets, assoc, shards, frontend.engine,
            stream.backend, done, misses, wall, frontend.shed_accesses,
            stream.retired,
            [r.snapshot() for r in frontend.shard_results()],
            totals.snapshot(),
            telemetry=telem.report_section() if telem is not None else None,
            slo_summary=(
                telem.slo.summary()
                if telem is not None and telem.slo is not None else None
            ),
        )
        rate = report.throughput
        _publish_run_gauges(registry, done, misses, rate, shards,
                            frontend.shed_accesses, stream.retired)
        if telem is not None:
            telem.publish(registry)
            registry.gauge(
                "shed_ratio_total",
                "Shed fraction of offered load over the whole run",
            ).set(report.shed_ratio)
        if publisher:
            fields = dict(
                phase="done", accesses_done=done, accesses_total=total,
                throughput=rate, miss_rate=report.miss_rate, wall_sec=wall,
            )
            if telem is not None:
                serving = telem.snapshot()
                serving["metrics_port"] = server.port if server else None
                fields["serving"] = serving
            publisher.finalize(**fields)
    finally:
        if server is not None:
            server.close()
    if report_path is not None:
        import json

        from ..obs.provenance import build_manifest, write_manifest

        report_path = Path(report_path)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        extra = spec.manifest_extra()
        extra["serving_run"] = {
            "policy": name,
            "num_sets": num_sets,
            "assoc": assoc,
            "shards": shards,
            "engine": frontend.engine,
            "backend": stream.backend,
            "throughput_accesses_per_sec": rate,
        }
        write_manifest(
            report_path,
            build_manifest(
                policy=name,
                policy_kwargs={"ipv": list(entries)},
                seed=spec.resolved_seed(),
                wall_time_sec=wall,
                extra=extra,
            ),
        )
    return report
