"""Serving run driver: stream -> sharded front-end -> observability.

``run_serving`` wires one :class:`~repro.serve.workload.ServingSpec`
through a :class:`~repro.serve.frontend.ShardedFrontend`:

* phases are span-profiled (``serve.generate`` / ``serve.simulate``
  under one ``serve.run`` root) so a flamegraph says where the time
  went;
* :class:`~repro.obs.status.StatusPublisher` gets live
  throughput/progress/ETA (``repro obs watch`` renders it);
* ``repro_serve_*`` gauges land in a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* a provenance manifest (spec digest + resolved seed — derived seeds
  are *recorded*, per the workloads seeding contract) is written next
  to the report when a report path is given.

The driver is backend-agnostic: with numpy the stream generates in
columnar blocks and the shards run the PR-6 batch engine; without it
both degrade to the pure-Python mirrors with bit-identical results.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Sequence, Tuple, Union

from ..core.ipv import lip_ipv, lru_ipv, mru_pessimistic_ipv
from ..core.plru import is_power_of_two
from ..obs.metrics import MetricsRegistry
from ..obs.spans import span
from ..obs.status import StatusPublisher
from .frontend import ShardedFrontend
from .workload import ServingSpec, ServingStream

__all__ = [
    "ServingReport",
    "resolve_policy_entries",
    "run_serving",
]

SERVING_POLICIES = ("lru", "lip", "static", "gippr")


def resolve_policy_entries(
    policy: Union[str, Sequence[int]], assoc: int
) -> Tuple[str, Tuple[int, ...]]:
    """``(name, IPV entries)`` for a named policy or an explicit vector."""
    if not isinstance(policy, str):
        entries = tuple(int(e) for e in policy)
        return f"ipv{len(entries) - 1}", entries
    name = policy.lower()
    if name == "lru":
        return name, tuple(lru_ipv(assoc).entries)
    if name == "lip":
        return name, tuple(lip_ipv(assoc).entries)
    if name == "static":
        return name, tuple(mru_pessimistic_ipv(assoc).entries)
    if name == "gippr":
        from ..core.vectors import GIPPR_WI_VECTOR

        if assoc != GIPPR_WI_VECTOR.k:
            raise ValueError(
                f"gippr is a {GIPPR_WI_VECTOR.k}-way vector; "
                f"geometry has assoc={assoc}"
            )
        return name, tuple(GIPPR_WI_VECTOR.entries)
    raise ValueError(
        f"unknown serving policy {policy!r}; "
        f"known: {', '.join(SERVING_POLICIES)}"
    )


class ServingReport:
    """Everything a serving run produced, JSON-ready via :meth:`to_dict`."""

    def __init__(self, spec, policy, entries, num_sets, assoc, shards,
                 engine, backend, accesses, misses, wall_sec, shed,
                 retired, shard_snapshots, totals_snapshot):
        self.spec = spec
        self.policy = policy
        self.entries = entries
        self.num_sets = num_sets
        self.assoc = assoc
        self.shards = shards
        self.engine = engine
        self.backend = backend
        self.accesses = accesses
        self.misses = misses
        self.wall_sec = wall_sec
        self.shed = shed
        self.retired = retired
        self.shard_snapshots = shard_snapshots
        self.totals_snapshot = totals_snapshot

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def throughput(self) -> float:
        """Sustained accesses/sec over the whole run."""
        return self.accesses / self.wall_sec if self.wall_sec > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "schema": "repro-serving-report/1",
            "spec": self.spec.digest_payload(),
            "spec_digest": self.spec.digest(),
            "seed": self.spec.resolved_seed(),
            "seed_derived": self.spec.seed is None,
            "policy": self.policy,
            "ipv": list(self.entries),
            "num_sets": self.num_sets,
            "assoc": self.assoc,
            "shards": self.shards,
            "engine": self.engine,
            "backend": self.backend,
            "accesses": self.accesses,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "wall_sec": self.wall_sec,
            "throughput_accesses_per_sec": self.throughput,
            "shed_accesses": self.shed,
            "retired_keys": self.retired,
            "shards_detail": self.shard_snapshots,
            "totals": self.totals_snapshot,
        }


def run_serving(
    spec: ServingSpec,
    num_sets: int,
    assoc: int,
    policy: Union[str, Sequence[int]] = "lru",
    shards: int = 1,
    engine: str = "auto",
    chunk_accesses: int = 1 << 16,
    status_path: Optional[Union[str, Path]] = None,
    registry: Optional[MetricsRegistry] = None,
    report_path: Optional[Union[str, Path]] = None,
) -> ServingReport:
    """Drive ``spec``'s stream through a sharded front-end; report.

    ``report_path``, when given, receives the JSON report *and* a
    provenance manifest sidecar carrying the spec digest and the
    resolved (possibly derived) seed.
    """
    if not is_power_of_two(num_sets) or not is_power_of_two(assoc):
        raise ValueError(
            f"geometry must be powers of two, got {num_sets}x{assoc}"
        )
    name, entries = resolve_policy_entries(policy, assoc)
    frontend = ShardedFrontend(
        num_sets, assoc, entries, shards=shards, engine=engine
    )
    stream = ServingStream(spec, backend="auto")
    publisher = (
        StatusPublisher(status_path, "serve") if status_path else None
    )
    if registry is None:
        registry = MetricsRegistry("repro_serve")
    total = spec.accesses
    done = 0
    misses = 0
    start = time.monotonic()
    with span("serve.run", accesses=total, shards=shards,
              policy=name, engine=frontend.engine):
        if publisher:
            publisher.update(
                force=True, phase="serving", accesses_total=total,
                accesses_done=0, policy=name, shards=shards,
                engine=frontend.engine,
            )
        chunks = stream.chunks(chunk_accesses)
        while True:
            with span("serve.generate"):
                chunk = next(chunks, None)
            if chunk is None:
                break
            with span("serve.simulate", accesses=len(chunk)):
                misses += frontend.process(chunk)
            done += len(chunk)
            if publisher:
                elapsed = time.monotonic() - start
                rate = done / elapsed if elapsed > 0 else 0.0
                publisher.update(
                    phase="serving",
                    accesses_done=done,
                    accesses_total=total,
                    throughput=rate,
                    miss_rate=misses / done if done else 0.0,
                    eta_sec=(total - done) / rate if rate else None,
                )
    wall = time.monotonic() - start
    totals = frontend.totals()
    report = ServingReport(
        spec, name, entries, num_sets, assoc, shards, frontend.engine,
        stream.backend, done, misses, wall, frontend.shed_accesses,
        stream.retired,
        [r.snapshot() for r in frontend.shard_results()],
        totals.snapshot(),
    )
    rate = report.throughput
    registry.gauge(
        "throughput_accesses_per_sec",
        "Sustained serving throughput over the whole run",
    ).set(rate)
    registry.gauge("accesses", "Accesses served").set(done)
    registry.gauge("misses", "Measured misses").set(misses)
    registry.gauge("miss_rate", "Misses / accesses").set(report.miss_rate)
    registry.gauge("shards", "Set-shard count").set(shards)
    registry.gauge(
        "shed_accesses", "Accesses shed by backpressure"
    ).set(frontend.shed_accesses)
    registry.gauge(
        "retired_keys", "Key slots churned out of the stream"
    ).set(stream.retired)
    if publisher:
        publisher.finalize(
            phase="done", accesses_done=done, accesses_total=total,
            throughput=rate, miss_rate=report.miss_rate, wall_sec=wall,
        )
    if report_path is not None:
        import json

        from ..obs.provenance import build_manifest, write_manifest

        report_path = Path(report_path)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        extra = spec.manifest_extra()
        extra["serving_run"] = {
            "policy": name,
            "num_sets": num_sets,
            "assoc": assoc,
            "shards": shards,
            "engine": frontend.engine,
            "backend": stream.backend,
            "throughput_accesses_per_sec": rate,
        }
        write_manifest(
            report_path,
            build_manifest(
                policy=name,
                policy_kwargs={"ipv": list(entries)},
                seed=spec.resolved_seed(),
                wall_time_sec=wall,
                extra=extra,
            ),
        )
    return report
