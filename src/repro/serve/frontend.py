"""Sharded serving front-end: set-shard binning over streaming engines.

Accesses to different cache sets never interact, so a cache of
``num_sets`` sets splits *exactly* into ``shards`` independent
sub-caches of ``num_sets / shards`` sets each: shard = the high bits of
the set index, within-shard set = the low bits (which is just
``addr & (sets_per_shard - 1)`` — the natural set mapping of the
sub-cache).  Binning is stable, so each set sees its accesses in the
original order and the shard ensemble's miss counts are **bit-identical**
to one unsharded simulator over the same stream — the property the
serving conformance corpus and the soak test pin.

Each shard owns a persistent streaming engine — the PR-6 columnar
``BatchSimulator.feed`` when numpy is importable, the pure-Python
:class:`~repro.engine.scalar.ScalarStreamSimulator` otherwise — plus a
bounded queue of pending sub-batches.  :meth:`ingest` bins and enqueues
with **backpressure accounting**: when a shard's queue is full the
overflow is *shed* (counted per shard in ``shed_accesses``) instead of
growing without bound.  :meth:`process` is the lossless path: ingest +
drain per batch, so queues never overflow.

The front-end measures every access (no warmup window): a serving cache
is warm by definition, and shard-local warmup offsets would make miss
counts depend on the sharding — exactly what the bit-identity contract
forbids.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..cache.stats import CacheStats
from ..core.plru import is_power_of_two
from ..engine.columnar import columnar_supported
from ..engine.scalar import ScalarStreamSimulator
from ..kernels.tables import numpy_or_none

__all__ = ["DEFAULT_MAX_QUEUE_BATCHES", "ShardResult", "ShardedFrontend"]

#: Pending sub-batches a shard queue holds before ingest starts shedding.
DEFAULT_MAX_QUEUE_BATCHES = 64


class ShardResult:
    """Snapshot of one shard: stats plus queue/shed accounting."""

    __slots__ = ("shard", "stats", "queued_batches", "shed_accesses")

    def __init__(self, shard: int, stats: CacheStats,
                 queued_batches: int, shed_accesses: int):
        self.shard = shard
        self.stats = stats
        self.queued_batches = queued_batches
        self.shed_accesses = shed_accesses

    def snapshot(self) -> dict:
        out = self.stats.snapshot()
        out["shard"] = self.shard
        out["queued_batches"] = self.queued_batches
        out["shed_accesses"] = self.shed_accesses
        return out


class _Shard:
    """One sub-cache: a streaming engine plus its bounded queue."""

    __slots__ = ("engine", "sim", "queue", "accesses", "misses", "shed")

    def __init__(self, engine: str, sim):
        self.engine = engine
        self.sim = sim
        self.queue: deque = deque()
        self.accesses = 0
        self.misses = 0
        self.shed = 0

    def simulate(self, batch) -> int:
        n = len(batch)
        if self.engine == "columnar":
            # collapse_runs is what keeps the lockstep engine fast on
            # Zipf-skewed serving streams (hot keys otherwise degenerate
            # their set's column into thousands of width-1 steps).
            missed = int(self.sim.feed(batch, collapse_runs=True)[0])
        else:
            missed = self.sim.feed(batch)
        self.accesses += n
        self.misses += missed
        return missed

    def cold_fills(self) -> int:
        if self.engine == "columnar":
            stream = self.sim._stream
            return int(stream["nfill"].sum()) if stream else 0
        return self.sim.cold_fills


class ShardedFrontend:
    """Bin batches by set-shard and feed persistent per-shard engines.

    ``engine`` selects the per-shard simulator: ``"auto"`` takes the
    columnar engine when supported (numpy + compiled tables) and the
    scalar walk/LUT stream otherwise; ``"columnar"``/``"scalar"`` force
    one (columnar raises where unsupported).

    ``telemetry`` (a :class:`~repro.serve.telemetry.ServeTelemetry`)
    hooks the drain loop: each drained sub-batch is wall-clocked and fed
    to ``telemetry.record_batch``, shed overflow to
    ``telemetry.record_shed``.  Telemetry never sees individual
    accesses and never changes what the engines simulate, so miss
    counts stay bit-identical with it on or off; with ``telemetry=None``
    (the default) the drain loop pays one ``is not None`` test per
    batch — the disabled-overhead budget ``make smoke-slo`` enforces.
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        entries: Sequence[int],
        shards: int = 1,
        engine: str = "auto",
        max_queue_batches: int = DEFAULT_MAX_QUEUE_BATCHES,
        telemetry=None,
    ):
        if not is_power_of_two(num_sets):
            raise ValueError(
                f"num_sets must be a power of two, got {num_sets}"
            )
        if not is_power_of_two(shards) or shards < 1:
            raise ValueError(
                f"shards must be a positive power of two, got {shards}"
            )
        if shards > num_sets:
            raise ValueError(
                f"cannot split {num_sets} sets into {shards} shards"
            )
        if engine not in ("auto", "columnar", "scalar"):
            raise ValueError(
                f"engine must be auto|columnar|scalar, got {engine!r}"
            )
        if max_queue_batches < 1:
            raise ValueError("max_queue_batches must be positive")
        if engine == "auto":
            engine = (
                "columnar" if columnar_supported(assoc) else "scalar"
            )
        self.num_sets = num_sets
        self.assoc = assoc
        self.entries = tuple(int(e) for e in entries)
        self.shards = shards
        self.engine = engine
        self.max_queue_batches = max_queue_batches
        self.sets_per_shard = num_sets // shards
        self._shard_shift = (self.sets_per_shard - 1).bit_length()
        self._np = numpy_or_none()
        self.telemetry = telemetry
        self._shards: List[_Shard] = [
            self._make_shard() for _ in range(shards)
        ]

    def _make_shard(self) -> _Shard:
        if self.engine == "columnar":
            from ..engine.columnar import BatchSimulator

            sim = BatchSimulator(
                self.sets_per_shard, self.assoc, [self.entries], warmup=0
            )
            sim.begin_stream()
            return _Shard("columnar", sim)
        return _Shard(
            "scalar",
            ScalarStreamSimulator(
                self.sets_per_shard, self.assoc, self.entries, warmup=0
            ),
        )

    # -- binning -------------------------------------------------------
    def _bin(self, batch) -> Dict[int, object]:
        """Stable per-shard sub-batches of ``batch`` (empty bins omitted)."""
        if self.shards == 1:
            return {0: batch} if len(batch) else {}
        np = self._np
        out: Dict[int, object] = {}
        if np is not None and not isinstance(batch, list):
            arr = np.ascontiguousarray(batch, dtype=np.int64)
            shard_of = (arr & (self.num_sets - 1)) >> self._shard_shift
            # Boolean selection is stable: each set's accesses stay in
            # stream order, which is all bit-identity needs.
            for s in range(self.shards):
                sub = arr[shard_of == s]
                if sub.size:
                    out[s] = sub
            return out
        mask = self.num_sets - 1
        shift = self._shard_shift
        bins: Dict[int, List[int]] = {}
        for addr in batch:
            addr = int(addr)
            bins.setdefault((addr & mask) >> shift, []).append(addr)
        return bins

    # -- ingest / drain / process --------------------------------------
    def ingest(self, batch) -> int:
        """Bin ``batch`` into the shard queues; returns accesses *shed*.

        A full shard queue (``max_queue_batches`` pending sub-batches)
        sheds the overflow sub-batch instead of queueing it — bounded
        memory under a stalled shard, degraded coverage accounted in
        ``shed_accesses`` (and as ``bypasses`` in the shard stats).
        """
        shed = 0
        for s, sub in self._bin(batch).items():
            shard = self._shards[s]
            if len(shard.queue) >= self.max_queue_batches:
                shard.shed += len(sub)
                shed += len(sub)
            else:
                shard.queue.append(sub)
        if shed and self.telemetry is not None:
            self.telemetry.record_shed(shed)
        return shed

    def drain(self, max_batches: Optional[int] = None) -> int:
        """Simulate queued sub-batches; returns measured misses drained.

        ``max_batches`` bounds the work per call (round-robin across
        shards) so a caller can interleave draining with ingest.
        """
        done = 0
        misses = 0
        telemetry = self.telemetry
        progressed = True
        while progressed and (max_batches is None or done < max_batches):
            progressed = False
            for index, shard in enumerate(self._shards):
                if not shard.queue:
                    continue
                if telemetry is None:
                    misses += shard.simulate(shard.queue.popleft())
                else:
                    sub = shard.queue.popleft()
                    begin = perf_counter()
                    missed = shard.simulate(sub)
                    elapsed = perf_counter() - begin
                    telemetry.record_batch(
                        index, len(sub), missed, elapsed, len(shard.queue)
                    )
                    misses += missed
                done += 1
                progressed = True
                if max_batches is not None and done >= max_batches:
                    break
        return misses

    def process(self, batch) -> int:
        """Lossless path: bin ``batch``, simulate everything, return its
        measured miss count.  Queues cannot overflow here."""
        for s, sub in self._bin(batch).items():
            self._shards[s].queue.append(sub)
        return self.drain()

    # -- accounting ----------------------------------------------------
    @property
    def queued_batches(self) -> int:
        return sum(len(s.queue) for s in self._shards)

    @property
    def shed_accesses(self) -> int:
        return sum(s.shed for s in self._shards)

    @property
    def accesses(self) -> int:
        return sum(s.accesses for s in self._shards)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._shards)

    def _shard_stats(self, s: int) -> CacheStats:
        shard = self._shards[s]
        stats = CacheStats()
        stats.accesses = shard.accesses
        stats.misses = shard.misses
        stats.hits = shard.accesses - shard.misses
        stats.evictions = shard.misses - shard.cold_fills()
        # Shed accesses never reached the cache, so they appear in the
        # ShardResult (not here): the hits + misses == accesses and
        # bypasses <= misses invariants stay intact.
        return stats

    def shard_results(self) -> List[ShardResult]:
        """Per-shard stats snapshots (stats pass ``sanity_check``)."""
        return [
            ShardResult(
                s, self._shard_stats(s),
                len(self._shards[s].queue), self._shards[s].shed,
            )
            for s in range(self.shards)
        ]

    def totals(self) -> CacheStats:
        """Aggregate :class:`CacheStats` over every shard."""
        stats = CacheStats()
        for s in range(self.shards):
            part = self._shard_stats(s)
            stats.accesses += part.accesses
            stats.hits += part.hits
            stats.misses += part.misses
            stats.evictions += part.evictions
            stats.bypasses += part.bypasses
        return stats
