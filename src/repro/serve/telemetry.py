"""Serving-path telemetry: latency, windows, drift and SLO in one hub.

A :class:`ServeTelemetry` hangs off the :class:`~repro.serve.frontend.
ShardedFrontend` drain loop and is fed exactly once per engine *batch*
(thousands of accesses) plus once per shed decision — never per access,
which is how the whole layer fits the ≤5 % disabled-overhead budget
(``make smoke-slo`` measures it; disabled means ``telemetry=None`` and
the front-end pays one ``is not None`` test per drained batch).

Per batch it records:

* the shard's **batch latency** into a per-shard
  :class:`~repro.obs.slo.HdrHistogram` (exact counts, mergeable — the
  cross-shard merge is bit-identical to a single-shard recording, which
  the tests pin);
* the **amortized per-access cost** (batch wall / batch size) into a
  run-wide histogram, weighted by batch size, plus a per-window slice
  that resets at every window boundary so SLO latency is judged on the
  window, not the run;
* the batch's accesses/hits/shed/queue-depth into
  :class:`~repro.obs.windows.SlidingWindows`; every window that closes
  flows through the :class:`~repro.obs.windows.DriftDetector` and the
  optional :class:`~repro.obs.slo.SLOEvaluator`, and any resulting
  ``drift`` / ``slo_violation`` events go out through the attached
  :class:`~repro.obs.tracer.Tracer` (when given).

``snapshot()`` is what ``run_serving`` publishes into
``run-status.json`` (the ``repro obs top`` payload); ``publish()``
updates the scrape-endpoint gauges; ``report_section()`` is the final
JSON report's ``telemetry`` block.
"""

from __future__ import annotations

from typing import List, Optional

from ..obs.slo import DEFAULT_QUANTILES, HdrHistogram, SLOEvaluator, SLOSpec
from ..obs.windows import DriftDetector, SlidingWindows

__all__ = ["DEFAULT_WINDOW_ACCESSES", "ServeTelemetry"]

#: Default window size in offered accesses (64Ki: a handful of windows
#: per second at serving throughput, plenty for burn-rate horizons).
DEFAULT_WINDOW_ACCESSES = 1 << 16


class ServeTelemetry:
    """Latency histograms + sliding windows + drift + SLO for one run."""

    def __init__(
        self,
        shards: int,
        window_accesses: int = DEFAULT_WINDOW_ACCESSES,
        slo: Optional[SLOSpec] = None,
        tracer=None,
        drift_series: Optional[dict] = None,
        warmup_windows: int = 5,
        max_windows: int = 64,
        unit: float = 1e-9,
        sub_bits: int = 5,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.tracer = tracer
        self.batch_latency: List[HdrHistogram] = [
            HdrHistogram(unit=unit, sub_bits=sub_bits) for _ in range(shards)
        ]
        self.access_latency = HdrHistogram(unit=unit, sub_bits=sub_bits)
        self._unit = unit
        self._sub_bits = sub_bits
        self._window_latency = HdrHistogram(unit=unit, sub_bits=sub_bits)
        self.windows = SlidingWindows(window_accesses, max_windows=max_windows)
        self.drift = DriftDetector(
            series=drift_series, warmup_windows=warmup_windows
        )
        self.slo: Optional[SLOEvaluator] = (
            SLOEvaluator(slo) if slo is not None and slo.enabled else None
        )
        self.batches = 0
        self.shard_batches = [0] * shards
        self.shard_queue_depth = [0] * shards
        self.window_latencies: List[Optional[float]] = []

    # ------------------------------------------------------------------
    # Hot-side entry points (once per batch / shed, never per access).
    # ------------------------------------------------------------------
    def record_batch(self, shard: int, accesses: int, misses: int,
                     wall_sec: float, queue_depth: int = 0) -> None:
        """Fold one drained engine batch into every surface."""
        if accesses <= 0:
            return
        self.batches += 1
        self.shard_batches[shard] += 1
        self.shard_queue_depth[shard] = queue_depth
        self.batch_latency[shard].record(wall_sec)
        per_access = wall_sec / accesses
        self.access_latency.record(per_access, weight=accesses)
        self._window_latency.record(per_access, weight=accesses)
        closed = self.windows.record(
            accesses, accesses - misses,
            queue_depth=sum(self.shard_queue_depth), wall_sec=wall_sec,
        )
        for window in closed:
            self._on_window(window)

    def record_shed(self, shed: int) -> None:
        """Account accesses dropped by backpressure (no latency cost)."""
        if shed <= 0:
            return
        for window in self.windows.record(0, 0, shed=shed):
            self._on_window(window)

    def finalize(self) -> None:
        """Close the partial trailing window at end of run."""
        window = self.windows.flush()
        if window is not None:
            self._on_window(window)

    # ------------------------------------------------------------------
    def _on_window(self, window: dict) -> None:
        """Run a freshly closed window through drift + SLO, emit events.

        The per-window latency slice is batch-granular: a batch that
        straddles the window boundary lands wholly in the earlier
        window's slice, a one-batch skew that cannot matter at thousands
        of accesses per batch.
        """
        quantile = (self.slo.spec.latency_quantile if self.slo is not None
                    else 0.99)
        latency = self._window_latency.quantile(quantile)
        self._window_latency = HdrHistogram(
            unit=self._unit, sub_bits=self._sub_bits
        )
        window["latency"] = latency
        self.window_latencies.append(latency)
        del self.window_latencies[:-self.windows.max_windows]
        end = int(window.get("end_access") or 0)
        for event in self.drift.observe(window):
            if self.tracer is not None:
                self.tracer.drift(end, event["series"], event["value"])
        if self.slo is not None:
            violation = self.slo.observe_window(window, latency)
            if violation is not None and self.tracer is not None:
                value = violation.get("value")
                self.tracer.slo_violation(
                    end, violation["objective"],
                    0.0 if value is None else float(value),
                )

    # ------------------------------------------------------------------
    # Read-side surfaces.
    # ------------------------------------------------------------------
    def merged_batch_latency(self) -> HdrHistogram:
        """All shards' batch-latency histograms merged (exact counts)."""
        merged = HdrHistogram(unit=self._unit, sub_bits=self._sub_bits)
        for hist in self.batch_latency:
            merged.merge(hist)
        return merged

    def last_window(self) -> Optional[dict]:
        closed = self.windows.closed
        return closed[-1] if closed else None

    def snapshot(self, last_windows: int = 6) -> dict:
        """The ``serving`` section of ``run-status.json``."""
        return {
            "window_accesses": self.windows.window_accesses,
            "windows_closed": self.windows.windows_closed,
            "windows": [dict(w) for w in self.windows.closed[-last_windows:]],
            "latency": self.access_latency.percentiles(),
            "shards": [
                {
                    "shard": s,
                    "batches": self.shard_batches[s],
                    "p99": self.batch_latency[s].quantile(0.99),
                    "queue_depth": self.shard_queue_depth[s],
                }
                for s in range(self.shards)
            ],
            "drift": {
                "events": [dict(e) for e in self.drift.events[-8:]],
                "state": self.drift.state(),
            },
            "slo": self.slo.summary() if self.slo is not None else None,
        }

    def publish(self, registry) -> None:
        """Refresh the scrape-endpoint gauges from the current state.

        Called once per serving chunk, so a mid-run ``curl`` of
        ``/metrics`` sees live per-shard p99 latency, windowed hit rate
        and throughput, the shed ratio, and drift/violation totals.
        """
        for s in range(self.shards):
            hist = self.batch_latency[s]
            for q, label in ((0.5, "0.5"), (0.99, "0.99")):
                value = hist.quantile(q)
                if value is not None:
                    registry.gauge(
                        "shard_latency_seconds",
                        "Per-shard engine batch latency quantiles",
                        labels={"shard": str(s), "quantile": label},
                    ).set(value)
            registry.gauge(
                "shard_queue_depth", "Pending sub-batches per shard",
                labels={"shard": str(s)},
            ).set(self.shard_queue_depth[s])
        for q in DEFAULT_QUANTILES:
            value = self.access_latency.quantile(q)
            if value is not None:
                registry.gauge(
                    "access_latency_seconds",
                    "Amortized per-access latency quantiles",
                    labels={"quantile": f"{q:g}"},
                ).set(value)
        window = self.last_window()
        if window is not None:
            if window["hit_rate"] is not None:
                registry.gauge(
                    "window_hit_rate",
                    "Hit rate over the last closed window",
                ).set(window["hit_rate"])
            if window["throughput"] is not None:
                registry.gauge(
                    "window_throughput_accesses_per_sec",
                    "Serviced accesses/sec over the last closed window",
                ).set(window["throughput"])
            registry.gauge(
                "shed_ratio",
                "Shed fraction of offered load, last closed window",
            ).set(window["shed_ratio"] or 0.0)
        registry.gauge(
            "windows_closed", "Telemetry windows closed so far",
        ).set(self.windows.windows_closed)
        registry.gauge(
            "drift_events", "Drift detections so far",
        ).set(len(self.drift.events))
        if self.slo is not None:
            registry.gauge(
                "slo_violations", "SLO burn-rate violations so far",
            ).set(len(self.slo.violations))

    def report_section(self) -> dict:
        """The final JSON report's ``telemetry`` block."""
        merged = self.merged_batch_latency()
        return {
            "window_accesses": self.windows.window_accesses,
            "windows_closed": self.windows.windows_closed,
            "windows": [dict(w) for w in self.windows.closed],
            "latency": self.access_latency.percentiles(),
            "latency_histogram": self.access_latency.to_dict(),
            "batch_latency": merged.percentiles(),
            "shards": [
                {
                    "shard": s,
                    "batches": self.shard_batches[s],
                    "latency": self.batch_latency[s].percentiles(),
                }
                for s in range(self.shards)
            ],
            "drift_events": [dict(e) for e in self.drift.events],
            "slo": self.slo.summary() if self.slo is not None else None,
        }
