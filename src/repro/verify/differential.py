"""Lockstep differential execution: production cache vs reference oracle.

:func:`run_differential` drives a production
:class:`~repro.cache.cache.SetAssociativeCache` and a reference
:class:`~repro.verify.oracles.OracleCache` through the same access stream
and compares, after *every* access:

* the hit/miss outcome,
* the resident-block set of the accessed cache set, and
* the full recency-position permutation (when both sides expose one) —
  the paper's exact recency-stack semantics, not just aggregate counts.

The first mismatch is returned as a :class:`Divergence` carrying enough
context to re-run and shrink.  Per-access invariants from
:mod:`repro.verify.invariants` ride along on the production side so state
corruption is caught even for policies without an oracle.

Two run-level checks complete the battery:

* :func:`check_lut_walk_equality` — the precompiled transition-table
  kernels must be bit-identical to the reference bit-walks (same misses,
  hits, evictions *and* final per-set state digests), and
* :func:`check_belady_dominance` — Belady's MIN never misses more than a
  practical (non-bypassing) policy on a next-use-annotated stream.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..cache.cache import SetAssociativeCache
from ..policies.base import ReplacementPolicy
from .invariants import Invariant, check_invariants, default_invariants
from .oracles import OracleCache

__all__ = [
    "Divergence",
    "run_differential",
    "diff_stream",
    "check_lut_walk_equality",
    "check_columnar_equality",
    "check_duel_columnar_equality",
    "check_belady_dominance",
]


class Divergence:
    """The first point where production and oracle (or invariants) disagree."""

    __slots__ = ("index", "block", "kind", "detail", "accesses")

    def __init__(
        self,
        index: int,
        block: int,
        kind: str,
        detail: str,
        accesses: Optional[List[int]] = None,
    ):
        self.index = index
        self.block = block
        self.kind = kind
        self.detail = detail
        #: The (possibly shrunk) stream that provokes the divergence.
        self.accesses = list(accesses) if accesses is not None else None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "block": self.block,
            "kind": self.kind,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Divergence(index={self.index}, block={self.block}, "
            f"kind={self.kind!r}, detail={self.detail!r})"
        )


def _build_cache(policy: ReplacementPolicy) -> SetAssociativeCache:
    return SetAssociativeCache(
        policy.num_sets, policy.assoc, policy, block_size=1, name="verify"
    )


def run_differential(
    policy: ReplacementPolicy,
    oracle: Optional[OracleCache],
    accesses: Sequence[int],
    invariants: Optional[Iterable[Invariant]] = None,
    check_every: int = 1,
    next_use: Optional[Sequence[int]] = None,
) -> Optional[Divergence]:
    """Run ``accesses`` through policy and oracle in lockstep.

    ``oracle`` may be ``None`` for invariants-only verification.
    ``next_use`` supplies per-access next-use annotations for policies that
    require the future (Belady's MIN).  Returns the first
    :class:`Divergence`, or ``None`` on a clean run.
    """
    if invariants is None:
        invariants = default_invariants()
    invariants = list(invariants)
    cache = _build_cache(policy)
    position_of = getattr(policy, "position_of", None)
    compare_positions = (
        oracle is not None
        and position_of is not None
        and oracle.positions(0) is not None
    )
    for i, block in enumerate(accesses):
        if next_use is not None:
            hit = cache.access(block, next_use=next_use[i])
        else:
            hit = cache.access(block)
        if oracle is not None:
            oracle_hit, _ = oracle.access(block)
            if hit != oracle_hit:
                return Divergence(
                    i, block, "hit-miss",
                    f"production {'hit' if hit else 'miss'} but oracle "
                    f"{'hit' if oracle_hit else 'miss'}",
                    accesses,
                )
            set_index, _tag = cache.locate(block)
            produced = set(cache._way_of[set_index])
            expected = oracle.resident_blocks(set_index)
            if produced != expected:
                return Divergence(
                    i, block, "residency",
                    f"set {set_index}: production residents "
                    f"{sorted(produced)} != oracle {sorted(expected)}",
                    accesses,
                )
            if compare_positions:
                got = [
                    position_of(set_index, w) for w in range(cache.assoc)
                ]
                want = oracle.positions(set_index)
                if got != want:
                    return Divergence(
                        i, block, "positions",
                        f"set {set_index}: production positions {got} != "
                        f"oracle {want}",
                        accesses,
                    )
        if invariants and i % check_every == 0:
            violation = check_invariants(cache, invariants)
            if violation is not None:
                return Divergence(i, block, "invariant", violation, accesses)
    if invariants:
        violation = check_invariants(cache, invariants)
        if violation is not None:
            return Divergence(
                len(accesses) - 1,
                accesses[-1] if accesses else -1,
                "invariant",
                violation,
                accesses,
            )
    return None


def diff_stream(
    policy_factory: Callable[[], ReplacementPolicy],
    oracle_factory: Optional[Callable[[], Optional[OracleCache]]],
    accesses: Sequence[int],
    invariants: Optional[Iterable[Invariant]] = None,
    check_every: int = 1,
) -> Optional[Divergence]:
    """Fresh-instance wrapper around :func:`run_differential`.

    Factories (not instances) make the check re-runnable, which is what the
    shrinker needs: every candidate sub-stream is replayed from cold state.
    Next-use annotations, when the policy requires them, are recomputed for
    every candidate stream.
    """
    oracle = oracle_factory() if oracle_factory is not None else None
    policy = policy_factory()
    next_use = None
    if getattr(policy, "requires_future", False):
        from ..trace.record import Trace, annotate_next_use

        next_use = annotate_next_use(Trace(list(accesses)))
    return run_differential(
        policy, oracle, accesses, invariants, check_every, next_use=next_use
    )


# ----------------------------------------------------------------------
# Run-level checks.
# ----------------------------------------------------------------------
def _state_digest(policy: ReplacementPolicy) -> Optional[tuple]:
    """Positions of every (set, way), when the policy can decode them."""
    position_of = getattr(policy, "position_of", None)
    if position_of is None:
        return None
    return tuple(
        tuple(position_of(s, w) for w in range(policy.assoc))
        for s in range(policy.num_sets)
    )


def check_lut_walk_equality(
    policy_factory: Callable[..., ReplacementPolicy],
    accesses: Sequence[int],
) -> Optional[str]:
    """Bit-identity of the LUT kernel against the reference bit-walks.

    ``policy_factory`` must accept a ``kernel`` keyword (the tree-PLRU
    family does).  Returns a mismatch description or ``None``.  When the
    LUT kernel is unavailable for the geometry (``resolve_kernel`` returned
    ``None`` and both runs walked), the comparison still holds trivially
    and ``None`` is returned.
    """
    results = {}
    for mode in ("lut", "walk"):
        policy = policy_factory(kernel=mode)
        cache = _build_cache(policy)
        misses = sum(not cache.access(block) for block in accesses)
        stats = cache.stats
        results[mode] = {
            "misses": misses,
            "hits": stats.hits,
            "evictions": stats.evictions,
            "state": _state_digest(policy),
            "kernel_mode": getattr(policy, "kernel_mode", mode),
        }
    lut, walk = results["lut"], results["walk"]
    for key in ("misses", "hits", "evictions", "state"):
        if lut[key] != walk[key]:
            return (
                f"lut-vs-walk {key} mismatch: "
                f"lut({lut['kernel_mode']})={lut[key]!r} "
                f"walk={walk[key]!r}"
            )
    return None


def check_columnar_equality(
    num_sets: int,
    assoc: int,
    entries: Sequence[int],
    accesses: Sequence[int],
) -> Optional[str]:
    """Bit-identity of the columnar engine against the scalar kernels.

    Runs one IPV over ``accesses`` through the walk reference, the LUT
    kernel and the columnar batch engine, and compares miss counts, the
    measured miss-index streams *and* the final recency-position
    permutation of every set (engine state vs a walk-kernel
    :class:`~repro.policies.plru.GIPPRPolicy` driven through the
    production cache).  Returns a mismatch description or ``None``.
    Trivially ``None`` when the engine is unavailable here (no numpy /
    unsupported geometry) — its *error* behaviour is covered separately.
    """
    from ..engine.columnar import BatchSimulator, columnar_supported
    from ..ga.fitness import simulate_misses_plru_ipv

    if not columnar_supported(assoc) or not accesses:
        return None
    results = {}
    for mode in ("walk", "lut", "columnar"):
        indices: List[int] = []
        misses = simulate_misses_plru_ipv(
            accesses, num_sets, assoc, entries, warmup=0,
            miss_indices=indices, kernel=mode,
        )
        results[mode] = (misses, indices)
    for mode in ("lut", "columnar"):
        for field, got, want in (
            ("misses", results[mode][0], results["walk"][0]),
            ("miss_indices", results[mode][1], results["walk"][1]),
        ):
            if got != want:
                if field == "miss_indices":
                    got, want = len(got), len(want)  # keep the message short
                return (
                    f"columnar {mode}-vs-walk {field} mismatch: "
                    f"{got!r} != {want!r}"
                )
    # Final recency positions: engine state vs the production cache.
    from ..core.ipv import IPV
    from ..policies.plru import GIPPRPolicy

    simulator = BatchSimulator(num_sets, assoc, [tuple(entries)])
    simulator.run(accesses)
    policy = GIPPRPolicy(
        num_sets, assoc, ipv=IPV(list(entries), name="columnar-check"),
        kernel="walk",
    )
    cache = _build_cache(policy)
    for block in accesses:
        cache.access(block)
    engine_pos = simulator.positions(0)
    for s in range(num_sets):
        want = [policy.position_of(s, w) for w in range(assoc)]
        got = [int(p) for p in engine_pos[s]]
        if got != want:
            return (
                f"columnar final positions mismatch in set {s}: "
                f"{got} != {want}"
            )
    return None


def check_duel_columnar_equality(
    num_sets: int,
    assoc: int,
    ipv_pair: Sequence[Sequence[int]],
    accesses: Sequence[int],
) -> Optional[str]:
    """Bit-identity of the duelling engine against the DGIPPR policy.

    Drives one 2-vector set-dueling lane through
    :class:`~repro.engine.columnar.DuelBatchSimulator` and the scalar
    :class:`~repro.policies.plru.DGIPPRPolicy` +
    :class:`~repro.cache.cache.SetAssociativeCache` pair, comparing miss
    counts, the final PSEL value and the final position permutation —
    PSEL is global-access-order state, so this is the check that pins the
    engine's access-serial duel path.  Returns a description or ``None``
    (trivially when the engine is unavailable or the pair is not binary).
    """
    from ..engine.columnar import DuelBatchSimulator, columnar_supported

    if not columnar_supported(assoc) or len(ipv_pair) != 2 or not accesses:
        return None
    from ..core.ipv import IPV
    from ..policies.plru import DGIPPRPolicy

    simulator = DuelBatchSimulator(
        num_sets, assoc, [tuple(tuple(v) for v in ipv_pair)]
    )
    engine_misses = int(simulator.run(accesses)[0])
    policy = DGIPPRPolicy(
        num_sets, assoc,
        ipvs=[IPV(list(v), name=f"duel{i}") for i, v in enumerate(ipv_pair)],
        kernel="walk",
    )
    cache = _build_cache(policy)
    misses = sum(not cache.access(block) for block in accesses)
    if engine_misses != misses:
        return (
            f"duel columnar misses mismatch: engine {engine_misses} != "
            f"policy {misses}"
        )
    psel = int(simulator.psel[0])
    want_psel = policy.selector.psel.value
    if psel != want_psel:
        return f"duel columnar PSEL mismatch: engine {psel} != {want_psel}"
    engine_pos = simulator.positions(0)
    for s in range(num_sets):
        want = [policy.position_of(s, w) for w in range(assoc)]
        got = [int(p) for p in engine_pos[s]]
        if got != want:
            return (
                f"duel columnar final positions mismatch in set {s}: "
                f"{got} != {want}"
            )
    return None


def check_belady_dominance(
    policy: ReplacementPolicy,
    accesses: Sequence[int],
) -> Optional[str]:
    """Belady's MIN must not miss more than ``policy`` on this stream.

    Only meaningful for demand-fetch, non-bypassing policies; callers skip
    bypassing policies.  Returns a violation description or ``None``.
    """
    from ..policies.belady import BeladyPolicy
    from ..trace.record import Trace, annotate_next_use

    trace = Trace(list(accesses))
    next_use = annotate_next_use(trace)
    belady = BeladyPolicy(policy.num_sets, policy.assoc)
    belady_cache = _build_cache(belady)
    belady_misses = sum(
        not belady_cache.access(block, next_use=next_use[i])
        for i, block in enumerate(accesses)
    )
    cache = _build_cache(policy)
    policy_misses = sum(not cache.access(block) for block in accesses)
    if belady_misses > policy_misses:
        return (
            f"Belady MIN missed {belady_misses} > {policy.name} "
            f"{policy_misses} on {len(accesses)} accesses"
        )
    return None
