"""Counterexample shrinking and replayable repro artifacts.

When the differential runner finds a diverging stream, the raw
counterexample is typically thousands of accesses long.  :func:`shrink_stream`
minimises it with delta debugging (ddmin-style chunk removal down to single
accesses) followed by address canonicalisation, using only a caller-supplied
``still_fails(accesses) -> bool`` predicate — so the same shrinker serves
oracle divergences, invariant violations and golden drifts alike.

The result is written as a *replayable artifact*: a small JSON file naming
the policy, its (serialisable) construction kwargs, the geometry, the
oracle, and the minimised access list.  :func:`replay_artifact` rebuilds
both sides from the artifact and re-runs the differential check, so a
repro committed to a bug report keeps working as the code evolves.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

__all__ = [
    "ARTIFACT_SCHEMA",
    "shrink_stream",
    "canonicalize_addresses",
    "write_artifact",
    "load_artifact",
    "replay_artifact",
]

#: Bump when the artifact layout changes.
ARTIFACT_SCHEMA = "repro-counterexample/1"


def shrink_stream(
    accesses: Sequence[int],
    still_fails: Callable[[List[int]], bool],
    max_rounds: int = 64,
) -> List[int]:
    """Minimise a failing access stream with ddmin + canonicalisation.

    ``still_fails`` must be deterministic and must return ``True`` for the
    input stream.  The returned stream is 1-minimal up to the round budget:
    removing any single access (at the finest granularity reached) would
    make the failure disappear.
    """
    current = list(accesses)
    if not still_fails(current):
        raise ValueError("still_fails() rejected the initial stream")
    chunks = 2
    rounds = 0
    while len(current) >= 2 and rounds < max_rounds:
        rounds += 1
        chunk_size = max(1, len(current) // chunks)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk_size:]
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
                # Re-test from the same offset: the next chunk slid left.
            else:
                start += chunk_size
        if reduced:
            chunks = max(chunks - 1, 2)
        elif chunk_size == 1:
            break
        else:
            chunks = min(chunks * 2, len(current))
    canonical = canonicalize_addresses(current)
    if canonical != current and still_fails(canonical):
        current = canonical
    return current


def canonicalize_addresses(accesses: Sequence[int]) -> List[int]:
    """Remap blocks to the smallest distinct values, preserving aliasing.

    The remapping is order-of-first-appearance, so equal blocks stay equal
    and distinct blocks stay distinct, while the values themselves become
    small dense integers — easier to read in a bug report.  Set mapping may
    change, which is why the shrinker only keeps the canonical form when
    the failure survives it.
    """
    mapping: dict = {}
    out: List[int] = []
    for block in accesses:
        if block not in mapping:
            mapping[block] = len(mapping)
        out.append(mapping[block])
    return out


def write_artifact(
    path: Union[str, Path],
    policy: str,
    num_sets: int,
    assoc: int,
    accesses: Sequence[int],
    divergence: dict,
    policy_kwargs: Optional[dict] = None,
    oracle: Optional[str] = None,
    stream: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> Path:
    """Atomically write a replayable counterexample artifact."""
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "policy": policy,
        "policy_kwargs": policy_kwargs or {},
        "num_sets": num_sets,
        "assoc": assoc,
        "oracle": oracle,
        "stream": stream or {},
        "accesses": list(int(a) for a in accesses),
        "divergence": divergence,
    }
    if extra:
        payload.update(extra)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_artifact(path: Union[str, Path]) -> dict:
    with open(path) as handle:
        artifact = json.load(handle)
    if artifact.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: unknown artifact schema {artifact.get('schema')!r}"
        )
    return artifact


def replay_artifact(artifact: Union[str, Path, dict]):
    """Re-run the differential check recorded in an artifact.

    Returns the reproduced :class:`~repro.verify.differential.Divergence`
    (``None`` means the bug no longer reproduces — fixed, or flaky).
    """
    from .conformance import build_oracle, build_policy
    from .differential import diff_stream

    if not isinstance(artifact, dict):
        artifact = load_artifact(artifact)
    payload = artifact

    def policy_factory():
        return build_policy(
            payload["policy"],
            payload["num_sets"],
            payload["assoc"],
            payload.get("policy_kwargs") or {},
        )

    oracle_name = payload.get("oracle")
    oracle_factory = None
    if oracle_name:
        def oracle_factory():
            return build_oracle(
                oracle_name,
                payload["policy"],
                payload["num_sets"],
                payload["assoc"],
                payload.get("policy_kwargs") or {},
            )

    return diff_stream(policy_factory, oracle_factory, payload["accesses"])
