"""The conformance matrix and the `repro verify` driver.

This module knows, for every policy in :mod:`repro.policies.registry`:

* which reference oracle (if any) it must match bit-for-bit,
* which deterministic construction kwargs to use at each geometry (the
  published k=16 paper vectors where they apply; deterministic stress
  vectors elsewhere — all serialisable so counterexample artifacts can
  rebuild the exact policy),
* whether it supports the LUT/walk kernel switch, bypasses, or requires
  future knowledge (Belady).

:func:`verify_policy` fuzzes one policy across the deterministic stream
family (:mod:`repro.verify.streams`) over several seeds and geometries,
checking the oracle differential, the per-access invariant battery, the
LUT-vs-walk kernel identity and Belady dominance; any failure is shrunk
(:mod:`repro.verify.shrink`) and written as a replayable artifact.
:func:`verify_all` aggregates every policy plus the golden-corpus drift
check (:mod:`repro.verify.goldens`) and records a provenance manifest via
:mod:`repro.obs.provenance` so each conformance run names its kernel
modes, seeds and code digest.
"""

from __future__ import annotations

import logging
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.ipv import IPV, lip_ipv, lru_ipv, mru_pessimistic_ipv
from ..obs.spans import span
from ..core.vectors import (
    DGIPPR4_WI_VECTORS,
    GIPLR_VECTOR,
    GIPPR_WI_VECTOR,
)
from ..policies.base import ReplacementPolicy
from ..policies.registry import make_policy, policy_names
from .differential import (
    Divergence,
    check_belady_dominance,
    check_columnar_equality,
    check_duel_columnar_equality,
    check_lut_walk_equality,
    diff_stream,
)
from .oracles import LRUStackOracle, OracleCache, PLRUPositionsOracle
from .shrink import shrink_stream, write_artifact
from .streams import generate_stream, stream_names

__all__ = [
    "DEFAULT_FUZZ_BUDGET",
    "DEFAULT_GEOMETRIES",
    "KERNEL_GEOMETRY",
    "ConformanceReport",
    "PolicyReport",
    "build_oracle",
    "build_policy",
    "oracle_for",
    "policy_kwargs",
    "verify_all",
    "verify_policy",
]

logger = logging.getLogger(__name__)

#: Total fuzz accesses per policy (split across stream x seed x geometry).
DEFAULT_FUZZ_BUDGET = 24_000

#: Small geometries keep per-access invariant checking affordable while
#: still covering k in {2, 4, 8}; the kernel geometry adds the paper's
#: 16-way trees (and thereby the k=16 LUTs).
DEFAULT_GEOMETRIES: Tuple[Tuple[int, int], ...] = ((8, 4), (4, 8), (16, 2))
KERNEL_GEOMETRY: Tuple[int, int] = (4, 16)

#: Streams used for the (more expensive) run-level dominance check.
_DOMINANCE_STREAMS = ("cyclic-over-capacity", "zipf-hot")

#: Policies whose production path can run on the precompiled LUT kernels.
_KERNEL_POLICIES = frozenset({"plru", "gippr", "dgippr"})

#: Policies that may bypass (Belady dominance does not apply to them).
_BYPASSING = frozenset({"bypass-dgippr"})


def _stress_ipv_entries(assoc: int, salt: int) -> List[int]:
    """A deterministic pseudo-random IPV for geometries without paper
    vectors; ``random.Random`` keeps it stable across platforms."""
    rng = random.Random(0xA11CE ^ (salt * 0x9E3779B1) ^ assoc)
    return [rng.randrange(assoc) for _ in range(assoc + 1)]


def policy_kwargs(name: str, num_sets: int, assoc: int) -> dict:
    """Deterministic, JSON-serialisable constructor kwargs for a policy.

    Paper vectors are used where the geometry matches (k=16); elsewhere
    deterministic stress vectors / classic vectors of the right width.
    """
    if name == "ipv-lru":
        return {"ipv": list(mru_pessimistic_ipv(assoc).entries)}
    if name == "giplr":
        if assoc == GIPLR_VECTOR.k:
            return {"ipv": list(GIPLR_VECTOR.entries)}
        return {"ipv": _stress_ipv_entries(assoc, salt=1)}
    if name == "gippr":
        if assoc == GIPPR_WI_VECTOR.k:
            return {"ipv": list(GIPPR_WI_VECTOR.entries)}
        return {"ipv": _stress_ipv_entries(assoc, salt=2)}
    if name in ("dgippr", "bypass-dgippr"):
        if assoc == DGIPPR4_WI_VECTORS[0].k:
            ipvs = [list(v.entries) for v in DGIPPR4_WI_VECTORS]
        else:
            ipvs = [
                list(lru_ipv(assoc).entries),
                list(lip_ipv(assoc).entries),
            ]
        return {"ipvs": ipvs}
    return {}


def _deserialize_kwargs(kwargs: dict) -> dict:
    """Rebuild IPV objects from the serialisable kwargs representation."""
    out = dict(kwargs)
    if "ipv" in out and not isinstance(out["ipv"], IPV):
        out["ipv"] = IPV(out["ipv"], name="conformance")
    if "ipvs" in out:
        out["ipvs"] = [
            v if isinstance(v, IPV) else IPV(v, name=f"conformance{i}")
            for i, v in enumerate(out["ipvs"])
        ]
    return out


def build_policy(
    name: str,
    num_sets: int,
    assoc: int,
    kwargs: Optional[dict] = None,
    kernel: Optional[str] = None,
) -> ReplacementPolicy:
    """Instantiate a registry policy from serialisable conformance kwargs."""
    if kwargs is None:
        kwargs = policy_kwargs(name, num_sets, assoc)
    kwargs = _deserialize_kwargs(kwargs)
    if kernel is not None and name in _KERNEL_POLICIES:
        kwargs["kernel"] = kernel
    return make_policy(name, num_sets, assoc, **kwargs)


def oracle_for(name: str) -> Optional[str]:
    """Oracle kind for a policy name (``None`` -> invariants-only)."""
    if name in ("lru", "ipv-lru", "giplr"):
        return "lru-stack"
    if name in ("plru", "gippr", "dgippr"):
        return "plru-positions"
    return None


def build_oracle(
    oracle_name: str,
    policy_name: str,
    num_sets: int,
    assoc: int,
    kwargs: Optional[dict] = None,
) -> OracleCache:
    """Build the reference oracle matching ``build_policy``'s instance."""
    if kwargs is None:
        kwargs = policy_kwargs(policy_name, num_sets, assoc)
    kwargs = _deserialize_kwargs(kwargs)
    if oracle_name == "lru-stack":
        return LRUStackOracle(num_sets, assoc, ipv=kwargs.get("ipv"))
    if oracle_name == "plru-positions":
        if "ipvs" in kwargs:
            return PLRUPositionsOracle(
                num_sets,
                assoc,
                kwargs["ipvs"],
                leaders_per_policy=kwargs.get("leaders_per_policy"),
                counter_bits=kwargs.get("counter_bits", 11),
                seed=kwargs.get("seed", 0xDEAD),
            )
        if "ipv" in kwargs:
            return PLRUPositionsOracle(num_sets, assoc, [kwargs["ipv"]])
        return PLRUPositionsOracle(num_sets, assoc)
    raise ValueError(f"unknown oracle {oracle_name!r}")


# ----------------------------------------------------------------------
# Reports.
# ----------------------------------------------------------------------
class PolicyReport:
    """Outcome of :func:`verify_policy` for one policy."""

    def __init__(self, policy: str, oracle: Optional[str]):
        self.policy = policy
        self.oracle = oracle
        self.streams_run = 0
        self.accesses_run = 0
        self.divergences: List[Divergence] = []
        self.lut_walk_failures: List[str] = []
        self.dominance_failures: List[str] = []
        self.artifacts: List[str] = []
        self.wall_time_sec = 0.0

    @property
    def ok(self) -> bool:
        return not (
            self.divergences
            or self.lut_walk_failures
            or self.dominance_failures
        )

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "oracle": self.oracle,
            "ok": self.ok,
            "streams_run": self.streams_run,
            "accesses_run": self.accesses_run,
            "divergences": [d.as_dict() for d in self.divergences],
            "lut_walk_failures": list(self.lut_walk_failures),
            "dominance_failures": list(self.dominance_failures),
            "artifacts": list(self.artifacts),
            "wall_time_sec": round(self.wall_time_sec, 3),
        }

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        oracle = self.oracle or "invariants-only"
        line = (
            f"{self.policy:<14} {status:<4} {oracle:<16} "
            f"{self.streams_run:>3} streams  "
            f"{self.accesses_run:>8,} accesses"
        )
        if not self.ok:
            first = (
                self.divergences[0].detail
                if self.divergences
                else (self.lut_walk_failures + self.dominance_failures)[0]
            )
            line += f"  first failure: {first}"
        return line


class ConformanceReport:
    """Aggregate of every policy report plus the golden-corpus check."""

    def __init__(self):
        self.reports: List[PolicyReport] = []
        self.golden_drift: List[str] = []
        self.goldens_checked = 0
        self.wall_time_sec = 0.0

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports) and not self.golden_drift

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "policies": [r.as_dict() for r in self.reports],
            "golden_drift": list(self.golden_drift),
            "goldens_checked": self.goldens_checked,
            "wall_time_sec": round(self.wall_time_sec, 3),
        }

    def summary(self) -> str:
        lines = [r.summary() for r in self.reports]
        if self.goldens_checked:
            if self.golden_drift:
                lines.append(
                    f"goldens: {len(self.golden_drift)} drift(s):"
                )
                lines.extend(f"  {d}" for d in self.golden_drift)
            else:
                lines.append(
                    f"goldens: {self.goldens_checked} entries match"
                )
        lines.append(
            f"conformance {'PASSED' if self.ok else 'FAILED'} in "
            f"{self.wall_time_sec:.1f}s"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The fuzz driver.
# ----------------------------------------------------------------------
def _geometries_for(name: str) -> Tuple[Tuple[int, int], ...]:
    if name in _KERNEL_POLICIES or name in (
        "lru", "dip", "drrip", "bypass-dgippr"
    ):
        return DEFAULT_GEOMETRIES + (KERNEL_GEOMETRY,)
    return DEFAULT_GEOMETRIES


def verify_policy(
    name: str,
    fuzz_budget: int = DEFAULT_FUZZ_BUDGET,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    seeds: Sequence[int] = (0, 1),
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    check_every: int = 1,
    fail_fast: bool = True,
) -> PolicyReport:
    """Differentially fuzz one registered policy.

    The fuzz budget is the total number of accesses, split evenly over the
    ``stream x seed x geometry`` grid (at least 64 accesses per cell).
    With ``shrink`` enabled each failure is minimised and, when
    ``artifact_dir`` is given, written as a replayable JSON artifact.
    """
    started = time.perf_counter()
    oracle_name = oracle_for(name)
    report = PolicyReport(name, oracle_name)
    if geometries is None:
        geometries = _geometries_for(name)
    cells = [
        (stream, seed, geometry)
        for geometry in geometries
        for stream in stream_names()
        for seed in seeds
    ]
    n_per_cell = max(64, fuzz_budget // max(1, len(cells)))

    for stream, seed, (num_sets, assoc) in cells:
        kwargs = policy_kwargs(name, num_sets, assoc)
        accesses = generate_stream(stream, seed, n_per_cell, num_sets, assoc)

        def policy_factory():
            return build_policy(name, num_sets, assoc, kwargs)

        oracle_factory = None
        if oracle_name is not None:
            def oracle_factory():
                return build_oracle(
                    oracle_name, name, num_sets, assoc, kwargs
                )

        divergence = diff_stream(
            policy_factory, oracle_factory, accesses,
            check_every=check_every,
        )
        report.streams_run += 1
        report.accesses_run += len(accesses)
        if divergence is not None:
            logger.warning(
                "%s diverged on %s seed=%d %dx%d at access %d: %s",
                name, stream, seed, num_sets, assoc,
                divergence.index, divergence.detail,
            )
            if shrink:
                def still_fails(candidate: List[int]) -> bool:
                    return (
                        diff_stream(
                            policy_factory, oracle_factory, candidate,
                            check_every=check_every,
                        )
                        is not None
                    )

                shrunk = shrink_stream(accesses, still_fails)
                final = diff_stream(
                    policy_factory, oracle_factory, shrunk,
                    check_every=check_every,
                )
                divergence = final if final is not None else divergence
                divergence.accesses = shrunk
            report.divergences.append(divergence)
            if artifact_dir is not None:
                path = Path(artifact_dir) / (
                    f"{name}-{stream}-s{seed}-{num_sets}x{assoc}.json"
                )
                write_artifact(
                    path,
                    policy=name,
                    num_sets=num_sets,
                    assoc=assoc,
                    accesses=divergence.accesses or accesses,
                    divergence=divergence.as_dict(),
                    policy_kwargs=kwargs,
                    oracle=oracle_name,
                    stream={
                        "name": stream,
                        "seed": seed,
                        "n": n_per_cell,
                    },
                )
                report.artifacts.append(str(path))
            if fail_fast:
                break

    # Run-level: LUT-vs-walk kernel identity.
    if name in _KERNEL_POLICIES and (not report.divergences or not fail_fast):
        for num_sets, assoc in (DEFAULT_GEOMETRIES[0], KERNEL_GEOMETRY):
            kwargs = policy_kwargs(name, num_sets, assoc)
            accesses = generate_stream(
                "random-uniform", seeds[0], max(512, n_per_cell),
                num_sets, assoc,
            )

            def kernel_factory(kernel: str = "auto"):
                return build_policy(
                    name, num_sets, assoc, kwargs, kernel=kernel
                )

            mismatch = check_lut_walk_equality(kernel_factory, accesses)
            if mismatch is not None:
                report.lut_walk_failures.append(
                    f"{num_sets}x{assoc}: {mismatch}"
                )

            # Columnar-engine identity on the same cells (reported into
            # the same bucket, prefixed).  Single-IPV lanes for the
            # GIPPR family; the access-serial duel path for binary duels.
            columnar_mismatch = None
            if name in ("plru", "gippr"):
                entries = kwargs.get("ipv") or [0] * (assoc + 1)
                columnar_mismatch = check_columnar_equality(
                    num_sets, assoc, entries, accesses
                )
            elif name == "dgippr" and len(kwargs.get("ipvs", ())) == 2:
                columnar_mismatch = check_duel_columnar_equality(
                    num_sets, assoc, kwargs["ipvs"], accesses
                )
            if columnar_mismatch is not None:
                report.lut_walk_failures.append(
                    f"{num_sets}x{assoc}: columnar: {columnar_mismatch}"
                )

    # Run-level: Belady dominance (demand-fetch, non-bypassing policies).
    if (
        name != "belady"
        and name not in _BYPASSING
        and (not report.divergences or not fail_fast)
    ):
        num_sets, assoc = DEFAULT_GEOMETRIES[0]
        kwargs = policy_kwargs(name, num_sets, assoc)
        for stream in _DOMINANCE_STREAMS:
            accesses = generate_stream(
                stream, seeds[0], max(512, n_per_cell), num_sets, assoc
            )
            violation = check_belady_dominance(
                build_policy(name, num_sets, assoc, kwargs), accesses
            )
            if violation is not None:
                report.dominance_failures.append(f"{stream}: {violation}")

    report.wall_time_sec = time.perf_counter() - started
    return report


def verify_all(
    policies: Optional[Sequence[str]] = None,
    fuzz_budget: int = DEFAULT_FUZZ_BUDGET,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    seeds: Sequence[int] = (0, 1),
    check_goldens: bool = True,
    goldens_path: Optional[str] = None,
    check_every: int = 1,
) -> ConformanceReport:
    """Verify every (or the named) registered policies plus the goldens."""
    from .goldens import check_golden_corpus

    started = time.perf_counter()
    report = ConformanceReport()
    for name in policies or policy_names():
        logger.info("verifying %s ...", name)
        with span("verify.policy", policy=name):
            report.reports.append(
                verify_policy(
                    name,
                    fuzz_budget=fuzz_budget,
                    shrink=shrink,
                    artifact_dir=artifact_dir,
                    seeds=seeds,
                    check_every=check_every,
                )
            )
    if check_goldens:
        with span("verify.goldens"):
            drift, checked = check_golden_corpus(goldens_path)
        report.golden_drift = drift
        report.goldens_checked = checked
        # The columnar corpus rides the same gate (only when the default
        # corpus location is in use — an explicit path points at the main
        # corpus only).
        if goldens_path is None:
            from .goldens import check_columnar_goldens, check_serving_goldens

            with span("verify.columnar_goldens"):
                col_drift, col_checked = check_columnar_goldens()
            report.golden_drift = report.golden_drift + col_drift
            report.goldens_checked += col_checked
            with span("verify.serving_goldens"):
                srv_drift, srv_checked = check_serving_goldens()
            report.golden_drift = report.golden_drift + srv_drift
            report.goldens_checked += srv_checked
    report.wall_time_sec = time.perf_counter() - started
    return report


def write_conformance_manifest(
    report: ConformanceReport,
    out_path: str,
    fuzz_budget: int,
    seeds: Sequence[int],
    policies: Sequence[str],
) -> None:
    """Write the report JSON plus its provenance manifest sidecar.

    The manifest's standard fields already record the code digest, git
    revision and kernel provenance (LUT vs walk, compile counts); the extra
    block pins the conformance-specific inputs.
    """
    import json

    from ..obs.provenance import build_manifest, write_manifest

    path = Path(out_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    manifest = build_manifest(
        wall_time_sec=report.wall_time_sec,
        extra={
            "conformance": {
                "ok": report.ok,
                "fuzz_budget": fuzz_budget,
                "seeds": list(seeds),
                "policies": list(policies),
                "streams": stream_names(),
                "geometries": [list(g) for g in DEFAULT_GEOMETRIES]
                + [list(KERNEL_GEOMETRY)],
                "goldens_checked": report.goldens_checked,
                "golden_drift": len(report.golden_drift),
            },
        },
    )
    write_manifest(path, manifest)
