"""Pluggable per-access and per-run invariant checks.

An :class:`Invariant` inspects a production cache (and its policy) after an
access and returns a human-readable violation string, or ``None`` when the
state is healthy.  The differential/conformance runners call
:func:`check_invariants` on every access of every fuzz stream, so a
violation is reported at the *first* access that corrupts state — and the
offending stream can then be shrunk like any other counterexample.

Per-access invariants
---------------------
``tag-uniqueness``       every resident tag occupies exactly one way, and
                         the ``way_of`` reverse map agrees with the tag
                         array.
``fill-count``           the per-set fill counter equals the number of
                         valid ways (the probe-vs-victim branch in the miss
                         path depends on it; ``invalidate`` decrements it).
``position-bijectivity`` policies exposing ``position_of`` must decode a
                         permutation of ``0..assoc-1`` in every set.
``psel-bounds``          every saturating counter of a set-dueling selector
                         stays inside its advertised ``[lo, hi]`` rails.
``stats-consistency``    hits + misses == accesses, and bypasses/evictions
                         never exceed misses.

Per-run checks (:mod:`repro.verify.differential`)
-------------------------------------------------
* LUT-vs-walk kernel equality for the tree-PLRU family, and
* Belady-MIN dominance on next-use-annotated streams.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from ..core.dueling import SaturatingCounter

__all__ = [
    "Invariant",
    "TagUniquenessInvariant",
    "FillCountInvariant",
    "PositionBijectivityInvariant",
    "PselBoundsInvariant",
    "StatsConsistencyInvariant",
    "default_invariants",
    "check_invariants",
    "iter_selector_counters",
]


class Invariant:
    """Base class: subclasses implement :meth:`check`."""

    name = "invariant"

    def check(self, cache) -> Optional[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class TagUniquenessInvariant(Invariant):
    """Tags are unique per set and the reverse map agrees with the ways."""

    name = "tag-uniqueness"

    def check(self, cache) -> Optional[str]:
        for set_index in range(cache.num_sets):
            tags = cache._tags[set_index]
            way_of = cache._way_of[set_index]
            valid = [t for t in tags if t is not None]
            if len(valid) != len(set(valid)):
                return (
                    f"set {set_index}: duplicate resident tags {valid}"
                )
            if len(way_of) != len(valid):
                return (
                    f"set {set_index}: way_of has {len(way_of)} entries "
                    f"but {len(valid)} valid ways"
                )
            for tag, way in way_of.items():
                if tags[way] != tag:
                    return (
                        f"set {set_index}: way_of maps tag {tag} to way "
                        f"{way} holding {tags[way]}"
                    )
        return None


class FillCountInvariant(Invariant):
    """The fill counter tracks the number of valid ways exactly."""

    name = "fill-count"

    def check(self, cache) -> Optional[str]:
        for set_index in range(cache.num_sets):
            valid = sum(t is not None for t in cache._tags[set_index])
            count = cache._fill_count[set_index]
            if count != valid:
                return (
                    f"set {set_index}: fill_count {count} but {valid} "
                    "valid ways"
                )
        return None


class PositionBijectivityInvariant(Invariant):
    """``position_of`` decodes a permutation of ``0..assoc-1`` per set."""

    name = "position-bijectivity"

    def check(self, cache) -> Optional[str]:
        position_of = getattr(cache.policy, "position_of", None)
        if position_of is None:
            return None
        expected = list(range(cache.assoc))
        for set_index in range(cache.num_sets):
            positions = [position_of(set_index, w) for w in range(cache.assoc)]
            if sorted(positions) != expected:
                return (
                    f"set {set_index}: positions {positions} are not a "
                    f"permutation of 0..{cache.assoc - 1}"
                )
        return None


def iter_selector_counters(selector) -> Iterator[SaturatingCounter]:
    """Yield every saturating counter a set-dueling selector owns.

    Understands the three production selector shapes: ``DuelSelector``
    (``psel``), ``TournamentSelector`` (``pair01``/``pair23``/``meta``) and
    ``BracketSelector`` (``levels``); the constant selector has none.
    """
    if selector is None:
        return
    for attr in ("psel", "pair01", "pair23", "meta"):
        counter = getattr(selector, attr, None)
        if isinstance(counter, SaturatingCounter):
            yield counter
    for level in getattr(selector, "levels", ()) or ():
        for counter in level:
            if isinstance(counter, SaturatingCounter):
                yield counter


class PselBoundsInvariant(Invariant):
    """Every selector counter stays within its saturation rails."""

    name = "psel-bounds"

    def check(self, cache) -> Optional[str]:
        selector = getattr(cache.policy, "selector", None)
        for counter in iter_selector_counters(selector):
            if not counter.lo <= counter.value <= counter.hi:
                return (
                    f"selector counter value {counter.value} outside "
                    f"[{counter.lo}, {counter.hi}]"
                )
        return None


class StatsConsistencyInvariant(Invariant):
    """Aggregate counters stay mutually consistent."""

    name = "stats-consistency"

    def check(self, cache) -> Optional[str]:
        stats = cache.stats
        if stats.hits + stats.misses != stats.accesses:
            return (
                f"hits {stats.hits} + misses {stats.misses} != "
                f"accesses {stats.accesses}"
            )
        if stats.bypasses > stats.misses:
            return f"bypasses {stats.bypasses} exceed misses {stats.misses}"
        if stats.evictions > stats.misses:
            return f"evictions {stats.evictions} exceed misses {stats.misses}"
        return None


def default_invariants() -> List[Invariant]:
    """The standard battery, in check order."""
    return [
        TagUniquenessInvariant(),
        FillCountInvariant(),
        PositionBijectivityInvariant(),
        PselBoundsInvariant(),
        StatsConsistencyInvariant(),
    ]


def check_invariants(
    cache, invariants: Iterable[Invariant]
) -> Optional[str]:
    """First violation as ``"name: detail"``, or ``None`` when all hold."""
    for invariant in invariants:
        violation = invariant.check(cache)
        if violation is not None:
            return f"{invariant.name}: {violation}"
    return None
