"""Deterministic, seed-addressable access-stream generators for conformance.

Unlike :mod:`repro.trace.synthetic` (which builds numpy-backed ``Trace``
objects for experiments), these generators produce plain ``list`` of block
addresses from the stdlib ``random`` module only, so the conformance gate

* has a stable output for a given ``(name, seed, n, geometry)`` on every
  platform and Python version (``random.Random`` is the portable Mersenne
  Twister; no float-distribution calls are used),
* needs no optional test dependency (no hypothesis) and can run as a plain
  CLI/CI command, and
* can be replayed exactly from the four integers recorded in a
  counterexample artifact.

Each generator is registered in :data:`STREAM_GENERATORS` under a stable
name; :func:`generate_stream` is the single entry point.  The family is
chosen to stress every interesting replacement-policy regime:

``seq-scan``
    Zero-reuse sequential blocks (Section 2.2's dead-on-arrival traffic).
``cyclic-at-capacity`` / ``cyclic-over-capacity``
    Loops exactly at and just over cache capacity — the at-capacity loop is
    all-hits after warmup for LRU-like policies, the over-capacity loop is
    the canonical LRU-thrash / LIP-win pattern.
``zipf-hot``
    A hot head with a long cold tail (inverse-CDF Zipf over integers).
``zipf-scan-mix``
    Zipf traffic periodically disturbed by one-shot scans.
``adversarial-thrash``
    Per-set thrash: every set cyclically sees ``assoc + 1`` distinct
    blocks, maximising victim-path churn.
``duel-flip``
    Alternating cache-friendly and thrashing phases, sized to drag a PSEL
    counter back and forth across its decision threshold.
``single-set-hammer``
    All traffic lands in set 0 — the densest exercise of one tree's
    insertion/promotion transitions, and the shape shrunk counterexamples
    naturally take.
``random-uniform``
    Uniform traffic over twice the capacity.
"""

from __future__ import annotations

import bisect
import random
from typing import Callable, Dict, List

__all__ = [
    "STREAM_GENERATORS",
    "stream_names",
    "generate_stream",
]

_Generator = Callable[[random.Random, int, int, int], List[int]]


def _capacity(num_sets: int, assoc: int) -> int:
    return num_sets * assoc


def _seq_scan(rng: random.Random, n: int, num_sets: int, assoc: int) -> List[int]:
    return list(range(n))


def _cyclic_at_capacity(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    capacity = _capacity(num_sets, assoc)
    return [i % capacity for i in range(n)]


def _cyclic_over_capacity(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    capacity = _capacity(num_sets, assoc)
    working_set = capacity + max(1, capacity // 8)
    return [i % working_set for i in range(n)]


def _zipf_sampler(rng: random.Random, working_set: int, alpha: float = 1.2):
    """Inverse-CDF sampler over ranks ``0..working_set-1``.

    Uses only ``rng.random()`` and integer weights scaled to a cumulative
    table, so results are bit-stable across platforms.
    """
    cumulative: List[float] = []
    total = 0.0
    for rank in range(1, working_set + 1):
        total += 1.0 / (rank ** alpha)
        cumulative.append(total)

    def sample() -> int:
        x = rng.random() * total
        return bisect.bisect_left(cumulative, x)

    return sample


def _zipf_hot(rng: random.Random, n: int, num_sets: int, assoc: int) -> List[int]:
    working_set = 4 * _capacity(num_sets, assoc)
    sample = _zipf_sampler(rng, working_set)
    # Scatter popularity across sets with a fixed affine permutation so the
    # hot head does not concentrate in set 0.
    return [(sample() * 2654435761) % working_set for _ in range(n)]


def _zipf_scan_mix(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    capacity = _capacity(num_sets, assoc)
    working_set = 2 * capacity
    sample = _zipf_sampler(rng, working_set)
    out: List[int] = []
    scan_cursor = working_set  # scans never collide with the hot region
    while len(out) < n:
        for _ in range(min(3 * capacity // 2, n - len(out))):
            out.append((sample() * 2654435761) % working_set)
        burst = min(capacity // 2, n - len(out))
        out.extend(scan_cursor + j for j in range(burst))
        scan_cursor += burst
    return out


def _adversarial_thrash(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    """Every set cyclically sees ``assoc + 1`` distinct blocks."""
    per_set = assoc + 1
    out: List[int] = []
    cursor = [0] * num_sets
    for i in range(n):
        s = i % num_sets
        out.append(s + num_sets * cursor[s])
        cursor[s] = (cursor[s] + 1) % per_set
    return out


def _duel_flip(rng: random.Random, n: int, num_sets: int, assoc: int) -> List[int]:
    """Alternate friendly and thrashing phases to force PSEL flips."""
    capacity = _capacity(num_sets, assoc)
    friendly_set = max(1, capacity // 2)
    thrash_set = capacity + max(1, capacity // 4)
    phase = max(64, capacity)
    out: List[int] = []
    i = 0
    while len(out) < n:
        friendly = (i // phase) % 2 == 0
        working = friendly_set if friendly else thrash_set
        out.append(i % working)
        i += 1
    return out


def _single_set_hammer(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    distinct = 2 * assoc + 1
    return [num_sets * rng.randrange(distinct) for _ in range(n)]


def _random_uniform(
    rng: random.Random, n: int, num_sets: int, assoc: int
) -> List[int]:
    working_set = 2 * _capacity(num_sets, assoc)
    return [rng.randrange(working_set) for _ in range(n)]


#: Ordered registry of the deterministic conformance streams.
STREAM_GENERATORS: Dict[str, _Generator] = {
    "seq-scan": _seq_scan,
    "cyclic-at-capacity": _cyclic_at_capacity,
    "cyclic-over-capacity": _cyclic_over_capacity,
    "zipf-hot": _zipf_hot,
    "zipf-scan-mix": _zipf_scan_mix,
    "adversarial-thrash": _adversarial_thrash,
    "duel-flip": _duel_flip,
    "single-set-hammer": _single_set_hammer,
    "random-uniform": _random_uniform,
}


def stream_names() -> List[str]:
    return list(STREAM_GENERATORS)


def generate_stream(
    name: str, seed: int, n: int, num_sets: int, assoc: int
) -> List[int]:
    """Generate the named stream; fully determined by the four arguments."""
    try:
        generator = STREAM_GENERATORS[name]
    except KeyError:
        known = ", ".join(stream_names())
        raise ValueError(f"unknown stream {name!r}; known: {known}") from None
    if n < 0:
        raise ValueError(f"stream length must be non-negative, got {n}")
    rng = random.Random(_stable_hash(name) ^ (seed * 0x9E3779B1))
    return generator(rng, n, num_sets, assoc)


def _stable_hash(text: str) -> int:
    """FNV-1a over the stream name — ``hash(str)`` is salted per process."""
    value = 0x811C9DC5
    for byte in text.encode():
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value
