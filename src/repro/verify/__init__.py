"""Differential testing and conformance for the replacement-policy zoo.

The subsystem has five layers, each usable on its own:

:mod:`repro.verify.streams`
    Deterministic, seed-addressable access-stream generators (stdlib
    ``random`` only — no hypothesis dependency).
:mod:`repro.verify.oracles`
    Obviously-correct reference models: an explicit recency-stack for
    true-LRU IPV policies and a positions-decoded tree-PLRU model.
:mod:`repro.verify.invariants`
    Pluggable per-access state checks (tag uniqueness, fill counts,
    position bijectivity, PSEL bounds, stats consistency).
:mod:`repro.verify.differential` / :mod:`repro.verify.shrink`
    Lockstep production-vs-oracle execution, run-level LUT/walk and
    Belady-dominance checks, ddmin counterexample shrinking and
    replayable JSON artifacts.
:mod:`repro.verify.conformance` / :mod:`repro.verify.goldens`
    The per-policy fuzz driver, the aggregate ``repro verify`` report,
    and the committed golden miss-count corpus with drift detection.
"""

from .conformance import (
    ConformanceReport,
    PolicyReport,
    build_oracle,
    build_policy,
    oracle_for,
    policy_kwargs,
    verify_all,
    verify_policy,
    write_conformance_manifest,
)
from .differential import (
    Divergence,
    check_belady_dominance,
    check_lut_walk_equality,
    diff_stream,
    run_differential,
)
from .goldens import (
    check_golden_corpus,
    check_serving_goldens,
    compute_goldens,
    golden_matrix,
    serving_golden_matrix,
    write_golden_corpus,
    write_serving_golden_corpus,
)
from .invariants import (
    Invariant,
    check_invariants,
    default_invariants,
)
from .oracles import LRUStackOracle, OracleCache, PLRUPositionsOracle
from .shrink import (
    load_artifact,
    replay_artifact,
    shrink_stream,
    write_artifact,
)
from .streams import STREAM_GENERATORS, generate_stream, stream_names

__all__ = [
    "ConformanceReport",
    "Divergence",
    "Invariant",
    "LRUStackOracle",
    "OracleCache",
    "PLRUPositionsOracle",
    "PolicyReport",
    "STREAM_GENERATORS",
    "build_oracle",
    "build_policy",
    "check_belady_dominance",
    "check_golden_corpus",
    "check_invariants",
    "check_lut_walk_equality",
    "check_serving_goldens",
    "compute_goldens",
    "default_invariants",
    "diff_stream",
    "generate_stream",
    "golden_matrix",
    "load_artifact",
    "oracle_for",
    "policy_kwargs",
    "replay_artifact",
    "run_differential",
    "serving_golden_matrix",
    "shrink_stream",
    "stream_names",
    "verify_all",
    "verify_policy",
    "write_artifact",
    "write_conformance_manifest",
    "write_golden_corpus",
    "write_serving_golden_corpus",
]
