"""Golden regression corpus: exact miss counts, committed to the repo.

The corpus pins the miss count of every registered policy on a small
deterministic matrix of ``stream x seed x geometry`` cells (the streams
come from :mod:`repro.verify.streams`, the policy kwargs from
:mod:`repro.verify.conformance`, so each entry is fully reproducible from
its key alone).  ``check_golden_corpus`` recomputes every entry and
reports *which* policy/stream/geometry drifted — a behavioural change to
any replacement policy fails conformance with the offender's name, not
just a checksum mismatch.

Regeneration is deliberate and auditable: ``scripts/regen_goldens.py``
rewrites the corpus (with a provenance manifest sidecar recording the
code digest and git revision), and the diff shows exactly which counts
moved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "GOLDEN_SCHEMA",
    "DEFAULT_GOLDENS_PATH",
    "COLUMNAR_GOLDEN_SCHEMA",
    "DEFAULT_COLUMNAR_GOLDENS_PATH",
    "SERVING_GOLDEN_SCHEMA",
    "DEFAULT_SERVING_GOLDENS_PATH",
    "golden_matrix",
    "golden_key",
    "compute_golden",
    "compute_goldens",
    "write_golden_corpus",
    "load_golden_corpus",
    "check_golden_corpus",
    "columnar_golden_matrix",
    "columnar_golden_key",
    "compute_columnar_golden",
    "write_columnar_golden_corpus",
    "check_columnar_goldens",
    "serving_golden_matrix",
    "serving_golden_key",
    "compute_serving_golden",
    "write_serving_golden_corpus",
    "check_serving_goldens",
]

#: Bump when the corpus layout changes.
GOLDEN_SCHEMA = "repro-goldens/1"

#: The committed corpus (kept under tests/ so pytest finds it naturally).
DEFAULT_GOLDENS_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests"
    / "goldens"
    / "conformance_goldens.json"
)

#: Streams every policy is pinned on (the regimes where policies differ
#: most: thrash, skewed reuse, per-set churn).
GOLDEN_STREAMS: Tuple[str, ...] = (
    "cyclic-over-capacity",
    "zipf-hot",
    "adversarial-thrash",
)

#: The base geometry every policy is pinned at, and the 16-way paper
#: geometry for the policies whose published vectors live there.
GOLDEN_GEOMETRY: Tuple[int, int] = (8, 4)
GOLDEN_WIDE_GEOMETRY: Tuple[int, int] = (4, 16)
GOLDEN_WIDE_POLICIES: Tuple[str, ...] = (
    "lru",
    "plru",
    "gippr",
    "dgippr",
    "drrip",
)

GOLDEN_SEED = 0
GOLDEN_N = 1000

#: A golden cell: (policy, stream, seed, num_sets, assoc, n).
Cell = Tuple[str, str, int, int, int, int]


def golden_matrix() -> List[Cell]:
    """The full, ordered list of pinned cells."""
    from ..policies.registry import policy_names

    cells: List[Cell] = []
    num_sets, assoc = GOLDEN_GEOMETRY
    for policy in policy_names():
        for stream in GOLDEN_STREAMS:
            cells.append(
                (policy, stream, GOLDEN_SEED, num_sets, assoc, GOLDEN_N)
            )
    wide_sets, wide_assoc = GOLDEN_WIDE_GEOMETRY
    for policy in GOLDEN_WIDE_POLICIES:
        for stream in GOLDEN_STREAMS:
            cells.append(
                (policy, stream, GOLDEN_SEED, wide_sets, wide_assoc, GOLDEN_N)
            )
    return cells


def golden_key(cell: Cell) -> str:
    policy, stream, seed, num_sets, assoc, n = cell
    return f"{policy}|{stream}|s{seed}|{num_sets}x{assoc}|n{n}"


def compute_golden(cell: Cell) -> int:
    """Miss count for one cell, recomputed from scratch."""
    from ..cache.cache import SetAssociativeCache
    from .conformance import build_policy
    from .streams import generate_stream

    policy_name, stream, seed, num_sets, assoc, n = cell
    accesses = generate_stream(stream, seed, n, num_sets, assoc)
    policy = build_policy(policy_name, num_sets, assoc)
    cache = SetAssociativeCache(
        num_sets, assoc, policy, block_size=1, name="goldens"
    )
    if getattr(policy, "requires_future", False):
        from ..trace.record import Trace, annotate_next_use

        next_use = annotate_next_use(Trace(list(accesses)))
        return sum(
            not cache.access(block, next_use=next_use[i])
            for i, block in enumerate(accesses)
        )
    return sum(not cache.access(block) for block in accesses)


def compute_goldens(
    cells: Optional[List[Cell]] = None,
) -> Dict[str, int]:
    """Recompute the whole corpus (key -> miss count)."""
    if cells is None:
        cells = golden_matrix()
    return {golden_key(cell): compute_golden(cell) for cell in cells}


def write_golden_corpus(
    path: Union[str, Path, None] = None,
    with_manifest: bool = True,
) -> Path:
    """Atomically (re)write the committed corpus, plus its provenance
    manifest sidecar when ``with_manifest`` is set."""
    path = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    entries = compute_goldens()
    payload = {
        "schema": GOLDEN_SCHEMA,
        "seed": GOLDEN_SEED,
        "n": GOLDEN_N,
        "streams": list(GOLDEN_STREAMS),
        "geometries": [list(GOLDEN_GEOMETRY), list(GOLDEN_WIDE_GEOMETRY)],
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    if with_manifest:
        from ..obs.provenance import build_manifest, write_manifest

        write_manifest(
            path,
            build_manifest(
                extra={
                    "goldens": {
                        "schema": GOLDEN_SCHEMA,
                        "entries": len(entries),
                        "seed": GOLDEN_SEED,
                        "n": GOLDEN_N,
                    }
                }
            ),
        )
    return path


def load_golden_corpus(path: Union[str, Path, None] = None) -> dict:
    path = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"{path}: unknown goldens schema {payload.get('schema')!r}"
        )
    return payload


def check_golden_corpus(
    path: Union[str, Path, None] = None,
) -> Tuple[List[str], int]:
    """Recompute every committed entry and name each drifting cell.

    Returns ``(drift_messages, checked_count)``.  A missing corpus file is
    itself reported as drift (the gate must not silently pass when the
    corpus was deleted); cells present in the current matrix but absent
    from the corpus — or vice versa — are reported too, so adding or
    removing a policy forces a deliberate regeneration.
    """
    target = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    try:
        payload = load_golden_corpus(target)
    except FileNotFoundError:
        return [f"golden corpus missing: {target}"], 0
    except ValueError as exc:
        return [str(exc)], 0
    committed: Dict[str, int] = dict(payload.get("entries", {}))
    drift: List[str] = []
    checked = 0
    current = {golden_key(cell): cell for cell in golden_matrix()}
    for key, cell in current.items():
        if key not in committed:
            drift.append(f"{key}: not in committed corpus (regen needed)")
            continue
        expected = committed[key]
        actual = compute_golden(cell)
        checked += 1
        if actual != expected:
            drift.append(
                f"{key}: misses {actual} != committed {expected}"
            )
    for key in committed:
        if key not in current:
            drift.append(f"{key}: committed but no longer in the matrix")
    return drift, checked


# ----------------------------------------------------------------------
# Columnar-engine corpus: kernel-identity goldens.
#
# A second, smaller corpus pinning the columnar batch engine against the
# scalar kernels.  Each multi-lane cell commits the per-lane miss counts
# once; the checker recomputes them through *every* kernel (walk, LUT and
# the columnar engine — including a deliberately ragged chunk size) and
# names the engine that drifted.  Duel cells pin the access-serial PSEL
# path (final counter value included) the set-lockstep scheduling cannot
# cover.
# ----------------------------------------------------------------------
COLUMNAR_GOLDEN_SCHEMA = "repro-columnar-goldens/1"

DEFAULT_COLUMNAR_GOLDENS_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests"
    / "goldens"
    / "columnar_goldens.json"
)

#: Deliberately prime and far below any trace length: every chunk
#: boundary lands mid-trace, so ragged step-transpose tails are pinned.
COLUMNAR_GOLDEN_BATCH = 193

COLUMNAR_GOLDEN_STREAMS: Tuple[str, ...] = (
    "cyclic-over-capacity",
    "zipf-hot",
    "single-set-hammer",
)
COLUMNAR_DUEL_STREAMS: Tuple[str, ...] = ("duel-flip", "zipf-hot")

#: (kind, stream, seed, num_sets, assoc, n, warmup); kind "ipv" pins the
#: lockstep batch engine, "duel" the access-serial PSEL engine.
ColumnarCell = Tuple[str, str, int, int, int, int, int]

_COLUMNAR_GEOMETRIES: Tuple[Tuple[int, int], ...] = (
    (16, 2), (8, 4), (8, 8), (4, 16)
)


def _columnar_lanes(assoc: int) -> List[Tuple[int, ...]]:
    """The IPV lanes a cell batches: classic LRU, LIP, a deterministic
    stress vector, and a duplicate lane (pins table deduplication)."""
    from ..core.ipv import lip_ipv, lru_ipv
    from .conformance import _stress_ipv_entries

    return [
        tuple(lru_ipv(assoc).entries),
        tuple(lip_ipv(assoc).entries),
        tuple(_stress_ipv_entries(assoc, salt=7)),
        tuple(lru_ipv(assoc).entries),
    ]


def _columnar_duel_lanes(assoc: int) -> List[Tuple[Tuple[int, ...], ...]]:
    from ..core.ipv import lip_ipv, lru_ipv
    from .conformance import _stress_ipv_entries

    lru = tuple(lru_ipv(assoc).entries)
    lip = tuple(lip_ipv(assoc).entries)
    stress = tuple(_stress_ipv_entries(assoc, salt=9))
    return [(lru, lip), (lip, stress)]


def columnar_golden_matrix() -> List[ColumnarCell]:
    """The full, ordered list of columnar cells."""
    cells: List[ColumnarCell] = []
    for num_sets, assoc in _COLUMNAR_GEOMETRIES:
        for stream in COLUMNAR_GOLDEN_STREAMS:
            cells.append(
                ("ipv", stream, GOLDEN_SEED, num_sets, assoc, 1200, 200)
            )
    for num_sets, assoc in ((8, 4), (4, 16)):
        for stream in COLUMNAR_DUEL_STREAMS:
            cells.append(
                ("duel", stream, GOLDEN_SEED, num_sets, assoc, 1200, 200)
            )
    return cells


def columnar_golden_key(cell: ColumnarCell) -> str:
    kind, stream, seed, num_sets, assoc, n, warmup = cell
    return f"{kind}|{stream}|s{seed}|{num_sets}x{assoc}|n{n}|w{warmup}"


def compute_columnar_golden(cell: ColumnarCell, engine: str = "columnar"):
    """One cell's value through one engine.

    ``ipv`` cells return the per-lane miss-count list; ``engine`` selects
    ``"columnar"`` (ragged-chunk batch run), ``"walk"`` or ``"lut"``
    (scalar loop per lane).  ``duel`` cells return
    ``{"misses": [...], "psel": [...]}`` via the duel engine
    (``"columnar"``) or the production DGIPPR policy (any other value).
    """
    from .streams import generate_stream

    kind, stream, seed, num_sets, assoc, n, warmup = cell
    accesses = generate_stream(stream, seed, n, num_sets, assoc)
    if kind == "ipv":
        lanes = _columnar_lanes(assoc)
        if engine == "columnar":
            from ..engine.columnar import BatchSimulator, ColumnarTrace

            simulator = BatchSimulator(num_sets, assoc, lanes, warmup)
            trace = ColumnarTrace(
                accesses, num_sets, batch_accesses=COLUMNAR_GOLDEN_BATCH
            )
            return [int(m) for m in simulator.run(trace)]
        from ..ga.fitness import simulate_misses_plru_ipv

        return [
            simulate_misses_plru_ipv(
                accesses, num_sets, assoc, entries, warmup, kernel=engine
            )
            for entries in lanes
        ]
    if kind != "duel":
        raise ValueError(f"unknown columnar golden kind {kind!r}")
    pairs = _columnar_duel_lanes(assoc)
    if engine == "columnar":
        from ..engine.columnar import DuelBatchSimulator

        simulator = DuelBatchSimulator(num_sets, assoc, pairs)
        misses = simulator.run(accesses, warmup=warmup)
        return {
            "misses": [int(m) for m in misses],
            "psel": [int(p) for p in simulator.psel],
        }
    from ..cache.cache import SetAssociativeCache
    from ..core.ipv import IPV
    from ..policies.plru import DGIPPRPolicy

    misses: List[int] = []
    psels: List[int] = []
    for pair in pairs:
        policy = DGIPPRPolicy(
            num_sets, assoc,
            ipvs=[IPV(list(v), name=f"g{i}") for i, v in enumerate(pair)],
            kernel="walk",
        )
        cache = SetAssociativeCache(
            num_sets, assoc, policy, block_size=1, name="goldens"
        )
        count = 0
        for i, block in enumerate(accesses):
            hit = cache.access(block)
            if not hit and i >= warmup:
                count += 1
        misses.append(count)
        psels.append(policy.selector.psel.value)
    return {"misses": misses, "psel": psels}


def write_columnar_golden_corpus(
    path: Union[str, Path, None] = None,
    with_manifest: bool = True,
) -> Path:
    """Atomically (re)write the committed columnar corpus.

    Refuses to write when the engines disagree — a corpus pinning a
    divergent engine would institutionalise the bug it exists to catch.
    """
    path = Path(path) if path is not None else DEFAULT_COLUMNAR_GOLDENS_PATH
    entries: Dict[str, object] = {}
    for cell in columnar_golden_matrix():
        key = columnar_golden_key(cell)
        value = compute_columnar_golden(cell, engine="columnar")
        reference = compute_columnar_golden(
            cell, engine="walk" if cell[0] == "ipv" else "scalar"
        )
        if value != reference:
            raise AssertionError(
                f"{key}: columnar {value!r} != reference {reference!r}; "
                f"refusing to write a divergent corpus"
            )
        entries[key] = value
    payload = {
        "schema": COLUMNAR_GOLDEN_SCHEMA,
        "batch_accesses": COLUMNAR_GOLDEN_BATCH,
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    if with_manifest:
        from ..obs.provenance import build_manifest, write_manifest

        write_manifest(
            path,
            build_manifest(
                extra={
                    "columnar_goldens": {
                        "schema": COLUMNAR_GOLDEN_SCHEMA,
                        "entries": len(entries),
                        "batch_accesses": COLUMNAR_GOLDEN_BATCH,
                    }
                }
            ),
        )
    return path


def check_columnar_goldens(
    path: Union[str, Path, None] = None,
) -> Tuple[List[str], int]:
    """Recompute the columnar corpus through every engine; name drifters.

    Each committed cell is recomputed via the columnar engine *and* its
    scalar references (walk + LUT for ipv cells, the DGIPPR production
    path for duel cells); any engine disagreeing with the committed value
    is reported by name.  Skipped entirely (no drift, 0 checked) when the
    engine is unavailable — scalar coverage of those cells lives in the
    main corpus.
    """
    from ..engine.columnar import columnar_supported

    target = (
        Path(path) if path is not None else DEFAULT_COLUMNAR_GOLDENS_PATH
    )
    if not columnar_supported(MAX_ASSOC_PROBE):
        return [], 0
    try:
        with open(target) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return [f"columnar golden corpus missing: {target}"], 0
    if payload.get("schema") != COLUMNAR_GOLDEN_SCHEMA:
        return [
            f"{target}: unknown columnar goldens schema "
            f"{payload.get('schema')!r}"
        ], 0
    committed: Dict[str, object] = dict(payload.get("entries", {}))
    drift: List[str] = []
    checked = 0
    current = {
        columnar_golden_key(cell): cell for cell in columnar_golden_matrix()
    }
    for key, cell in current.items():
        if key not in committed:
            drift.append(f"{key}: not in committed columnar corpus")
            continue
        expected = committed[key]
        checked += 1
        engines = (
            ("columnar", "walk", "lut") if cell[0] == "ipv"
            else ("columnar", "scalar")
        )
        for engine in engines:
            actual = compute_columnar_golden(cell, engine=engine)
            if actual != expected:
                drift.append(
                    f"{key}: {engine} {actual!r} != committed {expected!r}"
                )
    for key in committed:
        if key not in current:
            drift.append(
                f"{key}: committed but no longer in the columnar matrix"
            )
    return drift, checked


#: Probe associativity for "is the columnar engine available at all":
#: the widest geometry in the matrix (k=16 needs numpy for its tables).
MAX_ASSOC_PROBE = 16


# ----------------------------------------------------------------------
# Serving corpus: the streaming Zipf key-value scenario, end to end.
#
# Each cell pins the exact miss count of one serving spec (Zipf alpha,
# key churn, flash-crowd phases, two tenants) on a small geometry — the
# generator, the set-sharded front-end and the streaming engines all sit
# inside the pinned number.  The committed value comes from the
# single-shard pure-scalar reference; the checker recomputes it there
# *and* (when numpy is up) through the sharded columnar front-end, so a
# drift message names both the cell and the engine that moved.
# ----------------------------------------------------------------------
SERVING_GOLDEN_SCHEMA = "repro-serving-goldens/1"

DEFAULT_SERVING_GOLDENS_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests"
    / "goldens"
    / "serving_goldens.json"
)

SERVING_GOLDEN_SEEDS: Tuple[int, ...] = (0, 1, 2)
SERVING_GOLDEN_POLICIES: Tuple[str, ...] = ("lru", "lip")
SERVING_GOLDEN_ALPHAS: Tuple[float, ...] = (1.1, 1.4)
#: Small geometry; 4096 accesses over 512 keys with churn and one flash
#: phase covers warm steady state, retirement and the crowd override.
SERVING_GOLDEN_GEOMETRY: Tuple[int, int] = (32, 4)
SERVING_GOLDEN_ACCESSES = 4096
SERVING_GOLDEN_KEYS = 512
SERVING_GOLDEN_TENANTS = 2
SERVING_GOLDEN_CHURN_PER_MILLION = 50_000
#: Sharded recomputation fan-out, and a deliberately prime feed chunk so
#: batch boundaries land mid-run everywhere.
SERVING_GOLDEN_SHARDS = 4
SERVING_GOLDEN_CHUNK = 509

#: (seed, policy, alpha)
ServingCell = Tuple[int, str, float]


def serving_golden_matrix() -> List[ServingCell]:
    """The full, ordered list of serving cells (seeds x policies x alphas)."""
    return [
        (seed, policy, alpha)
        for seed in SERVING_GOLDEN_SEEDS
        for policy in SERVING_GOLDEN_POLICIES
        for alpha in SERVING_GOLDEN_ALPHAS
    ]


def serving_golden_key(cell: ServingCell) -> str:
    seed, policy, alpha = cell
    num_sets, assoc = SERVING_GOLDEN_GEOMETRY
    return (
        f"serve|{policy}|a{alpha}|s{seed}|{num_sets}x{assoc}"
        f"|n{SERVING_GOLDEN_ACCESSES}"
    )


def _serving_golden_spec(cell: ServingCell):
    from ..serve.workload import ServingSpec, auto_flash_phases

    seed, _, alpha = cell
    return ServingSpec(
        keys=SERVING_GOLDEN_KEYS,
        alpha=alpha,
        tenants=SERVING_GOLDEN_TENANTS,
        accesses=SERVING_GOLDEN_ACCESSES,
        churn_per_million=SERVING_GOLDEN_CHURN_PER_MILLION,
        phases=auto_flash_phases(SERVING_GOLDEN_ACCESSES, 1),
        seed=seed,
    )


def compute_serving_golden(
    cell: ServingCell, engine: str = "scalar", shards: int = 1
) -> int:
    """One cell's miss count through one front-end configuration."""
    from ..serve.frontend import ShardedFrontend
    from ..serve.service import resolve_policy_entries
    from ..serve.workload import ServingStream

    _, policy, _ = cell
    num_sets, assoc = SERVING_GOLDEN_GEOMETRY
    _, entries = resolve_policy_entries(policy, assoc)
    frontend = ShardedFrontend(
        num_sets, assoc, entries, shards=shards, engine=engine
    )
    misses = 0
    stream = ServingStream(_serving_golden_spec(cell), backend="auto")
    for chunk in stream.chunks(SERVING_GOLDEN_CHUNK):
        misses += frontend.process(chunk)
    return misses


def write_serving_golden_corpus(
    path: Union[str, Path, None] = None,
    with_manifest: bool = True,
) -> Path:
    """Atomically (re)write the committed serving corpus.

    The committed value is the single-shard pure-scalar reference; when
    the columnar engine is available the sharded columnar front-end is
    recomputed too and any disagreement aborts the write — the corpus
    must never pin a diverging engine pair.
    """
    from ..engine.columnar import columnar_supported

    path = (
        Path(path) if path is not None else DEFAULT_SERVING_GOLDENS_PATH
    )
    _, assoc = SERVING_GOLDEN_GEOMETRY
    cross_check = columnar_supported(assoc)
    entries: Dict[str, int] = {}
    for cell in serving_golden_matrix():
        key = serving_golden_key(cell)
        value = compute_serving_golden(cell, engine="scalar", shards=1)
        if cross_check:
            sharded = compute_serving_golden(
                cell, engine="columnar", shards=SERVING_GOLDEN_SHARDS
            )
            if sharded != value:
                raise AssertionError(
                    f"{key}: sharded columnar misses {sharded} != scalar "
                    f"reference {value}; refusing to write a divergent "
                    f"corpus"
                )
        entries[key] = value
    payload = {
        "schema": SERVING_GOLDEN_SCHEMA,
        "geometry": list(SERVING_GOLDEN_GEOMETRY),
        "accesses": SERVING_GOLDEN_ACCESSES,
        "keys": SERVING_GOLDEN_KEYS,
        "tenants": SERVING_GOLDEN_TENANTS,
        "churn_per_million": SERVING_GOLDEN_CHURN_PER_MILLION,
        "shards": SERVING_GOLDEN_SHARDS,
        "chunk": SERVING_GOLDEN_CHUNK,
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    if with_manifest:
        from ..obs.provenance import build_manifest, write_manifest

        write_manifest(
            path,
            build_manifest(
                extra={
                    "serving_goldens": {
                        "schema": SERVING_GOLDEN_SCHEMA,
                        "entries": len(entries),
                        "columnar_cross_checked": cross_check,
                    }
                }
            ),
        )
    return path


def check_serving_goldens(
    path: Union[str, Path, None] = None,
) -> Tuple[List[str], int]:
    """Recompute the serving corpus and name each drifting cell.

    Every cell is recomputed through the single-shard scalar reference
    (always available — the front-end's no-numpy fallback) and, when the
    columnar engine is up, through the ``SERVING_GOLDEN_SHARDS``-way
    columnar front-end; a drift message names the cell *and* the
    configuration that moved.
    """
    from ..engine.columnar import columnar_supported

    target = (
        Path(path) if path is not None else DEFAULT_SERVING_GOLDENS_PATH
    )
    try:
        with open(target) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return [f"serving golden corpus missing: {target}"], 0
    if payload.get("schema") != SERVING_GOLDEN_SCHEMA:
        return [
            f"{target}: unknown serving goldens schema "
            f"{payload.get('schema')!r}"
        ], 0
    _, assoc = SERVING_GOLDEN_GEOMETRY
    configs: List[Tuple[str, str, int]] = [("scalar", "scalar", 1)]
    if columnar_supported(assoc):
        configs.append(
            (
                f"columnar/shards={SERVING_GOLDEN_SHARDS}",
                "columnar",
                SERVING_GOLDEN_SHARDS,
            )
        )
    committed: Dict[str, int] = dict(payload.get("entries", {}))
    drift: List[str] = []
    checked = 0
    current = {
        serving_golden_key(cell): cell for cell in serving_golden_matrix()
    }
    for key, cell in current.items():
        if key not in committed:
            drift.append(f"{key}: not in committed serving corpus")
            continue
        expected = committed[key]
        checked += 1
        for label, engine, shards in configs:
            actual = compute_serving_golden(
                cell, engine=engine, shards=shards
            )
            if actual != expected:
                drift.append(
                    f"{key}: {label} misses {actual} != committed "
                    f"{expected}"
                )
    for key in committed:
        if key not in current:
            drift.append(
                f"{key}: committed but no longer in the serving matrix"
            )
    return drift, checked
