"""Golden regression corpus: exact miss counts, committed to the repo.

The corpus pins the miss count of every registered policy on a small
deterministic matrix of ``stream x seed x geometry`` cells (the streams
come from :mod:`repro.verify.streams`, the policy kwargs from
:mod:`repro.verify.conformance`, so each entry is fully reproducible from
its key alone).  ``check_golden_corpus`` recomputes every entry and
reports *which* policy/stream/geometry drifted — a behavioural change to
any replacement policy fails conformance with the offender's name, not
just a checksum mismatch.

Regeneration is deliberate and auditable: ``scripts/regen_goldens.py``
rewrites the corpus (with a provenance manifest sidecar recording the
code digest and git revision), and the diff shows exactly which counts
moved.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = [
    "GOLDEN_SCHEMA",
    "DEFAULT_GOLDENS_PATH",
    "golden_matrix",
    "golden_key",
    "compute_golden",
    "compute_goldens",
    "write_golden_corpus",
    "load_golden_corpus",
    "check_golden_corpus",
]

#: Bump when the corpus layout changes.
GOLDEN_SCHEMA = "repro-goldens/1"

#: The committed corpus (kept under tests/ so pytest finds it naturally).
DEFAULT_GOLDENS_PATH = (
    Path(__file__).resolve().parents[3]
    / "tests"
    / "goldens"
    / "conformance_goldens.json"
)

#: Streams every policy is pinned on (the regimes where policies differ
#: most: thrash, skewed reuse, per-set churn).
GOLDEN_STREAMS: Tuple[str, ...] = (
    "cyclic-over-capacity",
    "zipf-hot",
    "adversarial-thrash",
)

#: The base geometry every policy is pinned at, and the 16-way paper
#: geometry for the policies whose published vectors live there.
GOLDEN_GEOMETRY: Tuple[int, int] = (8, 4)
GOLDEN_WIDE_GEOMETRY: Tuple[int, int] = (4, 16)
GOLDEN_WIDE_POLICIES: Tuple[str, ...] = (
    "lru",
    "plru",
    "gippr",
    "dgippr",
    "drrip",
)

GOLDEN_SEED = 0
GOLDEN_N = 1000

#: A golden cell: (policy, stream, seed, num_sets, assoc, n).
Cell = Tuple[str, str, int, int, int, int]


def golden_matrix() -> List[Cell]:
    """The full, ordered list of pinned cells."""
    from ..policies.registry import policy_names

    cells: List[Cell] = []
    num_sets, assoc = GOLDEN_GEOMETRY
    for policy in policy_names():
        for stream in GOLDEN_STREAMS:
            cells.append(
                (policy, stream, GOLDEN_SEED, num_sets, assoc, GOLDEN_N)
            )
    wide_sets, wide_assoc = GOLDEN_WIDE_GEOMETRY
    for policy in GOLDEN_WIDE_POLICIES:
        for stream in GOLDEN_STREAMS:
            cells.append(
                (policy, stream, GOLDEN_SEED, wide_sets, wide_assoc, GOLDEN_N)
            )
    return cells


def golden_key(cell: Cell) -> str:
    policy, stream, seed, num_sets, assoc, n = cell
    return f"{policy}|{stream}|s{seed}|{num_sets}x{assoc}|n{n}"


def compute_golden(cell: Cell) -> int:
    """Miss count for one cell, recomputed from scratch."""
    from ..cache.cache import SetAssociativeCache
    from .conformance import build_policy
    from .streams import generate_stream

    policy_name, stream, seed, num_sets, assoc, n = cell
    accesses = generate_stream(stream, seed, n, num_sets, assoc)
    policy = build_policy(policy_name, num_sets, assoc)
    cache = SetAssociativeCache(
        num_sets, assoc, policy, block_size=1, name="goldens"
    )
    if getattr(policy, "requires_future", False):
        from ..trace.record import Trace, annotate_next_use

        next_use = annotate_next_use(Trace(list(accesses)))
        return sum(
            not cache.access(block, next_use=next_use[i])
            for i, block in enumerate(accesses)
        )
    return sum(not cache.access(block) for block in accesses)


def compute_goldens(
    cells: Optional[List[Cell]] = None,
) -> Dict[str, int]:
    """Recompute the whole corpus (key -> miss count)."""
    if cells is None:
        cells = golden_matrix()
    return {golden_key(cell): compute_golden(cell) for cell in cells}


def write_golden_corpus(
    path: Union[str, Path, None] = None,
    with_manifest: bool = True,
) -> Path:
    """Atomically (re)write the committed corpus, plus its provenance
    manifest sidecar when ``with_manifest`` is set."""
    path = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    entries = compute_goldens()
    payload = {
        "schema": GOLDEN_SCHEMA,
        "seed": GOLDEN_SEED,
        "n": GOLDEN_N,
        "streams": list(GOLDEN_STREAMS),
        "geometries": [list(GOLDEN_GEOMETRY), list(GOLDEN_WIDE_GEOMETRY)],
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    if with_manifest:
        from ..obs.provenance import build_manifest, write_manifest

        write_manifest(
            path,
            build_manifest(
                extra={
                    "goldens": {
                        "schema": GOLDEN_SCHEMA,
                        "entries": len(entries),
                        "seed": GOLDEN_SEED,
                        "n": GOLDEN_N,
                    }
                }
            ),
        )
    return path


def load_golden_corpus(path: Union[str, Path, None] = None) -> dict:
    path = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("schema") != GOLDEN_SCHEMA:
        raise ValueError(
            f"{path}: unknown goldens schema {payload.get('schema')!r}"
        )
    return payload


def check_golden_corpus(
    path: Union[str, Path, None] = None,
) -> Tuple[List[str], int]:
    """Recompute every committed entry and name each drifting cell.

    Returns ``(drift_messages, checked_count)``.  A missing corpus file is
    itself reported as drift (the gate must not silently pass when the
    corpus was deleted); cells present in the current matrix but absent
    from the corpus — or vice versa — are reported too, so adding or
    removing a policy forces a deliberate regeneration.
    """
    target = Path(path) if path is not None else DEFAULT_GOLDENS_PATH
    try:
        payload = load_golden_corpus(target)
    except FileNotFoundError:
        return [f"golden corpus missing: {target}"], 0
    except ValueError as exc:
        return [str(exc)], 0
    committed: Dict[str, int] = dict(payload.get("entries", {}))
    drift: List[str] = []
    checked = 0
    current = {golden_key(cell): cell for cell in golden_matrix()}
    for key, cell in current.items():
        if key not in committed:
            drift.append(f"{key}: not in committed corpus (regen needed)")
            continue
        expected = committed[key]
        actual = compute_golden(cell)
        checked += 1
        if actual != expected:
            drift.append(
                f"{key}: misses {actual} != committed {expected}"
            )
    for key in committed:
        if key not in current:
            drift.append(f"{key}: committed but no longer in the matrix")
    return drift, checked
