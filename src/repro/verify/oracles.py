"""Reference oracles for differential conformance testing.

Two obviously-correct cache models, each mirroring the production
:class:`repro.cache.cache.SetAssociativeCache` *interface contract* (same
set indexing, same cold-fill order, write-allocate, no bypass) but driven
by deliberately naive replacement state:

:class:`LRUStackOracle`
    An explicit recency stack per set — a plain Python list of ways,
    MRU-first.  IPV promotion/insertion is implemented as ``list.pop`` +
    ``list.insert``, which *is* the Section 2.3 shift semantics by
    construction.  This is the ground truth for ``lru``, ``ipv-lru`` and
    ``giplr``.

:class:`PLRUPositionsOracle`
    The positions-decoded model for tree PLRU: it keeps the packed plru
    bits but drives every decision through the *full* position permutation
    (:func:`repro.core.plru.all_positions`), never through the Figure 5
    victim walk or any composed lookup table.  The victim is "the way whose
    decoded position is ``k - 1``", a hit at decoded position ``i`` applies
    ``set_position(state, way, V[i])``, and an insertion applies
    ``set_position(state, way, V[k])`` — Section 3 read literally.  This is
    the ground truth for ``plru``, ``gippr`` and (with a mirrored
    set-dueling selector) ``dgippr``.

Both oracles check their own internal invariants on every access and
expose ``positions(set_index)`` so the differential runner can compare the
*exact* recency permutation against the production policy, not just miss
counts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.dueling import make_selector
from ..core.ipv import IPV, lru_ipv
from ..core.plru import all_positions, set_position
from ..core.vectors import DGIPPR4_WI_VECTORS, GIPPR_WI_VECTOR

__all__ = [
    "OracleCache",
    "LRUStackOracle",
    "PLRUPositionsOracle",
    "OracleDivergenceError",
]


class OracleDivergenceError(AssertionError):
    """The oracle's own invariants broke — a bug in the oracle itself."""


class OracleCache:
    """Shared tag/fill machinery for the reference models.

    Mirrors the production cache exactly where the contract is fixed:
    block-address inputs (``block_size=1``), ``set = block & (num_sets-1)``,
    ``tag = block >> log2(num_sets)``, cold fills take the lowest invalid
    way, full-set misses evict the policy victim, and every miss allocates
    (write-allocate, no bypass).
    """

    def __init__(self, num_sets: int, assoc: int):
        if num_sets < 1 or num_sets & (num_sets - 1):
            raise ValueError(f"num_sets must be a power of two, got {num_sets}")
        if assoc < 1:
            raise ValueError(f"assoc must be positive, got {assoc}")
        self.num_sets = num_sets
        self.assoc = assoc
        self._index_bits = num_sets.bit_length() - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * assoc for _ in range(num_sets)
        ]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- hooks implemented by concrete oracles -------------------------
    def _victim(self, set_index: int) -> int:
        raise NotImplementedError

    def _on_hit(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def _on_miss(self, set_index: int) -> None:
        """Called for every miss, before the victim is chosen."""

    def _on_fill(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def positions(self, set_index: int) -> Optional[List[int]]:
        """Recency position of every way, or ``None`` if undefined."""
        return None

    # -- the access path ------------------------------------------------
    def locate(self, block: int) -> Tuple[int, int]:
        return block & (self.num_sets - 1), block >> self._index_bits

    def access(self, block: int) -> Tuple[bool, Optional[int]]:
        """One access; returns ``(hit, evicted_block_or_None)``."""
        set_index, tag = self.locate(block)
        tags = self._tags[set_index]
        self.accesses += 1
        if tag in tags:
            self.hits += 1
            way = tags.index(tag)
            self._on_hit(set_index, way)
            self._check(set_index)
            return True, None
        self.misses += 1
        self._on_miss(set_index)
        evicted = None
        if None in tags:
            way = tags.index(None)
        else:
            way = self._victim(set_index)
            if not 0 <= way < self.assoc:
                raise OracleDivergenceError(
                    f"oracle victim way {way} out of range"
                )
            self.evictions += 1
            evicted = (tags[way] << self._index_bits) | set_index
        tags[way] = tag
        self._on_fill(set_index, way)
        self._check(set_index)
        return False, evicted

    def run(self, accesses: Sequence[int]) -> int:
        """Run a whole stream; returns the miss count."""
        misses = 0
        for block in accesses:
            hit, _ = self.access(block)
            misses += not hit
        return misses

    def resident_blocks(self, set_index: int) -> set:
        """Set of resident tags in a set (matches ``cache._way_of`` keys)."""
        return {t for t in self._tags[set_index] if t is not None}

    def _check(self, set_index: int) -> None:
        positions = self.positions(set_index)
        if positions is not None and sorted(positions) != list(
            range(self.assoc)
        ):
            raise OracleDivergenceError(
                f"oracle positions not a permutation in set {set_index}: "
                f"{positions}"
            )


class LRUStackOracle(OracleCache):
    """Explicit recency-stack model for true-LRU IPV policies.

    ``order[set]`` lists ways MRU-first; moving a way from stack position
    ``src`` to ``dst`` is ``order.pop(src)`` followed by
    ``order.insert(dst, way)``, which shifts the bystanders by exactly one
    position in the direction Section 2.3 specifies — no index arithmetic
    to get wrong.
    """

    def __init__(self, num_sets: int, assoc: int, ipv: Optional[IPV] = None):
        super().__init__(num_sets, assoc)
        ipv = ipv if ipv is not None else lru_ipv(assoc)
        if ipv.k != assoc:
            raise ValueError(f"IPV is for {ipv.k}-way sets, oracle is {assoc}-way")
        self.ipv = ipv
        # Identity order matches a cold set filled way 0 first, exactly the
        # production RecencyStack initial state.
        self._order: List[List[int]] = [
            list(range(assoc)) for _ in range(num_sets)
        ]

    def _victim(self, set_index: int) -> int:
        return self._order[set_index][-1]

    def _move(self, set_index: int, way: int, dst: int) -> None:
        order = self._order[set_index]
        order.pop(order.index(way))
        order.insert(dst, way)

    def _on_hit(self, set_index: int, way: int) -> None:
        src = self._order[set_index].index(way)
        self._move(set_index, way, self.ipv.promotion(src))

    def _on_fill(self, set_index: int, way: int) -> None:
        self._move(set_index, way, self.ipv.insertion)

    def positions(self, set_index: int) -> List[int]:
        order = self._order[set_index]
        positions = [0] * self.assoc
        for pos, way in enumerate(order):
            positions[way] = pos
        return positions


class PLRUPositionsOracle(OracleCache):
    """Positions-decoded tree-PLRU model (classic PLRU, GIPPR, DGIPPR).

    Every decision goes through the full decoded permutation: the victim is
    found by scanning :func:`all_positions` for position ``k - 1`` (cross-
    checking Figure 7 against the production Figure 5 walk), and every
    transition is a literal Figure 9 ``set_position``.

    For DGIPPR pass several ``ipvs`` plus the selector parameters used by
    the production policy; the oracle then maintains its *own* mirrored
    set-dueling selector, updated in the production hook order (PSEL on
    every miss, vector choice resolved at hit/fill time).
    """

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        ipvs: Optional[Sequence[IPV]] = None,
        leaders_per_policy: Optional[int] = None,
        counter_bits: int = 11,
        seed: int = 0xDEAD,
    ):
        super().__init__(num_sets, assoc)
        if ipvs is None:
            ipvs = [lru_ipv(assoc)]  # classic PLRU: the all-zeros vector
        ipvs = list(ipvs)
        for ipv in ipvs:
            if ipv.k != assoc:
                raise ValueError(
                    f"IPV {ipv.name} is for {ipv.k}-way sets, "
                    f"oracle is {assoc}-way"
                )
        self.ipvs = ipvs
        self.selector = make_selector(
            num_sets, len(ipvs), leaders_per_policy, counter_bits, seed
        )
        self._state: List[int] = [0] * num_sets

    @classmethod
    def for_gippr(
        cls, num_sets: int, assoc: int, ipv: Optional[IPV] = None
    ) -> "PLRUPositionsOracle":
        ipv = ipv if ipv is not None else GIPPR_WI_VECTOR
        return cls(num_sets, assoc, [ipv])

    @classmethod
    def for_dgippr(
        cls,
        num_sets: int,
        assoc: int,
        ipvs: Optional[Sequence[IPV]] = None,
        **selector_kwargs,
    ) -> "PLRUPositionsOracle":
        ipvs = list(ipvs) if ipvs is not None else list(DGIPPR4_WI_VECTORS)
        return cls(num_sets, assoc, ipvs, **selector_kwargs)

    def _active_ipv(self, set_index: int) -> IPV:
        return self.ipvs[self.selector.policy_for_set(set_index)]

    def _victim(self, set_index: int) -> int:
        positions = all_positions(self._state[set_index], self.assoc)
        return positions.index(self.assoc - 1)

    def _on_hit(self, set_index: int, way: int) -> None:
        state = self._state[set_index]
        pos = all_positions(state, self.assoc)[way]
        target = self._active_ipv(set_index).promotion(pos)
        self._state[set_index] = set_position(state, way, target, self.assoc)

    def _on_miss(self, set_index: int) -> None:
        self.selector.record_miss(set_index)

    def _on_fill(self, set_index: int, way: int) -> None:
        ipv = self._active_ipv(set_index)
        self._state[set_index] = set_position(
            self._state[set_index], way, ipv.insertion, self.assoc
        )

    def positions(self, set_index: int) -> List[int]:
        return all_positions(self._state[set_index], self.assoc)
