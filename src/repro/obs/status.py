"""Live run status: atomically published ``run-status.json`` + watcher.

Long runs (a 29-benchmark matrix, a 12-generation GA) used to be black
boxes: the only signals were a throttled stderr line in the launching
terminal and the eventual result.  A :class:`StatusPublisher` gives any
runner a tiny, atomically replaced JSON file describing the run *right
now* — phase, jobs done/total, throughput, ETA, cache hit rate, worker
liveness, best-fitness-so-far — which

* ``repro obs watch run-status.json`` renders as a refreshing terminal
  view from any other shell (or over NFS from any other machine), and
* survives completion: the final update is written with ``final: true``
  and stays on disk as a post-mortem record of how the run ended.

Writes are atomic (temp + ``os.replace``), throttled (default 0.2 s so a
fast job loop cannot turn the status file into an I/O hot spot), and
failure-tolerant (an unwritable status path logs a warning once and
degrades to a no-op — observability must never kill the run).
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "STATUS_SCHEMA",
    "StatusPublisher",
    "read_status",
    "render_status",
    "render_top",
    "watch",
]

logger = logging.getLogger(__name__)

#: Bump when the status payload layout changes.
STATUS_SCHEMA = "repro-status/1"

#: Environment variable runners consult for a default status path.
STATUS_PATH_ENV = "REPRO_STATUS_PATH"


def default_status_path() -> Optional[Path]:
    """``$REPRO_STATUS_PATH`` as a Path, or ``None`` (status disabled)."""
    env = os.environ.get(STATUS_PATH_ENV)
    return Path(env).expanduser() if env else None


class StatusPublisher:
    """Atomically publishes a run's live status to one JSON file.

    Fields passed to :meth:`update` are *merged* over the previous state,
    so runners can update throughput every job but the phase only on
    transitions.  ``finalize`` forces a write with ``final: true``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        kind: str,
        run_id: Optional[str] = None,
        min_interval: float = 0.2,
    ):
        self.path = Path(path)
        self.min_interval = min_interval
        self.writes = 0
        self._warned = False
        self._last_write = 0.0
        self._state = {
            "schema": STATUS_SCHEMA,
            "kind": kind,
            "run_id": run_id or f"{kind}-{os.getpid()}-{int(time.time())}",
            "pid": os.getpid(),
            "started_at": time.time(),
            "updated_at": time.time(),
            "phase": "starting",
            "final": False,
        }

    # ------------------------------------------------------------------
    def update(self, force: bool = False, **fields) -> bool:
        """Merge ``fields`` and (throttled) publish; returns write-happened."""
        self._state.update(fields)
        now = time.monotonic()
        if not force and now - self._last_write < self.min_interval:
            return False
        self._last_write = now
        return self._write()

    def finalize(self, **fields) -> bool:
        """Force-write the terminal state (survives run completion)."""
        self._state.update(fields)
        self._state["final"] = True
        self._state["finished_at"] = time.time()
        return self._write()

    # ------------------------------------------------------------------
    def _write(self) -> bool:
        self._state["updated_at"] = time.time()
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(self._state, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                logger.warning("could not publish run status to %s: %s",
                               self.path, exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.writes += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StatusPublisher({self.path}, {self.writes} writes)"


# ----------------------------------------------------------------------
# Reader / renderer (the ``repro obs watch`` backend).
# ----------------------------------------------------------------------
def read_status(path: Union[str, Path]) -> Optional[dict]:
    """Load a status file; ``None`` if missing/torn (transient states)."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != STATUS_SCHEMA:
        return None
    return payload


def _fmt_duration(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


def _bar(fraction: float, width: int = 30) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


def render_status(status: dict, now: Optional[float] = None) -> str:
    """Multi-line terminal rendering of one status snapshot."""
    now = time.time() if now is None else now
    lines = []
    final = status.get("final", False)
    state = "FINISHED" if final else "running"
    lines.append(
        f"{status.get('kind', 'run')} {status.get('run_id', '?')} "
        f"[{state}]  phase: {status.get('phase', '?')}"
    )
    started = status.get("started_at")
    if started:
        end = status.get("finished_at", now)
        lines.append(f"  elapsed   {_fmt_duration(end - started)}")
    done, total = status.get("jobs_done"), status.get("jobs_total")
    if done is not None and total:
        fraction = done / total
        lines.append(
            f"  progress  [{_bar(fraction)}] {done}/{total} ({fraction:.0%})"
        )
    throughput = status.get("throughput")
    if throughput is not None:
        unit = status.get("throughput_unit", "jobs/s")
        lines.append(f"  rate      {throughput:.2f} {unit}")
    eta = status.get("eta_sec")
    if eta is not None and not final:
        lines.append(f"  eta       {_fmt_duration(eta)}")
    hit_rate = status.get("cache_hit_rate")
    if hit_rate is not None:
        lines.append(f"  cache     {hit_rate:.0%} hit rate")
    best = status.get("best_fitness")
    if best is not None:
        lines.append(f"  best      {best:.4f} fitness so far")
    median = status.get("fitness_median")
    if median is not None:
        p90 = status.get("fitness_p90")
        line = f"  fitness   median {median:.4f}"
        if p90 is not None:
            line += f", p90 {p90:.4f}"
        lines.append(line)
    unique = status.get("unique_fraction")
    if unique is not None:
        lines.append(f"  diversity {unique:.0%} unique genotypes")
    eval_rate = status.get("eval_per_sec")
    if eval_rate is not None:
        lines.append(f"  evals     {eval_rate:.1f}/s last generation")
    workers = status.get("workers")
    if isinstance(workers, dict) and workers:
        alive = sum(1 for w in workers.values() if w.get("alive", True))
        stalled = [name for name, w in workers.items() if w.get("stalled")]
        line = f"  workers   {alive}/{len(workers)} alive"
        if stalled:
            line += f", STALLED: {', '.join(sorted(stalled))}"
        lines.append(line)
    updated = status.get("updated_at")
    if updated is not None:
        age = now - updated
        stale = "" if final or age < 15 else "  ** stale? **"
        lines.append(f"  updated   {_fmt_duration(age)} ago{stale}")
    return "\n".join(lines)


def _fmt_rate(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M/s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k/s"
    return f"{value:.1f}/s"


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.0f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_top(status: dict, now: Optional[float] = None) -> str:
    """Serving dashboard view: windows, percentiles, shards, drift, SLO.

    The ``repro obs top`` backend.  Renders the ``serving`` section a
    telemetry-enabled ``repro serve`` publishes into ``run-status.json``;
    falls back to :func:`render_status` when the section is absent (so
    pointing ``obs top`` at a GA or matrix run still shows something).
    """
    serving = status.get("serving")
    if not isinstance(serving, dict):
        return render_status(status, now=now)
    lines = [render_status(status, now=now)]
    latency = serving.get("latency") or {}
    if latency:
        lines.append(
            "  latency   "
            + "  ".join(
                f"{q} {_fmt_latency(latency.get(q))}"
                for q in ("p50", "p90", "p99", "p99_9")
                if q in latency
            )
            + " (amortized/access)"
        )
    windows = serving.get("windows") or []
    for window in windows[-4:]:
        hit_rate = window.get("hit_rate")
        shed_ratio = window.get("shed_ratio")
        hit = f"{hit_rate:.1%}" if hit_rate is not None else "-"
        shed = f"{shed_ratio:.1%}" if shed_ratio is not None else "-"
        lines.append(
            f"  window    #{window.get('index', '?')}  hit {hit}  "
            f"tp {_fmt_rate(window.get('throughput'))}  shed {shed}  "
            f"q {window.get('queue_depth', 0)}"
        )
    shards = serving.get("shards") or []
    if shards:
        parts = []
        for shard in shards:
            parts.append(
                f"{shard.get('shard', '?')}: "
                f"p99 {_fmt_latency(shard.get('p99'))} "
                f"q{shard.get('queue_depth', 0)}"
            )
        lines.append("  shards    " + " | ".join(parts))
    drift = serving.get("drift") or {}
    events = drift.get("events") or []
    if events:
        last = events[-1]
        lines.append(
            f"  drift     {len(events)} event(s); last: "
            f"{last.get('series', '?')} {last.get('direction', '?')} "
            f"@window {last.get('window_index', '?')}"
        )
    else:
        lines.append("  drift     none")
    slo = serving.get("slo")
    if isinstance(slo, dict):
        burn = slo.get("burn_rates") or {}
        parts = []
        for objective in sorted(burn):
            rates = burn[objective]
            parts.append(
                f"{objective} {rates.get('short', 0.0):.2f}/"
                f"{rates.get('long', 0.0):.2f}"
            )
        verdict = "OK" if slo.get("ok", True) else "VIOLATED"
        lines.append(
            "  slo       " + (" | ".join(parts) if parts else "-")
            + f"  [{verdict}]"
        )
    port = serving.get("metrics_port")
    if port:
        lines.append(f"  scrape    http://127.0.0.1:{port}/metrics")
    return "\n".join(lines)


def watch(
    path: Union[str, Path],
    interval: float = 1.0,
    iterations: Optional[int] = None,
    stream=None,
    clear: bool = True,
    render=None,
    max_interval: float = 5.0,
) -> int:
    """Refreshing terminal view of a status file; the CLI backend.

    Tolerates a missing or torn snapshot mid-run: the last good snapshot
    stays on screen under a ``stale since …`` banner, and the poll
    interval backs off (doubling up to ``max_interval``) until the file
    reads cleanly again.  ``render`` swaps the snapshot renderer
    (:func:`render_top` for ``repro obs top``).

    Returns 0 once the status goes ``final`` (or after ``iterations``
    refreshes), 1 if the file never became readable.
    """
    stream = stream if stream is not None else sys.stdout
    render = render if render is not None else render_status
    last_good: Optional[dict] = None
    stale_since: Optional[float] = None
    delay = interval
    count = 0
    while True:
        status = read_status(path)
        if status is not None:
            last_good = status
            stale_since = None
            delay = interval
            if clear and getattr(stream, "isatty", lambda: False)():
                stream.write("\x1b[2J\x1b[H")
            stream.write(render(status) + "\n")
            stream.flush()
            if status.get("final"):
                return 0
        else:
            now = time.time()
            if stale_since is None:
                stale_since = now
            clock = time.strftime("%H:%M:%S", time.localtime(stale_since))
            if clear and getattr(stream, "isatty", lambda: False)():
                stream.write("\x1b[2J\x1b[H")
            if last_good is not None:
                stream.write(render(last_good) + "\n")
                stream.write(
                    f"  ** status unreadable — stale since {clock} "
                    f"({_fmt_duration(now - stale_since)} ago); "
                    f"retrying every {delay:.1f}s **\n"
                )
            else:
                stream.write(
                    f"waiting for {path} (unreadable since {clock}) ...\n"
                )
            stream.flush()
            delay = min(delay * 2.0, max_interval)
        count += 1
        if iterations is not None and count >= iterations:
            return 0 if last_good is not None else 1
        time.sleep(delay)
