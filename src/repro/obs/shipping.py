"""Cross-process telemetry shipping: spool files, merge, watchdog.

Multi-process runs (the matrix runner's ``ProcessPoolExecutor``, the GA's
``multiprocessing.Pool``) used to lose everything a worker measured: its
metrics registry, its span tree and its kernel compile counts died with
the process.  This module ships them to the parent through a **spool
directory**:

* Each worker owns one snapshot file, ``worker-<id>.json``, holding the
  *cumulative* state of its registry/recorder.  Every publish atomically
  replaces the file (temp + ``os.replace``), so the parent never reads a
  torn snapshot and a crashed worker leaves its last complete one behind
  — shipping is crash-tolerant by construction.
* Each worker also touches a tiny heartbeat file, ``hb-<id>.json``, at
  the *start* of every job, so liveness is visible even mid-job.
* The parent merges snapshots with :func:`merge_spool`: counters and
  histograms **sum** across workers, gauges sum too (worker gauges are
  per-process totals like kernel compiles, for which the fleet-wide sum
  is the meaningful aggregate).  The merged registry therefore equals
  the sum of the worker deltas — nothing is silently lost.
* A parent-side :class:`Watchdog` compares heartbeat ages against a
  multiple of the median job time and flags stalled workers as a
  warning (log + counter) instead of letting the run hang silently.

Unreadable spool files (torn JSON from a worker killed mid-``os.replace``
on exotic filesystems, stray ``.tmp`` files, schema mismatches) are
counted in ``SpoolState.corrupt`` and skipped — a crashed worker must
never take the parent's telemetry down with it.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import Histogram, MetricsRegistry
from .spans import SpanRecorder

__all__ = [
    "SPOOL_SCHEMA",
    "SpoolState",
    "SpoolWriter",
    "Watchdog",
    "merge_registry_payload",
    "merge_spool",
    "read_spool",
]

logger = logging.getLogger(__name__)

#: Bump when the spool payload layout changes.
SPOOL_SCHEMA = "repro-spool/1"


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp, path)


class SpoolWriter:
    """Worker-side publisher of metrics/span snapshots and heartbeats.

    Parameters
    ----------
    spool_dir:
        Directory shared with the parent (created if missing).
    worker_id:
        Stable identity for this worker's files; defaults to ``w<pid>``.
    min_interval:
        Throttle for :meth:`publish` (``force=True`` bypasses it).  The
        GA publishes per evaluation with a throttle; the matrix runner
        publishes per job unthrottled (jobs are much coarser).
    """

    def __init__(
        self,
        spool_dir: Union[str, Path],
        worker_id: Optional[str] = None,
        min_interval: float = 0.0,
    ):
        self.root = Path(spool_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.worker_id = worker_id or f"w{os.getpid()}"
        self.min_interval = min_interval
        self.publishes = 0
        self.heartbeats = 0
        self._last_publish = 0.0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def snapshot_path(self) -> Path:
        return self.root / f"worker-{self.worker_id}.json"

    @property
    def heartbeat_path(self) -> Path:
        return self.root / f"hb-{self.worker_id}.json"

    # ------------------------------------------------------------------
    def heartbeat(self, job: Optional[object] = None) -> None:
        """Record liveness *now* (called at job start; cheap, atomic).

        Never raises: a full disk must not kill the job itself.
        """
        payload = {
            "schema": SPOOL_SCHEMA,
            "kind": "heartbeat",
            "worker": self.worker_id,
            "pid": os.getpid(),
            "ts": time.time(),
            "job": job,
        }
        try:
            _atomic_write_json(self.heartbeat_path, payload)
            self.heartbeats += 1
        except OSError as exc:  # pragma: no cover - unwritable spool
            logger.warning("heartbeat write failed: %s", exc)

    def publish(
        self,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[SpanRecorder] = None,
        jobs_done: Optional[int] = None,
        force: bool = True,
    ) -> bool:
        """Atomically replace this worker's cumulative snapshot.

        Returns whether a write happened (throttled calls return False).
        Never raises on I/O errors.
        """
        now = time.monotonic()
        with self._lock:
            if not force and now - self._last_publish < self.min_interval:
                return False
            self._last_publish = now
        payload = {
            "schema": SPOOL_SCHEMA,
            "kind": "snapshot",
            "worker": self.worker_id,
            "pid": os.getpid(),
            "ts": time.time(),
            "jobs_done": jobs_done,
            "metrics": registry.to_json() if registry is not None else None,
            "spans": recorder.payload() if recorder is not None else None,
        }
        try:
            _atomic_write_json(self.snapshot_path, payload)
        except OSError as exc:  # pragma: no cover - unwritable spool
            logger.warning("spool publish failed: %s", exc)
            return False
        self.publishes += 1
        return True


# ----------------------------------------------------------------------
# Parent side: read + merge.
# ----------------------------------------------------------------------
class SpoolState:
    """Everything the parent learned from one spool scan."""

    def __init__(self):
        self.snapshots: Dict[str, dict] = {}
        self.heartbeats: Dict[str, float] = {}
        self.corrupt = 0
        self.merged_records = 0

    @property
    def workers(self) -> List[str]:
        return sorted(set(self.snapshots) | set(self.heartbeats))

    def worker_pids(self) -> List[int]:
        return sorted({
            s["pid"] for s in self.snapshots.values() if "pid" in s
        })

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpoolState({len(self.snapshots)} snapshots, "
                f"{len(self.heartbeats)} heartbeats, corrupt={self.corrupt})")


def _load_json(path: Path) -> Optional[dict]:
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("schema") != SPOOL_SCHEMA:
        return None
    return payload


def read_spool(spool_dir: Union[str, Path]) -> SpoolState:
    """Scan a spool directory; skip (and count) unreadable files."""
    state = SpoolState()
    root = Path(spool_dir)
    if not root.is_dir():
        return state
    for path in sorted(root.glob("worker-*.json")):
        payload = _load_json(path)
        if payload is None or payload.get("kind") != "snapshot":
            state.corrupt += 1
            continue
        state.snapshots[str(payload.get("worker", path.stem))] = payload
    for path in sorted(root.glob("hb-*.json")):
        payload = _load_json(path)
        if payload is None or payload.get("kind") != "heartbeat":
            state.corrupt += 1
            continue
        worker = str(payload.get("worker", path.stem))
        state.heartbeats[worker] = float(payload.get("ts", 0.0))
    # A snapshot is also proof of life at its write time.
    for worker, snapshot in state.snapshots.items():
        ts = float(snapshot.get("ts", 0.0))
        state.heartbeats[worker] = max(state.heartbeats.get(worker, 0.0), ts)
    return state


def merge_registry_payload(
    registry: MetricsRegistry, payload: dict
) -> int:
    """Fold one ``MetricsRegistry.to_json()`` snapshot into ``registry``.

    Counters/gauges add their values; histograms add bucket counts,
    totals and sums (bounds must match).  Returns the number of series
    merged.  Instrument names keep the worker's fully qualified name, so
    a namespaced parent registry merges flat worker names unchanged.
    """
    merged = 0
    for name, entry in payload.items():
        kind = entry.get("type")
        help_text = entry.get("help", "")
        for series in entry.get("series", ()):
            labels = dict(series.get("labels") or {}) or None
            value = series.get("value")
            if kind == "counter":
                registry.counter(name, help_text, labels).inc(int(value))
            elif kind == "gauge":
                registry.gauge(name, help_text, labels).inc(float(value))
            elif kind == "histogram":
                hist = registry.histogram(
                    name, value["bounds"], help_text, labels
                )
                hist.merge_raw(
                    value["bucket_counts"], value["count"], value["sum"],
                    bounds=value["bounds"],
                )
            else:
                raise ValueError(f"unknown instrument type {kind!r} for {name!r}")
            merged += 1
    return merged


def merge_spool(
    spool_dir: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[SpanRecorder] = None,
) -> SpoolState:
    """Read a spool and merge every snapshot into ``registry``/``recorder``.

    Safe to call once per run: snapshots are cumulative per worker, so a
    single merge of each worker's latest file yields exact totals.
    """
    state = read_spool(spool_dir)
    for snapshot in state.snapshots.values():
        metrics = snapshot.get("metrics")
        if registry is not None and metrics:
            merge_registry_payload(registry, metrics)
        spans = snapshot.get("spans")
        if recorder is not None and spans:
            state.merged_records += recorder.merge_payload(spans)
    return state


# ----------------------------------------------------------------------
# Watchdog.
# ----------------------------------------------------------------------
class Watchdog:
    """Flags workers whose heartbeat is older than N× the median job time.

    ``check`` is cheap and idempotent: a worker is warned about once per
    stall (log + ``repro_shipping_stalled_workers_total`` counter) and
    un-flagged if its heartbeat recovers, so a slow-but-alive worker that
    catches up stops being reported.
    """

    def __init__(
        self,
        factor: float = 10.0,
        floor_sec: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        if factor <= 0 or floor_sec <= 0:
            raise ValueError("watchdog factor and floor must be positive")
        self.factor = factor
        self.floor_sec = floor_sec
        self.flagged: Dict[str, float] = {}
        self._stalls = None
        if registry is not None:
            self._stalls = registry.counter(
                "repro_shipping_stalled_workers_total",
                "Workers flagged by the heartbeat watchdog",
            )

    def threshold(self, median_job_sec: float) -> float:
        return max(self.floor_sec, self.factor * max(0.0, median_job_sec))

    def check(
        self,
        heartbeats: Dict[str, float],
        median_job_sec: float,
        now: Optional[float] = None,
    ) -> List[str]:
        """Return the workers that just *became* stalled (new flags only)."""
        now = time.time() if now is None else now
        limit = self.threshold(median_job_sec)
        newly: List[str] = []
        for worker, last_seen in heartbeats.items():
            age = now - last_seen
            if age > limit:
                if worker not in self.flagged:
                    self.flagged[worker] = last_seen
                    newly.append(worker)
                    if self._stalls is not None:
                        self._stalls.inc()
                    logger.warning(
                        "worker %s stalled: no heartbeat for %.1fs "
                        "(threshold %.1fs = max(%.1f, %.1fx median job %.2fs))",
                        worker, age, limit, self.floor_sec, self.factor,
                        median_job_sec,
                    )
            elif worker in self.flagged:
                del self.flagged[worker]
                logger.info("worker %s recovered (heartbeat %.1fs ago)",
                            worker, age)
        return newly
