"""Central logging configuration for the ``repro`` CLI and library.

Library modules follow the standard recipe — module-level
``logging.getLogger(__name__)`` and no handlers — so embedding
applications keep full control.  The CLI calls :func:`configure_logging`
once at startup; the default level is ``INFO`` so the informational lines
the tools always printed (runner metrics, cache summaries) keep appearing,
while ``-v`` raises verbosity to ``DEBUG`` and ``--log-level`` sets any
explicit level.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

__all__ = ["configure_logging", "verbosity_to_level"]

_FORMAT = "[%(levelname).1s %(name)s] %(message)s"
_DEBUG_FORMAT = "[%(levelname).1s %(asctime)s %(name)s] %(message)s"


def verbosity_to_level(verbose: int) -> int:
    """Map ``-v`` counts onto logging levels (0 → INFO, 1+ → DEBUG)."""
    return logging.DEBUG if verbose >= 1 else logging.INFO


def configure_logging(
    level: Union[int, str, None] = None,
    verbose: int = 0,
    stream=None,
) -> logging.Logger:
    """Install one stderr handler on the ``repro`` logger.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking duplicates.  Returns the configured package logger.
    """
    if level is None:
        resolved = verbosity_to_level(verbose)
    elif isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
    else:
        resolved = level

    logger = logging.getLogger("repro")
    for handler in [h for h in logger.handlers
                    if getattr(h, "_repro_cli", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_cli = True  # type: ignore[attr-defined]
    fmt = _DEBUG_FORMAT if resolved <= logging.DEBUG else _FORMAT
    handler.setFormatter(logging.Formatter(fmt))
    logger.addHandler(handler)
    logger.setLevel(resolved)
    logger.propagate = False
    return logger
