"""Run provenance manifests.

Every cached simulation result and every generated report can carry a
sidecar ``*.manifest.json`` answering "what exactly produced this number?":
the canonical experiment configuration and its hash, the policy and its
kwargs, the seed, a digest of the simulator source
(:func:`repro.eval.parallel.code_version`), the git revision, host,
platform and wall time.  Manifests are plain JSON — diffable, greppable,
and stable across processes.
"""

from __future__ import annotations

import getpass
import hashlib
import json
import logging
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "config_hash",
    "git_revision",
    "manifest_path_for",
    "write_manifest",
]

logger = logging.getLogger(__name__)

#: Bump when the manifest layout changes.
MANIFEST_SCHEMA = "repro-manifest/1"

_git_rev_memo: Optional[str] = None

#: Set after the first resolution so *spawned worker processes* inherit
#: the answer through their environment instead of each paying a
#: ``git rev-parse`` subprocess on their first manifest write (a matrix
#: run fans out hundreds of manifest-writing jobs).
GIT_REVISION_ENV = "REPRO_GIT_REVISION"


def git_revision() -> str:
    """The repository HEAD revision, or ``"unknown"`` outside a checkout.

    Cached per process (one subprocess spawn, ever) and propagated to
    child processes via ``$REPRO_GIT_REVISION``; never raises.
    """
    global _git_rev_memo
    if _git_rev_memo is not None:
        return _git_rev_memo
    env = os.environ.get(GIT_REVISION_ENV)
    if env:
        _git_rev_memo = env
        return _git_rev_memo
    root = Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=5,
        )
        rev = proc.stdout.strip() if proc.returncode == 0 else ""
    except (OSError, subprocess.SubprocessError):
        rev = ""
    _git_rev_memo = rev or "unknown"
    os.environ.setdefault(GIT_REVISION_ENV, _git_rev_memo)
    return _git_rev_memo


def _reset_git_revision_memo() -> None:
    """Test hook: forget the per-process memo (and the env propagation)."""
    global _git_rev_memo
    _git_rev_memo = None
    os.environ.pop(GIT_REVISION_ENV, None)


def _canonical_config(config) -> object:
    """Canonical JSON-ready form of a config (reuses the cache-key logic)."""
    if config is None:
        return None
    from ..eval.parallel import _canonical  # lazy: avoid import cycles

    return _canonical(config)


def config_hash(config) -> Optional[str]:
    """Stable short hash of an :class:`ExperimentConfig` (or ``None``)."""
    canonical = _canonical_config(config)
    if canonical is None:
        return None
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def build_manifest(
    config=None,
    policy: Optional[str] = None,
    policy_kwargs: Optional[dict] = None,
    seed: Optional[int] = None,
    wall_time_sec: Optional[float] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a provenance manifest dict.

    ``extra`` entries are merged at the top level (benchmark, simpoint,
    cache key, output paths, ...); they must not collide with the standard
    fields.

    The ``kernels`` field records the transition-table kernel provenance
    (:func:`repro.kernels.kernel_provenance`): whether the process ran on
    precomputed LUTs or reference bit-walks, compile counts and compile
    cache behaviour — enough to explain perf differences between runs.
    """
    from ..engine.columnar import columnar_config  # lazy: numpy-free knobs
    from ..eval.parallel import _canonical, code_version  # lazy import
    from ..kernels import kernel_provenance  # lazy: avoid import cycles

    if seed is None and config is not None:
        seed = getattr(config, "seed", None)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "host": socket.gethostname(),
        "user": _safe_user(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "pid": os.getpid(),
        "argv": list(sys.argv),
        "code_version": code_version(),
        "git_revision": git_revision(),
        "config": _canonical_config(config),
        "config_hash": config_hash(config),
        "policy": policy,
        "policy_kwargs": _canonical(dict(policy_kwargs or {})),
        "seed": seed,
        "wall_time_sec": wall_time_sec,
        "kernels": kernel_provenance(),
        "columnar": columnar_config(),
    }
    if extra:
        for key, value in extra.items():
            if key in manifest:
                raise ValueError(f"extra field {key!r} collides with manifest")
            manifest[key] = value
    return manifest


def _safe_user() -> str:
    try:
        return getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - no passwd entry
        return "unknown"


def manifest_path_for(path: Union[str, Path]) -> Path:
    """Sidecar manifest path for an artifact (``x.json`` → ``x.manifest.json``)."""
    path = Path(path)
    suffix = path.suffix
    if suffix == ".json" and path.name.endswith(".manifest.json"):
        return path
    stem = path.name[: -len(suffix)] if suffix else path.name
    return path.with_name(f"{stem}.manifest.json")


def write_manifest(path: Union[str, Path], manifest: dict) -> Path:
    """Atomically write ``manifest`` as the sidecar of ``path``.

    Returns the manifest path.  Failures are logged, not raised — a run
    must never die because its provenance record could not be written.
    """
    target = manifest_path_for(path)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, target)
    except OSError as exc:  # pragma: no cover - unwritable target
        logger.warning("could not write manifest %s: %s", target, exc)
        try:
            tmp.unlink()
        except OSError:
            pass
    return target
