"""Disabled-tracing overhead budget.

The observability layer's contract is that a cache with **no tracer
attached** pays only one ``is not None`` test per access.  This module
measures that cost empirically: :class:`_UninstrumentedCache` overrides
``access`` with a copy of the pre-observability hot path (no tracer test
at all), and :func:`disabled_overhead_ratio` times both against the same
trace, returning ``instrumented / uninstrumented`` wall time (min over
repeats, which is robust to scheduler noise).

``make smoke-obs`` asserts the ratio stays within the 5 % budget; a unit
test additionally asserts both paths produce identical statistics, so the
reference copy cannot silently rot.
"""

from __future__ import annotations

import time
from typing import Optional

from ..cache.cache import SetAssociativeCache

__all__ = [
    "disabled_overhead_ratio",
    "measure_counters_overhead",
    "measure_overhead",
]


class _UninstrumentedCache(SetAssociativeCache):
    """Reference cache whose ``access`` predates the tracer hook.

    Byte-for-byte the original hot path: no ``self._tracer`` test.  Kept
    here (not in tests) so the smoke target and the unit tests share one
    ground truth.
    """

    def access(
        self,
        address: int,
        pc: int = 0,
        is_write: bool = False,
        next_use: Optional[int] = None,
    ) -> bool:
        set_index, tag = self.locate(address)
        ctx = self._ctx
        ctx.pc = pc
        ctx.is_write = is_write
        ctx.next_use = next_use
        ctx.access_index += 1
        ctx.block = address >> self._offset_bits

        stats = self.stats
        stats.accesses += 1
        way_of = self._way_of[set_index]
        way = way_of.get(tag)
        if way is not None:
            stats.hits += 1
            if is_write:
                self._dirty[set_index][way] = True
            self.policy.on_hit(set_index, way, ctx)
            return True

        stats.misses += 1
        self.policy.on_miss(set_index, ctx)
        tags = self._tags[set_index]
        try:
            way = tags.index(None)
        except ValueError:
            if self.policy.should_bypass(set_index, ctx):
                stats.bypasses += 1
                return False
            way = self.policy.victim(set_index, ctx)
            if not 0 <= way < self.assoc:
                raise RuntimeError(
                    f"{self.policy.name} returned invalid victim way {way}"
                )
            self.policy.on_evict(set_index, way, ctx)
            stats.evictions += 1
            if self._dirty[set_index][way]:
                stats.writebacks += 1
            del way_of[tags[way]]
        tags[way] = tag
        way_of[tag] = way
        self._dirty[set_index][way] = is_write
        self.policy.on_fill(set_index, way, ctx)
        return False


def _build(kind, num_sets: int, assoc: int, policy_name: str):
    from ..policies.registry import make_policy

    policy = make_policy(policy_name, num_sets, assoc)
    return kind(num_sets, assoc, policy, block_size=1, name="overhead-probe")


def _addresses(n: int, num_sets: int, assoc: int, seed: int = 7):
    """A deterministic mixed hit/miss address stream (no numpy needed)."""
    footprint = num_sets * assoc * 2  # ~50% capacity pressure
    out = []
    state = seed or 1
    for _ in range(n):
        # xorshift32: cheap, deterministic, good enough spread.
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        out.append(state % footprint)
    return out


def _time_run(cache, addresses) -> float:
    access = cache.access
    started = time.perf_counter()
    for address in addresses:
        access(address)
    return time.perf_counter() - started


def measure_overhead(
    accesses: int = 120_000,
    num_sets: int = 64,
    assoc: int = 16,
    repeats: int = 5,
    policy: str = "plru",
):
    """Return ``(instrumented_sec, uninstrumented_sec, ratio, stats_match)``.

    Runs are interleaved (A/B per repeat) and the minimum per variant is
    taken, which cancels most machine noise.  ``stats_match`` confirms the
    instrumented tracer-disabled path and the reference path simulated the
    exact same run.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    addresses = _addresses(accesses, num_sets, assoc)
    best_inst = float("inf")
    best_ref = float("inf")
    inst_snapshot = ref_snapshot = None

    def counters(cache):
        s = cache.stats
        return (s.accesses, s.hits, s.misses, s.evictions, s.writebacks,
                s.bypasses)

    for _ in range(repeats):
        inst = _build(SetAssociativeCache, num_sets, assoc, policy)
        ref = _build(_UninstrumentedCache, num_sets, assoc, policy)
        best_inst = min(best_inst, _time_run(inst, addresses))
        best_ref = min(best_ref, _time_run(ref, addresses))
        inst_snapshot = counters(inst)
        ref_snapshot = counters(ref)
    ratio = best_inst / best_ref if best_ref > 0 else float("inf")
    return best_inst, best_ref, ratio, inst_snapshot == ref_snapshot


def disabled_overhead_ratio(
    accesses: int = 120_000,
    num_sets: int = 64,
    assoc: int = 16,
    repeats: int = 5,
    policy: str = "plru",
) -> float:
    """Tracing-disabled slowdown factor (1.0 = free; budget is 1.05)."""
    _, _, ratio, stats_match = measure_overhead(
        accesses, num_sets, assoc, repeats, policy
    )
    if not stats_match:
        raise AssertionError(
            "instrumented and reference caches diverged — the "
            "_UninstrumentedCache copy of the hot path is stale"
        )
    return ratio


def measure_counters_overhead(
    accesses: int = 200_000,
    num_sets: int = 64,
    assoc: int = 16,
    lanes: int = 4,
    repeats: int = 5,
):
    """Return ``(plain_sec, counters_sec, ratio, misses_match)``.

    Applied to the columnar engine's ``counters=True`` accumulation over
    one shared :class:`~repro.engine.columnar.ColumnarTrace`, plus a
    bit-equality check that turning counters on changed no miss count.

    Measurement discipline differs from :func:`measure_overhead` in two
    ways, both because the numpy runs are memory-bound and the effect
    being measured is a few percent: timing uses ``process_time`` (CPU
    seconds — the budget is about the *compute* the counter path adds,
    and wall clock on a shared box swings more than the effect), and the
    reported ratio is the **minimum of the per-round paired ratios**
    ``counters_i / plain_i``.  Each round times the two variants back to
    back, so slow phases (cache contention, frequency shifts) hit both
    sides of a pair roughly equally and cancel in the ratio; the min
    over rounds is then the cleanest-round estimate of the true cost.
    ``make smoke-analytics`` holds it to the same 5 % budget as disabled
    tracing.  Engine imports are lazy so this module stays importable
    without numpy; callers should gate on
    :func:`repro.engine.columnar.columnar_supported`.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    from ..engine.columnar import BatchSimulator, ColumnarTrace

    addresses = _addresses(accesses, num_sets, assoc)
    trace = ColumnarTrace(addresses, num_sets)
    population = []
    for lane in range(lanes):
        entries = [(i * (lane + 1)) % assoc for i in range(assoc)]
        population.append(entries + [lane % assoc])
    simulator = BatchSimulator(num_sets, assoc, population)
    # Untimed warmup pass per variant: first-call numpy/table setup must
    # not be billed to either side.
    plain = simulator.run(trace)
    with_counters = simulator.run(trace, counters=True)
    misses_match = bool((plain == with_counters).all())
    best_plain = float("inf")
    best_counters = float("inf")
    ratio = float("inf")
    for _ in range(repeats):
        started = time.process_time()
        simulator.run(trace)
        plain_sec = time.process_time() - started
        started = time.process_time()
        simulator.run(trace, counters=True)
        counters_sec = time.process_time() - started
        best_plain = min(best_plain, plain_sec)
        best_counters = min(best_counters, counters_sec)
        if plain_sec > 0:
            ratio = min(ratio, counters_sec / plain_sec)
    return best_plain, best_counters, ratio, misses_match
