"""The event tracer: turns simulator hook-points into structured events.

A :class:`Tracer` is attached to a :class:`repro.cache.cache.
SetAssociativeCache` (``cache.attach_tracer(tracer)``) or passed to
:func:`repro.eval.runner.run_trace`.  When no tracer is attached the cache
hot path pays exactly one ``is not None`` test per access; everything in
this module runs only on the traced path.

Besides forwarding events to its sink, a tracer can feed a
:class:`~repro.obs.metrics.MetricsRegistry`:

* ``repro_trace_events_total{kind=...}`` counters per event kind;
* ``repro_insertion_position`` histogram of chosen insertion positions;
* ``repro_promotion_distance`` histogram of ``pos_before - pos_after``
  on promotions (negative = demotion);
* ``repro_psel_value{counter=...}`` gauges of the latest sampled
  saturating-counter values (plus ``repro_psel_normalized``).

PSEL timelines are the stream of ``psel_sample`` events themselves; set
``psel_every=N`` to sample every N accesses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from .events import TraceEvent
from .metrics import MetricsRegistry
from .sinks import ListSink, SamplingFilter

__all__ = ["Tracer", "replay_counts", "registry_from_events"]


def _psel_counters(selector) -> Dict[str, object]:
    """Name → SaturatingCounter map for any known selector shape."""
    out: Dict[str, object] = {}
    for name in ("psel", "pair01", "pair23", "meta"):
        counter = getattr(selector, name, None)
        if counter is not None and hasattr(counter, "value"):
            out[name] = counter
    levels = getattr(selector, "levels", None)
    if levels:  # BracketSelector: levels[l][g]
        for level_index, counters in enumerate(levels):
            for group, counter in enumerate(counters):
                out[f"level{level_index}_{group}"] = counter
    return out


class Tracer:
    """Collects simulator events into a sink and (optionally) a registry.

    Parameters
    ----------
    sink:
        Any object with ``write(event)``/``close()``.  Defaults to a fresh
        :class:`~repro.obs.sinks.ListSink`.  Wrap in a
        :class:`~repro.obs.sinks.SamplingFilter` (or pass ``sample_sets``
        / ``sample_every`` here) to trace a subset.
    registry:
        A :class:`~repro.obs.metrics.MetricsRegistry` to feed; ``None``
        creates a private one (exposed as ``tracer.registry``).
    sample_sets, sample_every:
        Convenience: when given, the sink is wrapped in a
        :class:`SamplingFilter` with these knobs.
    psel_every:
        Sample the attached policy's set-dueling counters every N
        accesses (0 disables PSEL sampling).
    """

    def __init__(
        self,
        sink=None,
        registry: Optional[MetricsRegistry] = None,
        sample_sets: Optional[Iterable[int]] = None,
        sample_every: int = 1,
        psel_every: int = 0,
    ):
        if psel_every < 0:
            raise ValueError("psel_every must be >= 0")
        sink = sink if sink is not None else ListSink()
        if sample_sets is not None or sample_every != 1:
            sink = SamplingFilter(sink, sets=sample_sets, every=sample_every)
        self.sink = sink
        self.registry = registry if registry is not None else MetricsRegistry()
        self.psel_every = psel_every
        self.events_emitted = 0
        self._write = sink.write
        self._kind_counters = {}
        self._insertion_hist = None
        self._promotion_hist = None

    # ------------------------------------------------------------------
    # Registry plumbing (lazy so unused instruments never exist).
    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        counter = self._kind_counters.get(kind)
        if counter is None:
            counter = self.registry.counter(
                "repro_trace_events_total",
                "Trace events emitted, by kind",
                labels={"kind": kind},
            )
            self._kind_counters[kind] = counter
        counter.inc()
        self.events_emitted += 1

    def _observe_insertion(self, pos: int) -> None:
        hist = self._insertion_hist
        if hist is None:
            hist = self.registry.histogram(
                "repro_insertion_position",
                bounds=list(range(32)),
                help="Recency position chosen for incoming blocks",
            )
            self._insertion_hist = hist
        hist.observe(pos)

    def _observe_promotion(self, distance: int) -> None:
        hist = self._promotion_hist
        if hist is None:
            hist = self.registry.histogram(
                "repro_promotion_distance",
                bounds=list(range(-31, 32)),
                help="pos_before - pos_after on promotion (negative = demotion)",
            )
            self._promotion_hist = hist
        hist.observe(distance)

    # ------------------------------------------------------------------
    # Emission hooks (called by the cache's traced access path).
    # ------------------------------------------------------------------
    def hit(self, access, set_index, way, pos_before, pos_after, policy,
            block) -> None:
        self._count("hit")
        self._write(TraceEvent(
            "hit", access, set=set_index, way=way, pos_before=pos_before,
            pos_after=pos_after, policy=policy, block=block,
        ))
        if (
            pos_before is not None
            and pos_after is not None
            and pos_before != pos_after
        ):
            self._count("promotion")
            self._write(TraceEvent(
                "promotion", access, set=set_index, way=way,
                pos_before=pos_before, pos_after=pos_after, policy=policy,
            ))
            self._observe_promotion(pos_before - pos_after)

    def miss(self, access, set_index, policy, block) -> None:
        self._count("miss")
        self._write(TraceEvent(
            "miss", access, set=set_index, policy=policy, block=block,
        ))

    def eviction(self, access, set_index, way, pos_before, dirty,
                 policy) -> None:
        self._count("eviction")
        self._write(TraceEvent(
            "eviction", access, set=set_index, way=way,
            pos_before=pos_before, value=1 if dirty else 0, policy=policy,
        ))

    def insertion(self, access, set_index, way, pos_after, policy,
                  block) -> None:
        self._count("insertion")
        self._write(TraceEvent(
            "insertion", access, set=set_index, way=way, pos_after=pos_after,
            policy=policy, block=block,
        ))
        if pos_after is not None:
            self._observe_insertion(pos_after)

    def bypass(self, access, set_index, policy, block) -> None:
        self._count("bypass")
        self._write(TraceEvent(
            "bypass", access, set=set_index, policy=policy, block=block,
        ))

    def duel_flip(self, access, set_index, old_policy, new_policy) -> None:
        self._count("duel_flip")
        self._write(TraceEvent(
            "duel_flip", access, set=set_index, policy=new_policy,
            value=old_policy,
        ))
        self.registry.counter(
            "repro_duel_flips_total", "Set-dueling follower policy changes"
        ).inc()

    def psel_tick(self, access, selector) -> None:
        """Sample the selector's counters if the interval says so."""
        if not self.psel_every or selector is None:
            return
        if access % self.psel_every:
            return
        for name, counter in _psel_counters(selector).items():
            self._count("psel_sample")
            self._write(TraceEvent(
                "psel_sample", access, label=name, value=counter.value,
            ))
            self.registry.gauge(
                "repro_psel_value", "Latest sampled saturating-counter value",
                labels={"counter": name},
            ).set(counter.value)
            normalized = getattr(counter, "normalized", None)
            if normalized is not None:
                self.registry.gauge(
                    "repro_psel_normalized",
                    "Latest PSEL value scaled to [-1, 1]",
                    labels={"counter": name},
                ).set(normalized())

    def drift(self, access: int, series: str, value: float) -> None:
        """Emit a serving-path drift event (see :mod:`repro.obs.windows`)."""
        self._count("drift")
        self._write(TraceEvent("drift", access, label=series, value=value))
        self.registry.counter(
            "repro_drift_events_total", "Windowed-series drift detections",
            labels={"series": series},
        ).inc()

    def slo_violation(self, access: int, objective: str,
                      value: float) -> None:
        """Emit an SLO burn-rate violation (see :mod:`repro.obs.slo`)."""
        self._count("slo_violation")
        self._write(TraceEvent(
            "slo_violation", access, label=objective, value=value,
        ))
        self.registry.counter(
            "repro_slo_violations_total", "SLO burn-rate violations",
            labels={"objective": objective},
        ).inc()

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def registry_from_events(
    events: Iterable[TraceEvent],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Rebuild the tracer's metrics registry from a recorded event stream.

    Produces the same instruments a live :class:`Tracer` would have fed —
    per-kind event counters, the insertion-position and promotion-distance
    histograms, and the latest PSEL gauges — so ``repro obs metrics`` can
    re-derive exports from a JSONL file long after the run.
    """
    registry = registry if registry is not None else MetricsRegistry()

    class _Null:
        @staticmethod
        def write(event):
            pass

        @staticmethod
        def close():
            pass

    tracer = Tracer(sink=_Null(), registry=registry)
    for event in events:
        tracer._count(event.kind)
        if event.kind == "insertion" and event.pos_after is not None:
            tracer._observe_insertion(event.pos_after)
        elif event.kind == "promotion" and event.pos_before is not None \
                and event.pos_after is not None:
            tracer._observe_promotion(event.pos_before - event.pos_after)
        elif event.kind == "duel_flip":
            registry.counter(
                "repro_duel_flips_total",
                "Set-dueling follower policy changes",
            ).inc()
        elif event.kind == "psel_sample":
            registry.gauge(
                "repro_psel_value",
                "Latest sampled saturating-counter value",
                labels={"counter": event.label or "psel"},
            ).set(event.value)
        elif event.kind == "drift":
            registry.counter(
                "repro_drift_events_total",
                "Windowed-series drift detections",
                labels={"series": event.label or ""},
            ).inc()
        elif event.kind == "slo_violation":
            registry.counter(
                "repro_slo_violations_total",
                "SLO burn-rate violations",
                labels={"objective": event.label or ""},
            ).inc()
    return registry


def replay_counts(events: Iterable[TraceEvent]) -> Dict[str, int]:
    """Replay a stream of events into aggregate counts.

    The returned dict mirrors :class:`repro.cache.stats.CacheStats`
    accounting — ``accesses``/``hits``/``misses``/``evictions``/
    ``bypasses`` plus event-layer totals — so a full (unsampled) trace can
    be checked against the untraced simulation bit for bit.
    """
    counts = {
        "accesses": 0,
        "hits": 0,
        "misses": 0,
        "evictions": 0,
        "insertions": 0,
        "bypasses": 0,
        "promotions": 0,
        "duel_flips": 0,
        "psel_samples": 0,
        "drifts": 0,
        "slo_violations": 0,
    }
    plural = {
        "hit": "hits",
        "miss": "misses",
        "eviction": "evictions",
        "insertion": "insertions",
        "bypass": "bypasses",
        "promotion": "promotions",
        "duel_flip": "duel_flips",
        "psel_sample": "psel_samples",
        "drift": "drifts",
        "slo_violation": "slo_violations",
    }
    for event in events:
        key = plural.get(event.kind)
        if key is None:
            raise ValueError(f"unknown event kind {event.kind!r}")
        counts[key] += 1
    counts["accesses"] = counts["hits"] + counts["misses"]
    return counts
