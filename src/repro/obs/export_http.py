"""OpenMetrics/Prometheus scrape endpoint over a metrics registry.

A deliberately tiny, stdlib-only HTTP layer: a
:class:`~http.server.ThreadingHTTPServer` in a daemon thread serving

* ``GET /metrics`` — the registry's Prometheus text exposition,
  terminated with the OpenMetrics ``# EOF`` marker (the existing
  :func:`repro.obs.metrics.parse_prometheus` round-trips it, since the
  parser skips comment lines);
* ``GET /`` and ``GET /healthz`` — a one-line liveness response;
* anything else — 404.

The server snapshots the registry *inside the scrape request*, so a
mid-run ``curl`` always sees a coherent single-pass export (each
instrument read takes its own lock; see :mod:`repro.obs.metrics`).  Bind
with ``port=0`` for an ephemeral port — ``repro serve`` publishes the
actual port through ``run-status.json`` so smokes and operators can
discover it.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Union

from .metrics import MetricsRegistry

__all__ = ["MetricsServer", "OPENMETRICS_CONTENT_TYPE", "openmetrics_text"]

#: Content type negotiated by OpenMetrics-aware scrapers (Prometheus
#: accepts it; the text body remains plain-Prometheus compatible).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


def openmetrics_text(registry: MetricsRegistry) -> str:
    """Registry exposition with the OpenMetrics ``# EOF`` terminator."""
    body = registry.to_prometheus()
    if body and not body.endswith("\n"):
        body += "\n"
    return body + "# EOF\n"


class _Handler(BaseHTTPRequestHandler):
    # The source callable is attached to the *server* (one handler class
    # is shared by every MetricsServer instance).
    server_version = "repro-metrics/1"

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler contract
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            registry = self.server.metrics_source()  # type: ignore[attr-defined]
            self._send(200, openmetrics_text(registry),
                       OPENMETRICS_CONTENT_TYPE)
        elif path in ("/", "/healthz"):
            self._send(200, "ok\n", "text/plain; charset=utf-8")
        else:
            self._send(404, "not found\n", "text/plain; charset=utf-8")

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # scrapes happen every few seconds; stay silent


class MetricsServer:
    """Background scrape endpoint for a registry (or registry factory).

    ``source`` is either a :class:`MetricsRegistry` (served live — the
    scrape sees whatever the run has published so far) or a zero-arg
    callable returning one (snapshot-per-scrape).  The server thread is
    a daemon, so a crashed run never hangs on it; call :meth:`close`
    (or use as a context manager) for an orderly shutdown.
    """

    def __init__(
        self,
        source: Union[MetricsRegistry, Callable[[], MetricsRegistry]],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        if isinstance(source, MetricsRegistry):
            registry = source
            source_fn = lambda: registry  # noqa: E731
        elif callable(source):
            source_fn = source
        else:
            raise TypeError(
                "source must be a MetricsRegistry or a callable returning "
                f"one, got {type(source).__name__}"
            )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.metrics_source = source_fn  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsServer(url={self.url!r})"
