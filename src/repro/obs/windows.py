"""Sliding access-count windows and online drift detection.

The serving loop produces one totals update per engine batch; this
module folds those into fixed-size **offered-load windows** (accesses
*plus* shed, so a fully-shedding system still closes windows) and runs
an online change detector over the per-window series:

* :class:`SlidingWindows` — accumulates batch deltas and emits a closed
  window dict every ``window_accesses`` of offered load, carrying hit
  rate, throughput, shed ratio and queue depth.  Windows are exact: a
  batch that straddles a boundary is split proportionally, so window
  edges land on precise access counts (tests pin a boundary exactly on
  a flash-phase edge).
* :class:`DriftDetector` — per-series EWMA for context plus a one-sided
  CUSUM against the run's own *warm baseline* (mean of the first
  ``warmup_windows`` closed windows).  CUSUM accumulates only sustained
  deviation beyond a dead-band ``delta``, so Zipf sampling noise stays
  quiet while a hot-set flip or throughput collapse fires within a few
  windows.  After firing, the series re-warms on post-change data so a
  persistent shift yields one event, not one per window.

Both classes are plain-Python bookkeeping fed once per *batch*; nothing
here touches the per-access hot path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["DriftDetector", "SlidingWindows", "DEFAULT_DRIFT_SERIES"]


class SlidingWindows:
    """Fold per-batch serving deltas into fixed offered-load windows.

    ``record`` takes the *delta* since the previous call (accesses
    serviced, hits among them, accesses shed, current queue depth, wall
    seconds spent) and returns the list of windows that closed — usually
    empty or one, more when a single large batch spans several windows.

    Window dicts (all exact integers except the derived rates)::

        {"index", "start_access", "end_access",   # offered-load offsets
         "accesses", "hits", "shed",              # exact counts
         "hit_rate",      # hits/accesses, None when accesses == 0
         "shed_ratio",    # shed/(accesses+shed), None when nothing offered
         "wall_sec", "throughput",                # serviced/sec, None if no wall
         "queue_depth"}                           # last observed depth

    The most recent ``max_windows`` closed windows are retained in
    :attr:`closed` for status publication.
    """

    def __init__(self, window_accesses: int, max_windows: int = 64):
        if window_accesses < 1:
            raise ValueError(
                f"window_accesses must be >= 1, got {window_accesses}"
            )
        if max_windows < 1:
            raise ValueError(f"max_windows must be >= 1, got {max_windows}")
        self.window_accesses = int(window_accesses)
        self.max_windows = int(max_windows)
        self.closed: List[dict] = []
        self.windows_closed = 0
        self.total_offered = 0
        # accumulators for the currently-open window
        self._accesses = 0
        self._hits = 0
        self._shed = 0
        self._wall = 0.0
        self._queue_depth = 0

    @property
    def open_offered(self) -> int:
        """Offered load accumulated in the still-open window."""
        return self._accesses + self._shed

    def _close(self) -> dict:
        offered = self._accesses + self._shed
        start = self.total_offered
        window = {
            "index": self.windows_closed,
            "start_access": start,
            "end_access": start + offered,
            "accesses": self._accesses,
            "hits": self._hits,
            "shed": self._shed,
            "hit_rate": (self._hits / self._accesses
                         if self._accesses else None),
            "shed_ratio": (self._shed / offered if offered else None),
            "wall_sec": self._wall,
            "throughput": (self._accesses / self._wall
                           if self._wall > 0 else None),
            "queue_depth": self._queue_depth,
        }
        self.windows_closed += 1
        self.total_offered += offered
        self.closed.append(window)
        del self.closed[:-self.max_windows]
        self._accesses = 0
        self._hits = 0
        self._shed = 0
        self._wall = 0.0
        return window

    def record(self, accesses: int, hits: int, shed: int = 0,
               queue_depth: int = 0, wall_sec: float = 0.0) -> List[dict]:
        """Fold one batch delta in; return any windows it closed."""
        if accesses < 0 or shed < 0:
            raise ValueError("window deltas must be non-negative")
        if not 0 <= hits <= accesses:
            raise ValueError(
                f"hits must be in [0, accesses], got {hits}/{accesses}"
            )
        if wall_sec < 0:
            raise ValueError(f"wall_sec must be >= 0, got {wall_sec}")
        self._queue_depth = queue_depth
        closed: List[dict] = []
        remaining_acc, remaining_hits, remaining_shed = accesses, hits, shed
        remaining_wall = wall_sec
        while True:
            offered_left = remaining_acc + remaining_shed
            room = self.window_accesses - self.open_offered
            if offered_left < room or offered_left == 0:
                break
            # Split the batch at the boundary: fill `room` offered units,
            # apportioning serviced/shed (and hits, wall) proportionally
            # with exact integer remainders carried forward.  The floor
            # division keeps 0 <= hits <= accesses on BOTH sides of the
            # split ((n-h)(n-a) >= 0 gives floor(ha/n) >= h + a - n).
            take_acc = min(remaining_acc, room)
            take_shed = room - take_acc
            take_hits = (remaining_hits * take_acc // remaining_acc
                         if remaining_acc else 0)
            frac = room / offered_left
            take_wall = remaining_wall * frac
            self._accesses += take_acc
            self._hits += take_hits
            self._shed += take_shed
            self._wall += take_wall
            remaining_acc -= take_acc
            remaining_hits -= take_hits
            remaining_shed -= take_shed
            remaining_wall -= take_wall
            closed.append(self._close())
        self._accesses += remaining_acc
        self._hits += remaining_hits
        self._shed += remaining_shed
        self._wall += remaining_wall
        return closed

    def flush(self) -> Optional[dict]:
        """Close the partial trailing window (end of run); None if empty."""
        if self.open_offered == 0:
            return None
        return self._close()


#: Series the serving-path detector watches by default.  ``direction``
#: is the *bad* direction: "down" fires on collapses (hit rate,
#: throughput), "up" would fire on growth (e.g. queue depth).
DEFAULT_DRIFT_SERIES: Dict[str, dict] = {
    "hit_rate": {"direction": "down", "delta": 0.05, "threshold": 0.15,
                 "min_delta": 0.02, "min_threshold": 0.06},
    # Per-window wall-clock throughput is far noisier than hit rate
    # (scheduler preemption, GC, frequency shifts can halve a single
    # window), so the dead-band and threshold are much wider: only a
    # sustained regression deeper than ~25 % accumulates to a firing.
    "throughput": {"direction": "down", "delta": 0.25, "threshold": 1.5,
                   "min_delta": 0.0, "min_threshold": 0.0},
}


class DriftDetector:
    """One-sided CUSUM + EWMA drift detection against a warm baseline.

    Per watched series: the first ``warmup_windows`` non-``None`` window
    values establish a baseline (their mean).  After warmup, each window
    updates an EWMA (context for events/status) and a one-sided CUSUM

    ``s = max(0, s + (baseline - x) - delta)``        (direction="down")

    which accumulates only deviation *beyond* the dead-band ``delta``
    and fires when ``s`` exceeds ``threshold``.  Both ``delta`` and
    ``threshold`` are specified *relative to the baseline* with absolute
    floors (``min_delta``/``min_threshold``), so the detector scales
    from 90 %-hit-rate runs down to low-hit-rate regimes without manual
    tuning.  After firing, the series discards its baseline and
    re-warms on subsequent windows, so a step change produces a single
    event rather than one per window.
    """

    def __init__(self, series: Optional[Dict[str, dict]] = None,
                 warmup_windows: int = 5, ewma_alpha: float = 0.3):
        if warmup_windows < 1:
            raise ValueError(
                f"warmup_windows must be >= 1, got {warmup_windows}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        if series is None:
            series = DEFAULT_DRIFT_SERIES
        self.warmup_windows = int(warmup_windows)
        self.ewma_alpha = float(ewma_alpha)
        self.events: List[dict] = []
        self._series: Dict[str, dict] = {}
        for name, cfg in series.items():
            direction = cfg.get("direction", "down")
            if direction not in ("down", "up"):
                raise ValueError(
                    f"series {name!r}: direction must be down/up, "
                    f"got {direction!r}"
                )
            self._series[name] = {
                "direction": direction,
                "delta": float(cfg.get("delta", 0.05)),
                "threshold": float(cfg.get("threshold", 0.25)),
                "min_delta": float(cfg.get("min_delta", 0.0)),
                "min_threshold": float(cfg.get("min_threshold", 0.0)),
                "warmup": [],
                "baseline": None,
                "ewma": None,
                "cusum": 0.0,
            }

    def _extract(self, name: str, window: dict) -> Optional[float]:
        value = window.get(name)
        return None if value is None else float(value)

    def observe(self, window: dict) -> List[dict]:
        """Feed one closed window; return any drift events it triggered."""
        fired: List[dict] = []
        for name, state in self._series.items():
            value = self._extract(name, window)
            if value is None:
                continue
            if state["baseline"] is None:
                state["warmup"].append(value)
                if len(state["warmup"]) >= self.warmup_windows:
                    state["baseline"] = (
                        sum(state["warmup"]) / len(state["warmup"])
                    )
                    state["ewma"] = state["baseline"]
                    state["warmup"] = []
                    state["cusum"] = 0.0
                continue
            alpha = self.ewma_alpha
            state["ewma"] = alpha * value + (1.0 - alpha) * state["ewma"]
            baseline = state["baseline"]
            scale = abs(baseline)
            delta = max(state["delta"] * scale, state["min_delta"])
            threshold = max(state["threshold"] * scale,
                            state["min_threshold"])
            deviation = (baseline - value if state["direction"] == "down"
                         else value - baseline)
            state["cusum"] = max(0.0, state["cusum"] + deviation - delta)
            if state["cusum"] > threshold:
                event = {
                    "kind": "drift",
                    "series": name,
                    "direction": state["direction"],
                    "window_index": window.get("index"),
                    "end_access": window.get("end_access"),
                    "baseline": baseline,
                    "value": value,
                    "ewma": state["ewma"],
                    "cusum": state["cusum"],
                }
                self.events.append(event)
                fired.append(event)
                # Re-warm on post-change data: one event per shift.
                state["baseline"] = None
                state["ewma"] = None
                state["cusum"] = 0.0
                state["warmup"] = []
        return fired

    def state(self) -> Dict[str, dict]:
        """Baseline/EWMA/CUSUM snapshot per series (for status files)."""
        return {
            name: {
                "baseline": st["baseline"],
                "ewma": st["ewma"],
                "cusum": st["cusum"],
                "warmed": st["baseline"] is not None,
            }
            for name, st in self._series.items()
        }
