"""SLO telemetry: HDR latency histograms and burn-rate evaluation.

Two pieces, both stdlib-only:

* :class:`HdrHistogram` — an HDR-style *log-bucketed* histogram for
  latency-shaped values.  Values are quantized to integer multiples of
  ``unit`` (default 1 ns); the first ``2**sub_bits`` units are exact,
  and every power-of-two octave above that is split into ``2**sub_bits``
  linear sub-buckets, bounding the relative quantization error of any
  recorded value (and hence any quantile) by ``2**-sub_bits`` (~3.1 %
  at the default 5 sub-bits).  Counts are **exact integers** in a sparse
  ``{bucket_index: count}`` map, so histograms merge across shards and
  worker processes losslessly — the same contract as
  :meth:`repro.obs.metrics.Histogram.merge_raw`, enforced the same way
  (layout disagreement raises instead of mis-binning).
* :class:`SLOSpec` / :class:`SLOEvaluator` — a serving-level objective
  (target percentile latency, minimum hit rate, maximum shed fraction)
  evaluated the way production SLOs are: as **multi-window burn rates**.
  Each closed :mod:`repro.obs.windows` window is marked good/bad per
  objective; a violation fires only when the bad-window fraction exceeds
  the error budget over *both* a short and a long trailing window, so a
  single noisy window cannot page while a sustained breach fires within
  ``short_windows`` of its onset.

Everything here is pure bookkeeping over numbers the serving loop
already has; the hot path never calls into this module more than once
per engine *batch* (thousands of accesses), which is how the layer stays
inside the ≤5 % overhead budget ``make smoke-slo`` enforces.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_QUANTILES",
    "HdrHistogram",
    "SLOEvaluator",
    "SLOSpec",
]

#: The quantiles every latency surface (report, status, gauges) exposes.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class HdrHistogram:
    """Log-bucketed latency histogram with exact, mergeable counts.

    ``unit`` is the quantization step in the caller's value scale
    (default ``1e-9``: nanosecond resolution for values in seconds);
    ``sub_bits`` fixes the per-octave sub-bucket precision.  ``record``
    accepts a ``weight`` so pre-aggregated costs (one engine batch =
    thousands of accesses at one amortized per-access latency) flush in
    without a Python-level loop, mirroring
    :meth:`repro.obs.metrics.Histogram.observe`.

    Thread-safe: ``record``/``merge`` hold a per-instrument lock (see
    :class:`repro.obs.metrics.Counter` for why the GIL is not enough).
    """

    __slots__ = ("unit", "sub_bits", "counts", "count", "sum",
                 "min_value", "max_value", "_lock")

    def __init__(self, unit: float = 1e-9, sub_bits: int = 5):
        if not unit > 0:
            raise ValueError(f"unit must be positive, got {unit}")
        if not 1 <= sub_bits <= 16:
            raise ValueError(f"sub_bits must be in [1, 16], got {sub_bits}")
        self.unit = float(unit)
        self.sub_bits = int(sub_bits)
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self._lock = threading.Lock()

    # -- indexing ------------------------------------------------------
    def _index_of(self, units: int) -> int:
        sub = 1 << self.sub_bits
        if units < sub:
            return units
        exp = units.bit_length() - 1          # 2**exp <= units
        shift = exp - self.sub_bits
        return ((shift + 1) << self.sub_bits) + ((units >> shift) - sub)

    def bucket_bounds(self, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` value range of bucket ``index`` (caller scale)."""
        if index < 0:
            raise ValueError(f"bucket index must be >= 0, got {index}")
        sub = 1 << self.sub_bits
        if index < sub:
            return index * self.unit, (index + 1) * self.unit
        shift = (index >> self.sub_bits) - 1
        lo = (sub + (index & (sub - 1))) << shift
        return lo * self.unit, (lo + (1 << shift)) * self.unit

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantization error of any recorded value."""
        return 2.0 ** -self.sub_bits

    # -- recording -----------------------------------------------------
    def record(self, value: float, weight: int = 1) -> None:
        """Record ``value`` (``weight`` times at once, like ``observe``)."""
        if value != value:
            raise ValueError("cannot record NaN")
        if value < 0:
            raise ValueError(f"latency values must be >= 0, got {value}")
        if not weight >= 0:  # catches negatives and NaN weights alike
            raise ValueError(f"record weight must be >= 0, got {weight}")
        if weight == 0:
            return
        index = self._index_of(int(value / self.unit))
        with self._lock:
            self.counts[index] = self.counts.get(index, 0) + weight
            self.count += weight
            self.sum += value * weight
            if self.min_value is None or value < self.min_value:
                self.min_value = value
            if self.max_value is None or value > self.max_value:
                self.max_value = value

    # -- quantiles -----------------------------------------------------
    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the exact bucket counts.

        Returns the upper edge of the bucket holding rank
        ``ceil(q * count)`` — the HDR "highest equivalent value"
        convention — clamped to the exactly-tracked observed min/max, so
        ``quantile(0.0)``/``quantile(1.0)`` are exact.  ``None`` when
        empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            if q == 0.0:
                return self.min_value
            rank = max(1, math.ceil(q * self.count))
            cumulative = 0
            for index in sorted(self.counts):
                cumulative += self.counts[index]
                if cumulative >= rank:
                    _, hi = self.bucket_bounds(index)
                    value = hi - self.unit  # highest representable in bucket
                    return min(max(value, self.min_value), self.max_value)
        raise AssertionError("bucket counts inconsistent with count")

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p99": ...}`` for the given quantiles."""
        out = {}
        for q in qs:
            label = f"p{q * 100:g}".replace(".", "_")
            out[label] = self.quantile(q)
        return out

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    # -- merging -------------------------------------------------------
    def merge(self, other: "HdrHistogram") -> None:
        """Add ``other``'s exact counts into this histogram."""
        self.merge_raw(
            other.counts, other.count, other.sum,
            min_value=other.min_value, max_value=other.max_value,
            unit=other.unit, sub_bits=other.sub_bits,
        )

    def merge_raw(
        self,
        counts: Dict[int, int],
        count: int,
        total: float,
        min_value: Optional[float] = None,
        max_value: Optional[float] = None,
        unit: Optional[float] = None,
        sub_bits: Optional[int] = None,
    ) -> None:
        """Cross-shard / cross-process merge of raw bucket counts.

        Pass the source's ``unit``/``sub_bits`` so layout disagreement
        raises instead of silently mis-binning (the
        ``Histogram.merge_raw`` contract).
        """
        if unit is not None and float(unit) != self.unit:
            raise ValueError(f"hdr merge: unit {unit} != {self.unit}")
        if sub_bits is not None and int(sub_bits) != self.sub_bits:
            raise ValueError(
                f"hdr merge: sub_bits {sub_bits} != {self.sub_bits}"
            )
        with self._lock:
            for index, n in counts.items():
                index = int(index)
                if index < 0:
                    raise ValueError(f"hdr merge: bad bucket index {index}")
                self.counts[index] = self.counts.get(index, 0) + int(n)
            self.count += int(count)
            self.sum += float(total)
            for bound, better in ((min_value, min), (max_value, max)):
                if bound is None:
                    continue
                current = self.min_value if better is min else self.max_value
                merged = bound if current is None else better(current, bound)
                if better is min:
                    self.min_value = merged
                else:
                    self.max_value = merged

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready snapshot (counts keyed by stringified index)."""
        return {
            "schema": "repro-hdr/1",
            "unit": self.unit,
            "sub_bits": self.sub_bits,
            "counts": {str(k): v for k, v in self.counts.items()},
            "count": self.count,
            "sum": self.sum,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HdrHistogram":
        if payload.get("schema") != "repro-hdr/1":
            raise ValueError(
                f"not an hdr snapshot: schema={payload.get('schema')!r}"
            )
        hist = cls(unit=payload["unit"], sub_bits=payload["sub_bits"])
        hist.merge_raw(
            {int(k): int(v) for k, v in payload["counts"].items()},
            payload["count"], payload["sum"],
            min_value=payload.get("min"), max_value=payload.get("max"),
        )
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HdrHistogram(count={self.count}, "
                f"buckets={len(self.counts)}, max={self.max_value})")


# ----------------------------------------------------------------------
# SLO specs and multi-window burn-rate evaluation.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOSpec:
    """A serving-level objective over the windowed telemetry.

    Objectives are optional; ``None`` disables that dimension.  A window
    is *bad* when any enabled objective fails on it:

    * ``latency_target`` — the window's ``latency_quantile`` amortized
      per-access latency (seconds) exceeded the target;
    * ``min_hit_rate`` — the window hit rate fell below the floor;
    * ``max_shed_ratio`` — the window shed more than this fraction of
      its offered load.

    ``budget`` is the error budget: the tolerated long-run fraction of
    bad windows.  A violation fires when the observed bad fraction burns
    the budget at ``burn_threshold``× or faster over *both* the last
    ``short_windows`` and the last ``long_windows`` closed windows — the
    standard multi-window burn-rate alerting shape.

    The spec is an *operational overlay*: it never shapes the workload,
    so :meth:`repro.serve.workload.ServingSpec.digest` excludes it.
    """

    latency_target: Optional[float] = None
    latency_quantile: float = 0.99
    min_hit_rate: Optional[float] = None
    max_shed_ratio: Optional[float] = None
    budget: float = 0.1
    short_windows: int = 3
    long_windows: int = 12
    burn_threshold: float = 1.0

    def __post_init__(self):
        if self.latency_target is not None and not self.latency_target > 0:
            raise ValueError("latency_target must be positive seconds")
        if not 0.0 < self.latency_quantile < 1.0:
            raise ValueError("latency_quantile must be in (0, 1)")
        if self.min_hit_rate is not None \
                and not 0.0 <= self.min_hit_rate <= 1.0:
            raise ValueError("min_hit_rate must be in [0, 1]")
        if self.max_shed_ratio is not None \
                and not 0.0 <= self.max_shed_ratio <= 1.0:
            raise ValueError("max_shed_ratio must be in [0, 1]")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError(
                "need 1 <= short_windows <= long_windows, got "
                f"{self.short_windows}/{self.long_windows}"
            )
        if not self.burn_threshold > 0:
            raise ValueError("burn_threshold must be positive")

    @property
    def enabled(self) -> bool:
        """True when at least one objective is set."""
        return (self.latency_target is not None
                or self.min_hit_rate is not None
                or self.max_shed_ratio is not None)

    def objectives(self) -> Tuple[str, ...]:
        out = []
        if self.latency_target is not None:
            out.append("latency")
        if self.min_hit_rate is not None:
            out.append("hit_rate")
        if self.max_shed_ratio is not None:
            out.append("shed_ratio")
        return tuple(out)

    def to_dict(self) -> dict:
        return {
            "latency_target": self.latency_target,
            "latency_quantile": self.latency_quantile,
            "min_hit_rate": self.min_hit_rate,
            "max_shed_ratio": self.max_shed_ratio,
            "budget": self.budget,
            "short_windows": self.short_windows,
            "long_windows": self.long_windows,
            "burn_threshold": self.burn_threshold,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SLOSpec":
        return cls(**{
            k: payload[k] for k in (
                "latency_target", "latency_quantile", "min_hit_rate",
                "max_shed_ratio", "budget", "short_windows",
                "long_windows", "burn_threshold",
            ) if k in payload
        })


class SLOEvaluator:
    """Marks windows good/bad per objective and fires burn-rate alerts.

    Feed every closed window (with its per-window latency quantile) to
    :meth:`observe_window`; it returns a violation record when the
    multi-window burn condition newly holds, and ``None`` otherwise.  A
    firing objective stays *latched* (no duplicate violation per window)
    until its short-window burn drops back under the threshold.
    """

    def __init__(self, spec: SLOSpec):
        if not spec.enabled:
            raise ValueError("SLO spec has no enabled objectives")
        self.spec = spec
        self.windows_seen = 0
        self.violations: list = []
        self._bad: Dict[str, list] = {o: [] for o in spec.objectives()}
        self._latched: Dict[str, bool] = {o: False for o in spec.objectives()}

    # ------------------------------------------------------------------
    def _window_is_bad(self, objective: str, window: dict,
                       latency: Optional[float]) -> Optional[bool]:
        """Bad/good verdict for one objective; ``None`` = not measurable."""
        spec = self.spec
        if objective == "latency":
            if latency is None:
                return None
            return latency > spec.latency_target
        if objective == "hit_rate":
            hit_rate = window.get("hit_rate")
            if hit_rate is None:
                return None
            return hit_rate < spec.min_hit_rate
        if objective == "shed_ratio":
            shed_ratio = window.get("shed_ratio")
            if shed_ratio is None:
                return None
            return shed_ratio > spec.max_shed_ratio
        raise AssertionError(f"unknown objective {objective}")

    def _burn_rate(self, flags: Iterable[bool], horizon: int) -> float:
        recent = list(flags)[-horizon:]
        if not recent:
            return 0.0
        return (sum(recent) / len(recent)) / self.spec.budget

    # ------------------------------------------------------------------
    def observe_window(self, window: dict,
                       latency: Optional[float] = None) -> Optional[dict]:
        """Evaluate one closed window; return a new violation or ``None``.

        ``latency`` is the window's ``latency_quantile`` amortized
        per-access latency in seconds (from the window's
        :class:`HdrHistogram` slice); pass ``None`` when unmeasured.
        """
        spec = self.spec
        self.windows_seen += 1
        fired = None
        for objective in self._bad:
            verdict = self._window_is_bad(objective, window, latency)
            if verdict is None:
                continue
            flags = self._bad[objective]
            flags.append(verdict)
            del flags[:-spec.long_windows]
            if len(flags) < spec.short_windows:
                continue
            burn_short = self._burn_rate(flags, spec.short_windows)
            burn_long = self._burn_rate(flags, spec.long_windows)
            burning = (burn_short >= spec.burn_threshold
                       and burn_long >= spec.burn_threshold)
            if burning and not self._latched[objective]:
                self._latched[objective] = True
                fired = {
                    "kind": "slo_violation",
                    "objective": objective,
                    "window_index": window.get("index"),
                    "end_access": window.get("end_access"),
                    "burn_short": burn_short,
                    "burn_long": burn_long,
                    "value": {
                        "latency": latency,
                        "hit_rate": window.get("hit_rate"),
                        "shed_ratio": window.get("shed_ratio"),
                    }[objective if objective != "latency" else "latency"],
                }
                self.violations.append(fired)
            elif not burning:
                self._latched[objective] = False
        return fired

    # ------------------------------------------------------------------
    def burn_rates(self) -> Dict[str, Dict[str, float]]:
        """Current short/long burn rate per objective."""
        spec = self.spec
        return {
            objective: {
                "short": self._burn_rate(flags, spec.short_windows),
                "long": self._burn_rate(flags, spec.long_windows),
            }
            for objective, flags in self._bad.items()
        }

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict:
        """JSON-ready verdict for the final report and ``run-status.json``."""
        return {
            "spec": self.spec.to_dict(),
            "windows_seen": self.windows_seen,
            "burn_rates": self.burn_rates(),
            "violations": list(self.violations),
            "ok": self.ok,
        }
