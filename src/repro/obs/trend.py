"""Perf-trend tracking: append-only ``BENCH_history.jsonl`` + comparator.

``BENCH_kernels.json`` is a single point: it says how fast the kernels
are *now*, not whether the last commit made them slower.  This module
turns each ``make bench-kernels`` run into an entry in an append-only
JSONL history keyed by git revision (and code digest), and provides a
comparator that reports per-metric deltas against the previous entry and
flags regressions past a configurable threshold — the backend of
``repro obs trend [--check]``, wired into CI as a soft (non-blocking)
gate and into the figure-export manifests.

Direction handling: throughput-like metrics (``*_accesses_per_sec``,
``*speedup``) regress when they *drop*; latency-like metrics (anything
ending in ``_sec``, ``_seconds`` or ``_sec_per_generation``) regress
when they *rise*.  The convention is the metric-name suffix, so new
metrics get sensible semantics without touching the comparator.

Entries record wall-clock measurements from whatever machine ran the
bench; comparing across different hosts is noisy by nature, which is why
``--check`` is a *soft* gate (CI annotates, humans decide) and why the
default threshold is a generous 15 %.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = [
    "TREND_SCHEMA",
    "DEFAULT_THRESHOLD",
    "compare_entries",
    "default_history_path",
    "flatten_bench_kernels",
    "format_deltas",
    "latest_deltas",
    "lower_is_better",
    "read_history",
    "record_bench_kernels",
    "record_entry",
]

logger = logging.getLogger(__name__)

#: Bump when the history-entry layout changes.
TREND_SCHEMA = "repro-trend/1"

#: Default regression threshold (fractional change against the previous
#: entry).  Generous on purpose: wall-clock benches on shared machines
#: are noisy, and this is a soft gate.
DEFAULT_THRESHOLD = 0.15

HISTORY_ENV = "REPRO_TREND_HISTORY"
HISTORY_NAME = "BENCH_history.jsonl"


def default_history_path() -> Path:
    """``$REPRO_TREND_HISTORY``, else ``BENCH_history.jsonl``.

    The file lives next to ``BENCH_kernels.json`` at the repository root
    when running from a checkout; in the current directory otherwise.
    """
    env = os.environ.get(HISTORY_ENV)
    if env:
        return Path(env).expanduser()
    # src/repro/obs/trend.py -> repo root is three parents above repro/.
    root = Path(__file__).resolve().parents[3]
    if (root / "pyproject.toml").is_file():
        return root / HISTORY_NAME
    return Path(HISTORY_NAME)


# ----------------------------------------------------------------------
# Recording.
# ----------------------------------------------------------------------
def record_entry(
    history_path: Union[str, Path],
    metrics: Dict[str, float],
    source: str,
    extra: Optional[dict] = None,
) -> dict:
    """Append one entry (single atomic-ish ``O_APPEND`` line) and return it.

    The entry is keyed by git revision and simulator code digest so the
    comparator can say *which commit* a delta belongs to.
    """
    from ..eval.parallel import code_version  # lazy: avoid import cycles
    from .provenance import git_revision

    clean = {}
    for name, value in metrics.items():
        if isinstance(value, (int, float)) and value == value:  # drop NaN
            clean[str(name)] = float(value)
    entry = {
        "schema": TREND_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "git_revision": git_revision(),
        "code_version": code_version(),
        "source": source,
        "metrics": clean,
    }
    if extra:
        entry["extra"] = extra
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
    # One write() of one line with O_APPEND: concurrent recorders cannot
    # interleave within a line on POSIX.
    with open(path, "a") as handle:
        handle.write(line)
    return entry


def flatten_bench_kernels(bench: dict) -> Dict[str, float]:
    """Flatten a ``BENCH_kernels.json`` payload into trend metrics."""
    metrics: Dict[str, float] = {}
    for row in bench.get("sim_throughput", ()):
        k = row.get("assoc")
        for field in ("lut_accesses_per_sec", "walk_accesses_per_sec",
                      "columnar_accesses_per_sec", "speedup",
                      "columnar_speedup"):
            if field in row:
                metrics[f"sim.k{k}.{field}"] = float(row[field])
    ga = bench.get("ga_generation") or {}
    for field in ("lut_sec_per_generation", "walk_sec_per_generation",
                  "speedup"):
        if field in ga:
            metrics[f"ga.{field}"] = float(ga[field])
    pop = bench.get("population_batch") or {}
    for field in ("walk_sec", "columnar_sec", "speedup",
                  "lane_accesses_per_sec"):
        if field in pop:
            metrics[f"pop.{field}"] = float(pop[field])
    prof = bench.get("analytics_profile") or {}
    for field in ("profile_accesses_per_sec", "oracle_accesses_per_sec",
                  "speedup_vs_oracle"):
        if field in prof:
            metrics[f"analytics.{field}"] = float(prof[field])
    sur = bench.get("population_surrogate") or {}
    for field in ("surrogate_score_per_sec", "feature_sec",
                  "simulate_all_sec", "prefiltered_sec",
                  "generation_speedup", "audit_rho", "audit_rho_lru"):
        if sur.get(field) is not None:
            metrics[f"population_surrogate.{field}"] = float(sur[field])
    return metrics


def record_bench_kernels(
    bench_path: Union[str, Path],
    history_path: Optional[Union[str, Path]] = None,
) -> dict:
    """Append the trend entry for one ``BENCH_kernels.json``; returns it."""
    with open(bench_path) as handle:
        bench = json.load(handle)
    metrics = flatten_bench_kernels(bench)
    if not metrics:
        raise ValueError(f"{bench_path}: no trend metrics found")
    extra = {
        "bench_created_at": bench.get("created_at"),
        "accesses": (bench.get("stream") or {}).get("accesses"),
    }
    return record_entry(
        history_path if history_path is not None else default_history_path(),
        metrics,
        source="bench-kernels",
        extra=extra,
    )


# ----------------------------------------------------------------------
# Reading + comparing.
# ----------------------------------------------------------------------
def read_history(
    path: Union[str, Path], source: Optional[str] = None
) -> List[dict]:
    """Entries in append order; skips (and logs) malformed lines.

    A truncated final line — the machine died mid-append — must not make
    the whole history unreadable.
    """
    entries: List[dict] = []
    try:
        handle = open(path)
    except OSError:
        return entries
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                logger.warning("%s:%d: skipping malformed history line",
                               path, lineno)
                continue
            if not isinstance(entry, dict) or entry.get("schema") != TREND_SCHEMA:
                logger.warning("%s:%d: skipping non-%s entry",
                               path, lineno, TREND_SCHEMA)
                continue
            if source is not None and entry.get("source") != source:
                continue
            entries.append(entry)
    return entries


def lower_is_better(metric: str) -> bool:
    """Direction convention: time-like suffixes regress when they rise.

    Rate metrics are checked first: ``*_per_sec`` would otherwise match
    the ``_sec`` suffix and read a throughput collapse as an improvement.
    """
    if metric.endswith(("_per_sec", "speedup")):
        return False
    return metric.endswith(("_sec", "_seconds", "_sec_per_generation",
                            "_wall_sec", "_ms", "_bytes"))


def compare_entries(
    prev: dict, cur: dict, threshold: float = DEFAULT_THRESHOLD
) -> List[dict]:
    """Per-metric deltas of ``cur`` against ``prev``.

    Each delta dict: ``metric``, ``prev``, ``cur``, ``delta_frac``
    (signed fractional change), ``direction`` (``"better"`` / ``"worse"``
    / ``"flat"``), and ``regression`` (worse by more than ``threshold``).

    Metrics present in only one entry are *reported*, not skipped: a
    metric that vanished (``direction="removed"``, ``cur=None``) is
    flagged as a regression, because silently dropping it is exactly how
    a collapsed ``*_per_sec`` series would evade the gate; a new metric
    (``direction="added"``, ``prev=None``) is informational only.  For
    both, ``delta_frac`` is ``None``.  Common metrics come first (sorted),
    then removed, then added.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    prev_metrics = prev.get("metrics", {})
    cur_metrics = cur.get("metrics", {})
    deltas: List[dict] = []
    for metric in sorted(set(prev_metrics) & set(cur_metrics)):
        before, after = prev_metrics[metric], cur_metrics[metric]
        if before == 0:
            continue  # no meaningful fractional change
        delta_frac = (after - before) / abs(before)
        worse = delta_frac > 0 if lower_is_better(metric) else delta_frac < 0
        magnitude = abs(delta_frac)
        direction = ("flat" if magnitude < 1e-12
                     else "worse" if worse else "better")
        deltas.append({
            "metric": metric,
            "prev": before,
            "cur": after,
            "delta_frac": delta_frac,
            "direction": direction,
            "regression": worse and magnitude > threshold,
        })
    for metric in sorted(set(prev_metrics) - set(cur_metrics)):
        deltas.append({
            "metric": metric,
            "prev": prev_metrics[metric],
            "cur": None,
            "delta_frac": None,
            "direction": "removed",
            "regression": True,
        })
    for metric in sorted(set(cur_metrics) - set(prev_metrics)):
        deltas.append({
            "metric": metric,
            "prev": None,
            "cur": cur_metrics[metric],
            "delta_frac": None,
            "direction": "added",
            "regression": False,
        })
    return deltas


def latest_deltas(
    history_path: Union[str, Path],
    threshold: float = DEFAULT_THRESHOLD,
    source: Optional[str] = None,
) -> Optional[dict]:
    """Compare the newest history entry against its predecessor.

    The predecessor is the most recent earlier entry *from the same
    source* as the newest one: histories interleave sources (a
    ``bench-serving`` row lands between two ``bench-kernels`` rows), and
    comparing across sources would report every metric as removed/added
    garbage.  Pass ``source`` to pin which series the "newest entry" is
    drawn from.

    Returns ``None`` when there is nothing comparable; otherwise a
    summary dict: ``source``, ``prev_revision``, ``cur_revision``,
    ``deltas``, ``regressions`` (the subset), ``threshold``.
    """
    entries = read_history(history_path, source=source)
    if not entries:
        return None
    cur = entries[-1]
    cur_source = cur.get("source")
    prev = next(
        (e for e in reversed(entries[:-1])
         if e.get("source") == cur_source),
        None,
    )
    if prev is None:
        return None
    deltas = compare_entries(prev, cur, threshold=threshold)
    return {
        "source": cur_source,
        "prev_revision": prev.get("git_revision", "unknown"),
        "cur_revision": cur.get("git_revision", "unknown"),
        "prev_recorded_at": prev.get("recorded_at"),
        "cur_recorded_at": cur.get("recorded_at"),
        "threshold": threshold,
        "deltas": deltas,
        "regressions": [d for d in deltas if d["regression"]],
    }


def format_deltas(deltas: Sequence[dict]) -> str:
    """Fixed-width delta table for terminal output."""
    if not deltas:
        return "(no comparable metrics)"
    width = max(len(d["metric"]) for d in deltas)
    lines = []
    for d in deltas:
        marker = ("!! REGRESSION" if d["regression"]
                  else "  (worse)" if d["direction"] == "worse"
                  else "  (added)" if d["direction"] == "added"
                  else "")
        prev = "(absent)" if d["prev"] is None else f"{d['prev']:.4g}"
        cur = "(absent)" if d["cur"] is None else f"{d['cur']:.4g}"
        frac = ("        " if d["delta_frac"] is None
                else f"{d['delta_frac']:>+8.1%}")
        lines.append(
            f"  {d['metric']:<{width}}  {prev:>14} -> "
            f"{cur:>14}  {frac}{marker}"
        )
    return "\n".join(lines)
