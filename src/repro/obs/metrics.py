"""Metrics registry: counters, gauges, histograms, and exporters.

A deliberately small, stdlib-only re-implementation of the Prometheus
client model: a :class:`MetricsRegistry` owns named instruments, each
optionally distinguished by a frozen label set, and renders itself as
Prometheus text exposition format or JSON.  The parallel experiment
runner's :class:`repro.eval.parallel.RunnerMetrics` and the event
:class:`~repro.obs.tracer.Tracer` both feed instruments from one of these
registries, so every layer of the stack reports through the same pipe.

Instrument names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (the Prometheus
rule); label values are arbitrary strings.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
    "registry_from_json",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

LabelPairs = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelPairs) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing count.

    Thread-safe: ``inc`` holds a per-instrument lock, because Python's
    ``self.value += n`` is a read-modify-write that can lose updates under
    concurrent writers (the GIL does not make it atomic).  The lock is
    uncontended in the common single-writer case, so the cost is one
    acquire/release per increment.
    """

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self):
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def as_json(self):
        return self.value


class Gauge:
    """A value that can go up and down.  Thread-safe (see :class:`Counter`)."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def as_json(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram (Prometheus ``le`` semantics).

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches the rest.  ``bucket_counts[i]`` is the
    *non-cumulative* count of observations in bucket ``i`` (the exporter
    cumulates, as the exposition format requires).

    Thread-safe: ``observe``/``merge_raw`` hold a per-instrument lock so
    concurrent observations never lose counts (see :class:`Counter`).

    ``retain`` keeps the first ``retain`` raw (value, weight) samples so
    :meth:`quantile` can answer with exact nearest-rank values; once the
    total count exceeds ``retain`` (or a cross-process ``merge_raw``
    lands, which carries no samples) the raw list is dropped and
    quantiles fall back to linear interpolation on the bucket bounds.
    """

    kind = "histogram"

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "_lock",
                 "_raw", "_retain")

    def __init__(self, bounds: Sequence[float], retain: int = 0):
        bounds = sorted(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be distinct")
        if retain < 0:
            raise ValueError(f"retain must be >= 0, got {retain}")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self._retain = int(retain)
        self._raw: Optional[List[Tuple[float, int]]] = [] if retain else None
        self._lock = threading.Lock()

    def observe(self, value: float, weight: int = 1) -> None:
        """Record ``value``; ``weight`` observes it ``weight`` times at once.

        Weighted observation is how pre-aggregated counts (e.g. the
        columnar engine's hit-depth arrays) flush into a histogram without
        a Python-level loop per event.  NaN values and NaN/negative
        weights are rejected loudly: silently binning NaN into ``+Inf``
        (or subtracting counts) would corrupt every downstream
        percentile.  ``weight=0`` is a no-op by design.
        """
        if value != value:
            raise ValueError("cannot observe NaN")
        if not weight >= 0:  # catches negatives and NaN weights alike
            raise ValueError(f"observation weight must be >= 0, got {weight}")
        if weight == 0:
            return
        with self._lock:
            self.count += weight
            self.sum += value * weight
            if self._raw is not None:
                if self.count > self._retain:
                    self._raw = None
                else:
                    self._raw.append((value, weight))
            # Linear scan: bucket lists here are tiny (positions, distances).
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += weight
                    return
            self.bucket_counts[-1] += weight

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile of the observed distribution.

        Nearest-rank over the raw samples while they are retained (exact);
        otherwise linear interpolation on the bucket bounds, the
        ``histogram_quantile`` convention — observations in the overflow
        bucket resolve to the highest finite bound.  ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return None
            if self._raw is not None:
                rank = max(1, math.ceil(q * self.count))
                cumulative = 0
                for value, weight in sorted(self._raw):
                    cumulative += weight
                    if cumulative >= rank:
                        return value
                raise AssertionError("raw samples inconsistent with count")
            target = q * self.count
            cumulative = 0
            for i, bucket in enumerate(self.bucket_counts[:-1]):
                previous = cumulative
                cumulative += bucket
                if bucket and cumulative >= target:
                    hi = self.bounds[i]
                    lo = self.bounds[i - 1] if i else min(0.0, hi)
                    return lo + (hi - lo) * ((target - previous) / bucket)
            return self.bounds[-1]

    def merge_raw(
        self, bucket_counts: Sequence[int], count: int, total: float,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Add another histogram's raw buckets (cross-process merge).

        Used by :func:`repro.obs.shipping.merge_registry_payload` to sum a
        worker's histogram snapshot into the parent's.  The bucket layout
        must match — pass the source's ``bounds`` so disagreement raises
        rather than mis-binning (equal bucket *counts* with different
        bounds would otherwise merge silently).
        """
        if bounds is not None:
            incoming = sorted(float(b) for b in bounds)
            if incoming != self.bounds:
                raise ValueError(
                    f"histogram merge: bounds {incoming} != {self.bounds}"
                )
        if len(bucket_counts) != len(self.bucket_counts):
            raise ValueError(
                f"histogram merge: {len(bucket_counts)} buckets != "
                f"{len(self.bucket_counts)}"
            )
        with self._lock:
            self._raw = None  # merged counts carry no samples
            for i, n in enumerate(bucket_counts):
                self.bucket_counts[i] += int(n)
            self.count += int(count)
            self.sum += float(total)

    def as_json(self):
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """A named collection of instruments.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    twice with the same name and labels returns the same instrument, so
    library code never needs to coordinate registration.  Asking for an
    existing name with a different instrument type raises.
    """

    def __init__(self, namespace: str = ""):
        if namespace and not _NAME_RE.match(namespace):
            raise ValueError(f"invalid metrics namespace {namespace!r}")
        self.namespace = namespace
        self._help: Dict[str, str] = {}
        self._kind: Dict[str, str] = {}
        self._instruments: Dict[Tuple[str, LabelPairs], object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _full_name(self, name: str) -> str:
        full = f"{self.namespace}_{name}" if self.namespace else name
        if not _NAME_RE.match(full):
            raise ValueError(f"invalid metric name {full!r}")
        return full

    def _get_or_create(self, factory, kind: str, name: str,
                       help: str, labels, *args):
        full = self._full_name(name)
        frozen = _freeze_labels(labels)
        with self._lock:
            existing_kind = self._kind.get(full)
            if existing_kind is not None and existing_kind != kind:
                raise ValueError(
                    f"metric {full!r} already registered as {existing_kind}"
                )
            key = (full, frozen)
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(*args)
                self._instruments[key] = instrument
                self._kind[full] = kind
                if help:
                    self._help[full] = help
            return instrument

    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get_or_create(Counter, "counter", name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None) -> Gauge:
        return self._get_or_create(Gauge, "gauge", name, help, labels)

    def histogram(self, name: str, bounds: Sequence[float], help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  retain: int = 0) -> Histogram:
        return self._get_or_create(
            Histogram, "histogram", name, help, labels, bounds, retain
        )

    # ------------------------------------------------------------------
    def instruments(self) -> Iterable[Tuple[str, LabelPairs, object]]:
        """(name, labels, instrument) triples in registration order."""
        return [(n, l, i) for (n, l), i in self._instruments.items()]

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Exporters.
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        by_name: Dict[str, List[Tuple[LabelPairs, object]]] = {}
        for (name, labels), instrument in self._instruments.items():
            by_name.setdefault(name, []).append((labels, instrument))
        for name, entries in by_name.items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kind[name]}")
            for labels, instrument in entries:
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for bound, bucket in zip(
                        instrument.bounds, instrument.bucket_counts
                    ):
                        cumulative += bucket
                        le = _render_labels(labels + (("le", _fmt(bound)),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _render_labels(labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {instrument.count}")
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} {_fmt(instrument.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} {_fmt(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """JSON-ready nested snapshot of every instrument."""
        out: Dict[str, dict] = {}
        for (name, labels), instrument in self._instruments.items():
            entry = out.setdefault(
                name, {"type": self._kind[name], "help": self._help.get(name, ""),
                       "series": []}
            )
            entry["series"].append(
                {"labels": dict(labels), "value": instrument.as_json()}
            )
        return out

    def dump_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def registry_from_json(payload: dict) -> MetricsRegistry:
    """Rebuild a registry from a ``to_json()`` snapshot.

    The round-trip partner of :meth:`MetricsRegistry.to_json`: metric
    names in the snapshot are already fully qualified, so the rebuilt
    registry uses an empty namespace.  This is what lets
    ``repro obs serve-metrics`` expose any dumped snapshot over the
    scrape endpoint.
    """
    registry = MetricsRegistry()
    for name, entry in sorted(payload.items()):
        kind = entry.get("type")
        help_text = entry.get("help", "")
        for series in entry.get("series", ()):
            labels = series.get("labels") or None
            value = series.get("value")
            if kind == "counter":
                registry.counter(name, help_text, labels).inc(int(value))
            elif kind == "gauge":
                registry.gauge(name, help_text, labels).set(value)
            elif kind == "histogram":
                hist = registry.histogram(
                    name, value["bounds"], help_text, labels
                )
                hist.merge_raw(
                    value["bucket_counts"], value["count"], value["sum"],
                    bounds=value["bounds"],
                )
            else:
                raise ValueError(
                    f"metric {name!r}: unknown instrument type {kind!r}"
                )
    return registry


def _fmt(value: float) -> str:
    """Render a number the way Prometheus expects (ints without '.0')."""
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(value)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+"
    r"(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def parse_prometheus(text: str) -> Dict[Tuple[str, LabelPairs], float]:
    """Parse Prometheus text format back into ``{(name, labels): value}``.

    Used by the smoke checks to prove exports are well-formed; raises
    ``ValueError`` on any line that is neither a comment nor a sample.
    """
    out: Dict[Tuple[str, LabelPairs], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: not a prometheus sample: {line!r}")
        labels = tuple(_LABEL_RE.findall(match.group("labels") or ""))
        raw = match.group("value")
        if raw == "+Inf":
            value = math.inf
        elif raw == "-Inf":
            value = -math.inf
        elif raw == "NaN":
            value = math.nan
        else:
            value = float(raw)
        out[(match.group("name"), labels)] = value
    return out
