"""Event sinks: where :class:`~repro.obs.tracer.Tracer` events go.

All sinks implement ``write(event)`` and ``close()``; sinks are composable
via :class:`SamplingFilter`, which drops events before they reach the
wrapped sink.  The JSONL format is one ``event.to_dict()`` JSON object per
line — append-only, streamable, and grep-able.
"""

from __future__ import annotations

import atexit
import json
import logging
import weakref
from collections import deque
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from .events import TraceEvent, event_from_dict, validate_event_dict

__all__ = [
    "ListSink",
    "RingBufferSink",
    "JSONLSink",
    "SamplingFilter",
    "read_jsonl",
]

logger = logging.getLogger(__name__)


class ListSink:
    """Unbounded in-memory sink; ``events`` is a plain list."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        self.write = self.events.append  # bound method: no wrapper frame

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


class RingBufferSink:
    """Keeps only the most recent ``capacity`` events (flight recorder).

    Useful for long runs where only the events leading up to an anomaly
    matter; memory stays bounded regardless of trace length.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.dropped = 0
        self._written = 0

    def write(self, event: TraceEvent) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        self._written += 1

    @property
    def written(self) -> int:
        """Total events ever written (including since-dropped ones)."""
        return self._written

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)


#: Open JSONL sinks, flushed by an ``atexit`` hook so traces from runs
#: killed before ``close()`` (Ctrl-C in a long GA, a crashing driver)
#: are not truncated mid-record.  A WeakSet: sinks that are garbage
#: collected (their file object closed by the GC) drop out on their own.
_OPEN_JSONL_SINKS: "weakref.WeakSet[JSONLSink]" = weakref.WeakSet()


@atexit.register
def _flush_open_sinks() -> None:  # pragma: no cover - exercised at exit
    for sink in list(_OPEN_JSONL_SINKS):
        try:
            sink.flush()
        except Exception:
            pass


class JSONLSink:
    """Streams events to a JSON-lines file.

    Usable as a context manager; ``flush_every`` bounds how many events can
    be lost on a crash (the underlying file object buffers anyway, so the
    default favors throughput).  Open sinks are additionally flushed by an
    ``atexit`` hook and by explicit :meth:`flush`, so a killed run's trace
    ends on a complete record instead of half a JSON line.
    """

    def __init__(self, path: Union[str, Path], flush_every: int = 0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._dumps = json.dumps
        self.flush_every = flush_every
        self.written = 0
        _OPEN_JSONL_SINKS.add(self)

    def write(self, event: TraceEvent) -> None:
        self._handle.write(self._dumps(event.to_dict(), separators=(",", ":")))
        self._handle.write("\n")
        self.written += 1
        if self.flush_every and self.written % self.flush_every == 0:
            self._handle.flush()

    def flush(self) -> None:
        """Push buffered events to disk without closing the sink."""
        if not self._handle.closed:
            self._handle.flush()

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()
            logger.debug("wrote %d events to %s", self.written, self.path)
        _OPEN_JSONL_SINKS.discard(self)

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SamplingFilter:
    """Drops events before they reach the wrapped sink.

    Parameters
    ----------
    sink:
        The downstream sink receiving surviving events.
    sets:
        ``None`` keeps every set; otherwise only events whose ``set`` field
        is in this collection survive.  Events without a ``set`` field
        (``psel_sample``) always survive.
    every:
        Keep only events whose access index is a multiple of ``every``
        (1 keeps everything).  ``duel_flip`` events always survive — they
        are rare and each one matters.
    """

    def __init__(
        self,
        sink,
        sets: Optional[Iterable[int]] = None,
        every: int = 1,
    ):
        if every < 1:
            raise ValueError("sampling interval must be >= 1")
        self.sink = sink
        self.sets = frozenset(sets) if sets is not None else None
        self.every = every
        self.dropped = 0

    def write(self, event: TraceEvent) -> None:
        if event.kind not in ("duel_flip", "psel_sample"):
            if self.every != 1 and event.access % self.every:
                self.dropped += 1
                return
            if self.sets is not None and event.set is not None \
                    and event.set not in self.sets:
                self.dropped += 1
                return
        self.sink.write(event)

    def close(self) -> None:
        self.sink.close()


def read_jsonl(
    path: Union[str, Path], validate: bool = True
) -> Iterator[TraceEvent]:
    """Yield :class:`TraceEvent` objects from a JSONL trace file.

    With ``validate`` (default) each line is checked against
    :data:`~repro.obs.events.EVENT_SCHEMA` and malformed lines raise
    ``ValueError`` with the offending line number.
    """
    with open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from None
            if validate:
                try:
                    validate_event_dict(payload)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
            yield event_from_dict(payload)
