"""GA convergence telemetry: per-generation fitness/diversity records.

``evolve_ipv`` historically published one number per generation (the
best fitness) — enough to plot a learning curve, not enough to answer
the questions that actually decide a GA run's fate: has the population
collapsed onto one genotype?  Is the median still moving while the best
stalls?  Did eval throughput fall off a cliff when the columnar memo
started thrashing?  This module computes a compact per-generation record
from the GA's already-sorted ``(fitness, entries)`` list — stdlib only,
O(population · vector length) — and persists the sequence as an
atomically rewritten JSON document that ``repro obs analyze`` renders as
a report or figure-ready CSV.

Diversity is measured two ways, both cheap and both meaningful for IPVs:
``unique_fraction`` (distinct genotypes / population — 1.0 is a fully
diverse pool, ``elite/population`` means total collapse) and
``mean_hamming_to_best`` (mean per-position disagreement with the
current best vector, normalized to [0, 1] — it keeps falling *after*
uniqueness bottoms out, so the two together date-stamp the collapse).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CONVERGENCE_SCHEMA",
    "ConvergenceLog",
    "convergence_csv",
    "generation_stats",
    "read_convergence",
    "render_convergence",
]

#: Bump when the record layout changes.
CONVERGENCE_SCHEMA = "repro-ga-convergence/1"

#: Column order of :func:`convergence_csv` (one row per generation).
CSV_FIELDS = (
    "generation", "best", "median", "p90", "mean", "worst", "std",
    "unique_fraction", "mean_hamming_to_best", "population",
    "batch_evaluations", "evaluations", "elapsed_sec", "eval_per_sec",
)


def _quantile(sorted_ascending: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sequence."""
    n = len(sorted_ascending)
    if not n:
        raise ValueError("quantile of empty sequence")
    rank = max(1, math.ceil(q * n))
    return float(sorted_ascending[min(rank, n) - 1])


def generation_stats(
    generation: int,
    scored: Sequence[Tuple[float, Sequence[int]]],
    evaluations: int = 0,
    batch_evaluations: int = 0,
    elapsed_sec: float = 0.0,
) -> Dict[str, object]:
    """One convergence record from a sorted ``(fitness, entries)`` list.

    ``scored`` is exactly what ``evolve_ipv`` maintains: the population
    with fitnesses, sorted descending (best first).  ``evaluations`` is
    the run's cumulative count, ``batch_evaluations`` the number scored
    this generation (elites are carried, not re-evaluated), and
    ``elapsed_sec`` that batch's wall time — together they give the
    eval-throughput series.
    """
    if not scored:
        raise ValueError("generation_stats needs a non-empty population")
    fits = sorted(float(f) for f, _ in scored)
    n = len(fits)
    mean = sum(fits) / n
    variance = sum((f - mean) ** 2 for f in fits) / n
    best_entries = tuple(scored[0][1])
    length = len(best_entries) or 1
    distinct = len({tuple(entries) for _, entries in scored})
    hamming = sum(
        sum(1 for a, b in zip(best_entries, entries) if a != b)
        for _, entries in scored
    ) / (n * length)
    eval_per_sec = (
        batch_evaluations / elapsed_sec if elapsed_sec > 0 else 0.0
    )
    return {
        "generation": generation,
        "population": n,
        "best": fits[-1],
        "median": _quantile(fits, 0.5),
        "p90": _quantile(fits, 0.9),
        "mean": mean,
        "worst": fits[0],
        "std": math.sqrt(variance),
        "unique_fraction": distinct / n,
        "mean_hamming_to_best": hamming,
        "best_entries": [int(e) for e in best_entries],
        "evaluations": int(evaluations),
        "batch_evaluations": int(batch_evaluations),
        "elapsed_sec": float(elapsed_sec),
        "eval_per_sec": eval_per_sec,
    }


class ConvergenceLog:
    """Atomically rewritten JSON document of convergence records.

    The whole document is rewritten per append (temp + ``os.replace``,
    the ``run-status.json`` discipline) rather than JSONL-appended: a
    convergence log is tens of records, readers want one valid JSON
    value at any instant, and a crash mid-generation must not leave a
    torn tail.  Like :class:`~repro.obs.status.StatusPublisher`, write
    failures degrade to a logged no-op — telemetry never kills the run.
    """

    def __init__(self, path: Union[str, Path], meta: Optional[dict] = None):
        self.path = Path(path)
        self.records: List[dict] = []
        self.meta = dict(meta or {})
        self._warned = False

    def append(self, record: dict) -> None:
        self.records.append(dict(record))
        self._write()

    def to_json(self) -> dict:
        return {
            "schema": CONVERGENCE_SCHEMA,
            "meta": self.meta,
            "records": self.records,
        }

    def _write(self) -> None:
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                json.dump(self.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                import logging

                logging.getLogger(__name__).warning(
                    "convergence log %s unwritable (%s); disabling",
                    self.path, exc,
                )
            try:
                tmp.unlink()
            except OSError:
                pass


def read_convergence(path: Union[str, Path]) -> List[dict]:
    """Records from a :class:`ConvergenceLog` file (schema-checked)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("schema") != CONVERGENCE_SCHEMA:
        raise ValueError(
            f"{path}: not a {CONVERGENCE_SCHEMA} document"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ValueError(f"{path}: malformed records")
    return records


def convergence_csv(records: Sequence[dict]) -> str:
    """Figure-ready CSV (one row per generation, :data:`CSV_FIELDS`)."""
    lines = [",".join(CSV_FIELDS)]
    for record in records:
        row = []
        for field in CSV_FIELDS:
            value = record.get(field)
            if value is None:
                row.append("")
            elif isinstance(value, float):
                row.append(f"{value:.6g}")
            else:
                row.append(str(value))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


def render_convergence(records: Sequence[dict]) -> str:
    """Fixed-width per-generation table for terminal reports."""
    if not records:
        return "(no convergence records)"
    header = (f"  {'gen':>4} {'best':>10} {'median':>10} {'p90':>10} "
              f"{'unique':>7} {'dH(best)':>8} {'eval/s':>9}")
    lines = [header]
    for r in records:
        lines.append(
            f"  {r.get('generation', '?'):>4} "
            f"{r.get('best', float('nan')):>10.4f} "
            f"{r.get('median', float('nan')):>10.4f} "
            f"{r.get('p90', float('nan')):>10.4f} "
            f"{r.get('unique_fraction', float('nan')):>7.2f} "
            f"{r.get('mean_hamming_to_best', float('nan')):>8.3f} "
            f"{r.get('eval_per_sec', 0.0):>9.1f}"
        )
    return "\n".join(lines)
