"""Cache-dynamics analytics: miss curves, engine counters, GA telemetry.

The observability layers of PRs 2/5 tell you *that* a run is healthy;
this package tells you *why* a result looks the way it does:

* :mod:`.profile` — a numpy-vectorized, single-pass Mattson profiler:
  full LRU miss curve MR(c), global and per-set stack-distance
  histograms, cold-miss/working-set stats.  Bit-consistent with the
  ``trace.analysis`` oracle, ≥20× faster at a million accesses, with a
  pure-Python fallback when numpy is unavailable.
* :mod:`.counters` — flushes the columnar engine's
  :class:`~repro.engine.columnar.BatchCounters` into the metrics
  registry, provenance manifests, and a schema-valid sampled event
  stream.
* :mod:`.convergence` — per-generation GA fitness/diversity/throughput
  records, persisted as an atomically rewritten JSON log.
* :mod:`.report` — joins a profile and a convergence log into the
  ``repro obs analyze`` report (JSON + figure CSV).
"""

from .convergence import (
    CONVERGENCE_SCHEMA,
    ConvergenceLog,
    convergence_csv,
    generation_stats,
    read_convergence,
    render_convergence,
)
from .counters import (
    counters_manifest_extra,
    publish_batch_counters,
    reconcile_with_stats,
    sampled_miss_events,
)
from .profile import (
    DEFAULT_MAX_DISTANCE,
    DEFAULT_REUSE_MAX_DISTANCE,
    MattsonProfile,
    per_set_reuse_histogram_fast,
    profile_trace,
    stack_distances,
)
from .report import (
    REPORT_SCHEMA,
    build_report,
    miss_curve_csv,
    render_profile,
    render_report,
    write_report,
)

__all__ = [
    "CONVERGENCE_SCHEMA",
    "ConvergenceLog",
    "DEFAULT_MAX_DISTANCE",
    "DEFAULT_REUSE_MAX_DISTANCE",
    "MattsonProfile",
    "REPORT_SCHEMA",
    "build_report",
    "convergence_csv",
    "counters_manifest_extra",
    "generation_stats",
    "miss_curve_csv",
    "per_set_reuse_histogram_fast",
    "profile_trace",
    "publish_batch_counters",
    "read_convergence",
    "reconcile_with_stats",
    "render_convergence",
    "render_profile",
    "render_report",
    "sampled_miss_events",
    "stack_distances",
    "write_report",
]
