"""Flush columnar-engine :class:`BatchCounters` into the obs pipeline.

The engine accumulates per-lane/per-set hit, miss, eviction and cold-fill
counts as numpy arrays (see :class:`repro.engine.columnar.BatchCounters`);
this module is the bridge from those arrays to the three existing
observability sinks, all one-shot and numpy-free on output:

* :func:`publish_batch_counters` — per-lane gauges plus a weighted
  hit-depth histogram in a :class:`repro.obs.metrics.MetricsRegistry`
  (gauges are *set*, so republishing a snapshot never double-counts —
  same convention as :func:`repro.kernels.tables.publish_kernel_gauges`);
* :func:`counters_manifest_extra` — a JSON-safe block for the ``extra``
  slot of :func:`repro.obs.provenance.build_manifest`;
* :func:`sampled_miss_events` — a sampled ``miss`` event stream in the
  :data:`repro.obs.events.EVENT_SCHEMA` wire format, built from the
  ``collect_miss_indices`` output of the same run.

:func:`reconcile_with_stats` closes the loop: it proves a lane's totals
against a scalar :class:`repro.cache.stats.CacheStats` over the same
stream, which ``make smoke-analytics`` and the conformance tests run on
every change.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..events import TraceEvent, validate_event_dict

__all__ = [
    "counters_manifest_extra",
    "publish_batch_counters",
    "reconcile_with_stats",
    "sampled_miss_events",
]

#: Fields compared by :func:`reconcile_with_stats`; ``accesses`` first so
#: a truncated-stream mismatch reads as the cause, not a symptom.
_RECONCILE_FIELDS = ("accesses", "hits", "misses", "evictions")


def publish_batch_counters(
    counters,
    registry,
    lane_names: Optional[Sequence[str]] = None,
) -> None:
    """Publish one run's :class:`BatchCounters` into ``registry``.

    Per lane (labelled ``{"engine": kind, "lane": name}``): gauges
    ``repro_engine_hits`` / ``_misses`` / ``_evictions`` /
    ``_cold_fills`` / ``_measured_misses`` and a
    ``repro_engine_hit_depth`` histogram flushed with *weighted*
    observations — one ``observe(d, weight=count)`` per recency depth,
    no Python loop over hits.  Duel runs add ``repro_engine_duel_flips``
    and ``repro_engine_psel``.  ``lane_names`` defaults to the lane
    index as a string.
    """
    if lane_names is None:
        lane_names = [str(lane) for lane in range(counters.lanes)]
    elif len(lane_names) != counters.lanes:
        raise ValueError(
            f"{len(lane_names)} lane names for {counters.lanes} lanes"
        )
    registry.gauge(
        "repro_engine_accesses",
        "Accesses replayed by the last columnar engine run",
        labels={"engine": counters.kind},
    ).set(counters.accesses)
    depth_bounds = list(range(counters.assoc))
    for lane, name in enumerate(lane_names):
        labels = {"engine": counters.kind, "lane": str(name)}
        totals = counters.totals(lane)
        for field, help_text in (
            ("hits", "Whole-stream hits"),
            ("misses", "Whole-stream misses"),
            ("evictions", "Whole-stream evictions"),
            ("cold_fills", "Cold fills (first fill of a way)"),
            ("measured_misses", "Misses past warmup"),
        ):
            registry.gauge(
                f"repro_engine_{field}", help_text, labels=labels
            ).set(totals[field])
        hist = registry.histogram(
            "repro_engine_hit_depth",
            bounds=depth_bounds,
            help=(
                "Pre-promotion recency depth of hits (sampled every "
                "depth_sample lockstep steps)"
            ),
            labels=labels,
        )
        for depth, count in enumerate(counters.hit_depth_histogram(lane)):
            hist.observe(depth, weight=int(count))
        if counters.duel_flips is not None:
            registry.gauge(
                "repro_engine_duel_flips",
                "PSEL follower-selection sign changes",
                labels=labels,
            ).set(int(counters.duel_flips[lane]))
        if counters.psel is not None:
            registry.gauge(
                "repro_engine_psel", "Final PSEL value", labels=labels
            ).set(int(counters.psel[lane]))


def counters_manifest_extra(
    counters, lane_names: Optional[Sequence[str]] = None
) -> dict:
    """JSON-safe provenance block for one run's counters.

    Drops into the ``extra`` argument of
    :func:`repro.obs.provenance.build_manifest` (e.g. as
    ``extra={"engine_counters": counters_manifest_extra(c)}``), so a
    manifest pins not just *what* ran but the hit/miss/eviction totals
    and depth profile it produced.
    """
    if lane_names is None:
        lane_names = [str(lane) for lane in range(counters.lanes)]
    elif len(lane_names) != counters.lanes:
        raise ValueError(
            f"{len(lane_names)} lane names for {counters.lanes} lanes"
        )
    lanes: List[dict] = []
    for lane, name in enumerate(lane_names):
        entry = dict(counters.totals(lane))
        entry["lane"] = str(name)
        entry["hit_depth"] = counters.hit_depth_histogram(lane)
        lanes.append(entry)
    return {
        "schema": "repro-engine-counters/1",
        "engine": counters.kind,
        "num_sets": counters.num_sets,
        "assoc": counters.assoc,
        "warmup": counters.warmup,
        "accesses": counters.accesses,
        "depth_sample": counters.depth_sample,
        "lanes": lanes,
    }


def sampled_miss_events(
    addresses: Sequence[int],
    miss_indices: Iterable[int],
    num_sets: int,
    sample: int = 64,
    policy: Optional[int] = None,
    limit: Optional[int] = None,
) -> List[TraceEvent]:
    """Sampled ``miss`` events from a ``collect_miss_indices`` run.

    The columnar engine keeps no per-access event state (that is why it
    is fast), but its ``run(collect_miss_indices=True)`` output pins each
    measured miss to its global access index.  This rebuilds every
    ``sample``-th of them as a schema-valid
    :class:`~repro.obs.events.TraceEvent` — the same wire format
    ``repro.obs.tracer`` emits, so replay/summary tooling consumes both
    streams interchangeably.  Events are validated against
    :data:`~repro.obs.events.EVENT_SCHEMA` before being returned.
    """
    if sample < 1:
        raise ValueError(f"sample must be >= 1, got {sample}")
    mask = num_sets - 1
    if num_sets <= 0 or (num_sets & mask):
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")
    events: List[TraceEvent] = []
    for rank, index in enumerate(miss_indices):
        if rank % sample:
            continue
        if limit is not None and len(events) >= limit:
            break
        address = int(addresses[int(index)])
        event = TraceEvent(
            "miss",
            int(index),
            set=address & mask,
            block=address,
            policy=policy,
        )
        validate_event_dict(event.to_dict())
        events.append(event)
    return events


def reconcile_with_stats(
    counters, lane: int, stats, raise_on_mismatch: bool = True
) -> List[str]:
    """Compare one lane's totals against a scalar ``CacheStats``.

    Returns the list of mismatch descriptions (empty means the lane
    reconciles exactly); with ``raise_on_mismatch`` any discrepancy
    raises ``ValueError`` instead.  Only valid for whole-stream
    comparisons: the scalar stats must cover the same accesses the
    engine replayed (``cache.reset_stats()`` mid-stream breaks the
    invariant, use ``measured_misses`` for that view).
    """
    totals = counters.totals(lane)
    mismatches = [
        f"{field}: engine {totals[field]} != scalar {getattr(stats, field)}"
        for field in _RECONCILE_FIELDS
        if totals[field] != getattr(stats, field)
    ]
    if mismatches and raise_on_mismatch:
        raise ValueError(
            f"lane {lane} does not reconcile: " + "; ".join(mismatches)
        )
    return mismatches
