"""Vectorized Mattson-style profiler: miss curves and reuse histograms.

``trace/analysis.py`` is the semantic oracle: an OrderedDict LRU stack
walked per access, O(n * stack-scan) pure Python — minutes at a million
accesses.  This module produces the *same numbers* from one vectorized
pass:

* exact per-access LRU stack distances (the distance of access ``i`` is
  the number of distinct addresses touched since the previous occurrence
  of ``addresses[i]``), via two numpy building blocks:

  1. ``prev[i]`` — the index of the previous occurrence of each address
     (one stable argsort), and
  2. a merge-sort-style *left-smaller count*: with ``P[j] = prev[j]``
     (first touches get distinct negative surrogates), the count
     ``c(i) = #{j < i : P[j] < P[i]}`` satisfies
     ``distance(i) = c(i) - prev[i] - 1`` — every ``j <= prev[i]``
     contributes, plus exactly the first touches inside the reuse window.
     The count runs bottom-up over log2(n) merge levels; each level is a
     pair of global ``searchsorted`` calls (per-block offsets keep the
     concatenated blocks monotone) plus one scatter that performs the
     merge, so the whole thing is O(n log n) with no Python-level loop
     over accesses.

* the full LRU miss curve ``misses(c)`` for every capacity ``c`` (a
  suffix sum of the exact-distance histogram plus compulsory misses) —
  the input the Che/Fagin closed-form approximations need,
* the capped global stack-distance histogram, bit-identical to
  :func:`repro.trace.analysis.stack_distance_histogram`,
* per-set stack-distance histograms (run the same machinery on the
  set-major reordering of the stream: occurrences of an address never
  cross sets, and every access in an earlier set segment counts toward
  ``c(i)``, so the identity ``distance = c - prev - 1`` holds unchanged
  in concatenated coordinates), and
* the PDP-style per-set reuse histogram, bit-identical to
  :func:`repro.trace.analysis.per_set_reuse_histogram` (in set-major
  coordinates the reuse delta is simply ``i - prev[i]``).

Without numpy (``REPRO_FORCE_NO_NUMPY=1``) the profiler falls back to a
pure-Python walk with identical semantics — slow but never wrong, the
same posture as the scalar simulator kernels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.plru import is_power_of_two
from ...kernels import tables as _tables

__all__ = [
    "MattsonProfile",
    "profile_trace",
    "stack_distances",
    "per_set_reuse_histogram_fast",
]

#: Default cap, matching ``trace.analysis.stack_distance_histogram``.
DEFAULT_MAX_DISTANCE = 4096

#: Default reuse cap, matching ``trace.analysis.per_set_reuse_histogram``.
DEFAULT_REUSE_MAX_DISTANCE = 256


def _np():
    """numpy or ``None`` — same seam as the kernels/columnar engine."""
    return _tables.numpy_or_none()


def _extract_addresses(trace) -> Tuple[Sequence[int], Optional[int]]:
    """Addresses (and the binned set count, if the input carries one).

    Accepts a raw sequence, a :class:`repro.trace.record.Trace`, or a
    :class:`repro.engine.columnar.ColumnarTrace` (whose step-transposed
    chunks are scattered back into global access order).
    """
    if hasattr(trace, "chunks") and hasattr(trace, "num_sets"):
        np = _np()
        if np is None:  # pragma: no cover - ColumnarTrace implies numpy
            raise RuntimeError("ColumnarTrace input requires numpy")
        addrs = np.empty(trace.n, dtype=np.int64)
        for chunk in trace.chunks:
            addrs[chunk.gidx_by_step] = chunk.addr_by_step
        return addrs, trace.num_sets
    if hasattr(trace, "address_list"):
        return trace.address_list(), None
    return trace, None


# ----------------------------------------------------------------------
# Vectorized building blocks.
# ----------------------------------------------------------------------
def _previous_occurrence(np, addrs):
    """``prev[i]``: index of the previous occurrence of ``addrs[i]``
    (-1 for first touches).  One stable argsort groups equal addresses
    in time order; within a group each element's predecessor is simply
    the previous sorted position."""
    n = int(addrs.size)
    prev = np.empty(n, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(addrs, kind="stable")
    sorted_addrs = addrs[order]
    prev_sorted = np.empty(n, dtype=np.int64)
    prev_sorted[0] = -1
    prev_sorted[1:] = order[:-1]
    first = np.empty(n, dtype=bool)
    first[0] = True
    np.not_equal(sorted_addrs[1:], sorted_addrs[:-1], out=first[1:])
    prev_sorted[first] = -1
    prev[order] = prev_sorted
    return prev


def _left_smaller_counts(np, values):
    """``c[i] = #{j < i : values[j] < values[i]}`` for *distinct* values.

    Bottom-up mergesort counting, fully vectorized: at each level the
    array is a row of sorted blocks; per-block offsets (``span`` exceeds
    the value range) make the concatenation of all left (right) blocks
    globally sorted, so one ``searchsorted`` answers every cross-block
    rank query at once.  The same ranks place each element in its merged
    block, so no re-sort is needed — values are distinct (the padding
    sentinels too), hence no destination collisions.
    """
    n = int(values.size)
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    size = 1 << (n - 1).bit_length()
    cur = np.empty(size, dtype=np.int64)
    cur[:n] = values
    # Distinct sentinels larger than any real value (real values lie in
    # [-n, n-1]); distinctness keeps the merge scatter collision-free.
    cur[n:] = n + np.arange(size - n, dtype=np.int64)
    idx = np.arange(size, dtype=np.int64)
    counts = np.zeros(size, dtype=np.int64)
    span = np.int64(4) * size  # > value range, keeps pair blocks disjoint
    half = 1
    while half < size:
        width = 2 * half
        pairs = size // width
        vals2 = cur.reshape(pairs, width)
        idx2 = idx.reshape(pairs, width)
        offset = (np.arange(pairs, dtype=np.int64) * span)[:, None]
        left = (vals2[:, :half] + offset).ravel()
        right = (vals2[:, half:] + offset).ravel()
        base = np.repeat(np.arange(pairs, dtype=np.int64) * half, half)
        # Left elements strictly smaller than each right element ...
        smaller = np.searchsorted(left, right) - base
        counts[idx2[:, half:].ravel()] += smaller
        # ... and the converse rank, which completes the merge positions.
        before = np.searchsorted(right, left) - base
        within = np.tile(np.arange(half, dtype=np.int64), pairs)
        block = np.repeat(np.arange(pairs, dtype=np.int64) * width, half)
        new_vals = np.empty(size, dtype=np.int64)
        new_idx = np.empty(size, dtype=np.int64)
        ldest = block + within + before
        rdest = block + within + smaller
        new_vals[ldest] = vals2[:, :half].ravel()
        new_idx[ldest] = idx2[:, :half].ravel()
        new_vals[rdest] = vals2[:, half:].ravel()
        new_idx[rdest] = idx2[:, half:].ravel()
        cur, idx = new_vals, new_idx
        half = width
    return counts[:n]


def _stack_distances_np(np, addrs):
    """Exact LRU stack distance per access (-1 cold); returns (dist, prev)."""
    n = int(addrs.size)
    prev = _previous_occurrence(np, addrs)
    if n == 0:
        return np.empty(0, dtype=np.int64), prev
    # First touches get distinct negative surrogates: they sort below
    # every real prev index, so each one inside a reuse window counts as
    # one distinct address, exactly as the LRU stack sees it.
    points = np.where(prev >= 0, prev, -np.arange(n, dtype=np.int64) - 1)
    counts = _left_smaller_counts(np, points)
    dist = counts - prev - 1
    dist[prev < 0] = -1
    return dist, prev


def _stack_distances_py(addresses) -> List[int]:
    """Pure-Python exact stack distances (-1 cold): the oracle walk,
    uncapped.  Fallback for numpy-less environments; identical numbers."""
    stack: "OrderedDict[int, None]" = OrderedDict()
    out: List[int] = []
    for address in addresses:
        if address in stack:
            distance = 0
            for key in stack:
                if key == address:
                    break
                distance += 1
            out.append(distance)
            stack.move_to_end(address, last=False)
        else:
            out.append(-1)
            stack[address] = None
            stack.move_to_end(address, last=False)
    return out


def stack_distances(trace) -> List[int]:
    """Exact (uncapped) LRU stack distance per access; -1 = first touch.

    Vectorized when numpy is available, oracle walk otherwise — the
    numbers are identical either way.
    """
    addresses, _ = _extract_addresses(trace)
    np = _np()
    if np is None:
        return _stack_distances_py(list(addresses))
    addrs = np.ascontiguousarray(addresses, dtype=np.int64)
    dist, _ = _stack_distances_np(np, addrs)
    return dist.tolist()


# ----------------------------------------------------------------------
# The profile object.
# ----------------------------------------------------------------------
class MattsonProfile:
    """One-pass cache-dynamics profile of an access stream.

    All histogram fields are plain Python lists of ints, so the profile
    itself is numpy-free once built (reports, JSON and the no-numpy
    fallback all share one representation).

    Attributes
    ----------
    accesses, footprint, cold_misses:
        Stream length, distinct addresses, first touches (equal to
        footprint by definition).
    max_distance / distance_counts:
        Capped global stack-distance histogram; ``distance_counts[d]``
        counts non-cold accesses at ``min(distance, max_distance) == d``.
    exact_counts:
        Uncapped distance histogram (length <= footprint); the miss
        curve derives from it.
    num_sets / set_accesses / set_cold / set_distance_counts:
        Per-set surfaces when the profile was built with a set mapping
        (``set_index = address & (num_sets - 1)``); ``None`` otherwise.
    reuse_max_distance / reuse_counts:
        PDP-style per-set reuse histogram (aggregated over sets),
        bit-identical to ``trace.analysis.per_set_reuse_histogram``.
    """

    __slots__ = (
        "accesses", "footprint", "cold_misses", "max_distance",
        "distance_counts", "exact_counts", "num_sets", "set_accesses",
        "set_cold", "set_distance_counts", "reuse_max_distance",
        "reuse_counts", "_miss_counts",
    )

    def __init__(self, accesses, footprint, max_distance, distance_counts,
                 exact_counts, num_sets=None, set_accesses=None,
                 set_cold=None, set_distance_counts=None,
                 reuse_max_distance=None, reuse_counts=None):
        self.accesses = accesses
        self.footprint = footprint
        self.cold_misses = footprint
        self.max_distance = max_distance
        self.distance_counts = distance_counts
        self.exact_counts = exact_counts
        self.num_sets = num_sets
        self.set_accesses = set_accesses
        self.set_cold = set_cold
        self.set_distance_counts = set_distance_counts
        self.reuse_max_distance = reuse_max_distance
        self.reuse_counts = reuse_counts
        self._miss_counts: Optional[List[int]] = None

    # ------------------------------------------------------------------
    # Oracle-identical views.
    # ------------------------------------------------------------------
    def stack_distance_histogram(self) -> Dict[int, int]:
        """Exactly ``trace.analysis.stack_distance_histogram``: capped
        distances as keys (cold under -1), zero-count keys absent."""
        out = {d: c for d, c in enumerate(self.distance_counts) if c}
        if self.cold_misses:
            out[-1] = self.cold_misses
        return out

    def per_set_stack_histogram(self, set_index: int) -> Dict[int, int]:
        """Stack-distance histogram of one set's subsequence (same dict
        convention as the global oracle)."""
        if self.set_distance_counts is None:
            raise ValueError("profile was built without a set mapping")
        row = self.set_distance_counts[set_index]
        out = {d: c for d, c in enumerate(row) if c}
        cold = self.set_cold[set_index]
        if cold:
            out[-1] = cold
        return out

    def per_set_reuse_histogram(self) -> List[int]:
        """Exactly ``trace.analysis.per_set_reuse_histogram``."""
        if self.reuse_counts is None:
            raise ValueError("profile was built without a set mapping")
        return list(self.reuse_counts)

    # ------------------------------------------------------------------
    # Miss curve.
    # ------------------------------------------------------------------
    def miss_counts(self) -> List[int]:
        """LRU misses at every capacity ``c in 0..footprint`` (fully
        associative): compulsory misses plus reuses at distance >= c."""
        if self._miss_counts is None:
            out = [0] * (self.footprint + 1)
            running = 0
            exact = self.exact_counts
            limit = len(exact)
            for c in range(self.footprint, -1, -1):
                if c < limit:
                    running += exact[c]
                out[c] = self.cold_misses + running
            self._miss_counts = out
        return self._miss_counts

    def lru_misses(self, capacity: int) -> int:
        """Misses of a fully-associative LRU cache of ``capacity`` blocks."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        counts = self.miss_counts()
        return counts[min(capacity, self.footprint)]

    def miss_curve(self) -> List[float]:
        """``MR(c) = misses(c) / accesses`` for ``c in 0..footprint``."""
        if self.accesses == 0:
            return [0.0]
        n = float(self.accesses)
        return [m / n for m in self.miss_counts()]

    def miss_curve_points(self, max_points: int = 257) -> List[Tuple[int, int, float]]:
        """``(capacity, misses, miss_rate)`` rows for figures.

        Every capacity when the footprint is small; a deterministic
        geometric grid (all small capacities, then ~25 % growth) above
        ``max_points``, always including 0 and the footprint.
        """
        counts = self.miss_counts()
        n = self.accesses
        if self.footprint + 1 <= max_points:
            caps = list(range(self.footprint + 1))
        else:
            caps_set = set(range(min(self.footprint, 16) + 1))
            c = 16
            while c < self.footprint:
                c = max(c + 1, int(c * 1.25))
                caps_set.add(min(c, self.footprint))
            caps = sorted(caps_set)
        return [
            (c, counts[c], (counts[c] / n) if n else 0.0) for c in caps
        ]

    # ------------------------------------------------------------------
    # Summary stats.
    # ------------------------------------------------------------------
    def _distance_percentile(self, q: float) -> Optional[int]:
        """Nearest-rank percentile of the exact reuse distances."""
        total = self.accesses - self.cold_misses
        if total <= 0:
            return None
        rank = max(1, -(-int(q * 1000) * total // 1000))  # ceil(q*total)
        running = 0
        for d, c in enumerate(self.exact_counts):
            running += c
            if running >= rank:
                return d
        return len(self.exact_counts) - 1  # pragma: no cover - safety net

    def working_set_stats(self) -> dict:
        """Footprint / reuse summary used by reports and run manifests."""
        n = self.accesses
        reuses = n - self.cold_misses
        weighted = sum(d * c for d, c in enumerate(self.exact_counts))
        return {
            "accesses": n,
            "footprint": self.footprint,
            "cold_misses": self.cold_misses,
            "cold_fraction": (self.cold_misses / n) if n else 0.0,
            "reuse_accesses": reuses,
            "mean_stack_distance": (weighted / reuses) if reuses else None,
            "p50_stack_distance": self._distance_percentile(0.5),
            "p90_stack_distance": self._distance_percentile(0.9),
            "max_stack_distance": (
                len(self.exact_counts) - 1 if self.exact_counts else None
            ),
        }

    def to_json(self, max_curve_points: int = 257) -> dict:
        """JSON-ready report payload (full per-set rows stay API-only)."""
        payload = {
            "schema": "repro-analytics-profile/1",
            "working_set": self.working_set_stats(),
            "max_distance": self.max_distance,
            "stack_distance_histogram": {
                str(d): c for d, c in
                sorted(self.stack_distance_histogram().items())
            },
            "miss_curve_points": [
                list(row) for row in self.miss_curve_points(max_curve_points)
            ],
        }
        if self.num_sets is not None:
            payload["num_sets"] = self.num_sets
            payload["per_set"] = {
                "accesses": list(self.set_accesses),
                "footprint": list(self.set_cold),
            }
            payload["reuse"] = {
                "max_distance": self.reuse_max_distance,
                "counts": list(self.reuse_counts),
            }
        return payload


# ----------------------------------------------------------------------
# Builders.
# ----------------------------------------------------------------------
def _validate(max_distance: int, reuse_max_distance: int,
              num_sets: Optional[int]) -> None:
    if max_distance < 0:
        raise ValueError("max_distance must be non-negative")
    if reuse_max_distance < 1:
        raise ValueError("reuse_max_distance must be positive")
    if num_sets is not None and not is_power_of_two(num_sets):
        raise ValueError(f"num_sets must be a power of two, got {num_sets}")


def _profile_np(np, addrs, num_sets, max_distance, reuse_max_distance):
    n = int(addrs.size)
    dist, _prev = _stack_distances_np(np, addrs)
    reuse_mask = dist >= 0
    exact = dist[reuse_mask]
    cold = n - int(exact.size)
    exact_counts = (
        np.bincount(exact).tolist() if exact.size else []
    )
    distance_counts = np.bincount(
        np.minimum(exact, max_distance), minlength=max_distance + 1
    ).tolist() if exact.size else [0] * (max_distance + 1)
    kwargs = {}
    if num_sets is not None:
        mask = num_sets - 1
        si = addrs & mask
        order = np.argsort(si, kind="stable")
        sub = addrs[order]
        ssub = si[order]
        dsub, prev_sub = _stack_distances_np(np, sub)
        cold_sub = dsub < 0
        width = max_distance + 1
        if n:
            set_cold = np.bincount(ssub[cold_sub], minlength=num_sets)
            set_accesses = np.bincount(si, minlength=num_sets)
            rows = ssub[~cold_sub]
            capped = np.minimum(dsub[~cold_sub], max_distance)
            set_counts = np.bincount(
                rows * width + capped, minlength=num_sets * width
            ).reshape(num_sets, width)
            deltas = (np.arange(n, dtype=np.int64) - prev_sub)[~cold_sub]
            reuse_counts = np.bincount(
                np.minimum(deltas, reuse_max_distance),
                minlength=reuse_max_distance + 1,
            )
            kwargs = {
                "set_accesses": set_accesses.tolist(),
                "set_cold": set_cold.tolist(),
                "set_distance_counts": set_counts.tolist(),
                "reuse_counts": reuse_counts.tolist(),
            }
        else:
            kwargs = {
                "set_accesses": [0] * num_sets,
                "set_cold": [0] * num_sets,
                "set_distance_counts": [[0] * width] * num_sets,
                "reuse_counts": [0] * (reuse_max_distance + 1),
            }
        kwargs["num_sets"] = num_sets
        kwargs["reuse_max_distance"] = reuse_max_distance
    return MattsonProfile(
        n, cold, max_distance, distance_counts, exact_counts, **kwargs
    )


def _profile_py(addresses, num_sets, max_distance, reuse_max_distance):
    addresses = [int(a) for a in addresses]
    n = len(addresses)
    dist = _stack_distances_py(addresses)
    cold = sum(1 for d in dist if d < 0)
    max_exact = max((d for d in dist if d >= 0), default=-1)
    exact_counts = [0] * (max_exact + 1)
    distance_counts = [0] * (max_distance + 1)
    for d in dist:
        if d >= 0:
            exact_counts[d] += 1
            distance_counts[min(d, max_distance)] += 1
    kwargs = {}
    if num_sets is not None:
        mask = num_sets - 1
        width = max_distance + 1
        by_set: List[List[int]] = [[] for _ in range(num_sets)]
        for a in addresses:
            by_set[a & mask].append(a)
        set_accesses = [len(seq) for seq in by_set]
        set_cold = [0] * num_sets
        set_counts = [[0] * width for _ in range(num_sets)]
        reuse_counts = [0] * (reuse_max_distance + 1)
        for s, seq in enumerate(by_set):
            last: Dict[int, int] = {}
            for rank, (a, d) in enumerate(
                zip(seq, _stack_distances_py(seq))
            ):
                if d < 0:
                    set_cold[s] += 1
                else:
                    set_counts[s][min(d, max_distance)] += 1
                prev_rank = last.get(a)
                if prev_rank is not None:
                    reuse_counts[
                        min(rank - prev_rank, reuse_max_distance)
                    ] += 1
                last[a] = rank
        kwargs = {
            "num_sets": num_sets,
            "set_accesses": set_accesses,
            "set_cold": set_cold,
            "set_distance_counts": set_counts,
            "reuse_max_distance": reuse_max_distance,
            "reuse_counts": reuse_counts,
        }
    return MattsonProfile(
        n, cold, max_distance, distance_counts, exact_counts, **kwargs
    )


def profile_trace(
    trace,
    num_sets: Optional[int] = None,
    max_distance: int = DEFAULT_MAX_DISTANCE,
    reuse_max_distance: int = DEFAULT_REUSE_MAX_DISTANCE,
) -> MattsonProfile:
    """Profile an access stream in one vectorized pass.

    ``trace`` is a raw address sequence, a :class:`repro.trace.Trace`, or
    a :class:`repro.engine.columnar.ColumnarTrace` (which contributes its
    set binning when ``num_sets`` is not given).  ``num_sets=None`` skips
    the per-set surfaces — the global pass is then roughly half the work.
    """
    addresses, inferred = _extract_addresses(trace)
    if num_sets is None:
        num_sets = inferred
    _validate(max_distance, reuse_max_distance, num_sets)
    np = _np()
    if np is None:
        return _profile_py(
            list(addresses), num_sets, max_distance, reuse_max_distance
        )
    addrs = np.ascontiguousarray(addresses, dtype=np.int64)
    if addrs.ndim != 1:
        raise ValueError("addresses must be a flat sequence")
    return _profile_np(np, addrs, num_sets, max_distance, reuse_max_distance)


def per_set_reuse_histogram_fast(
    trace, num_sets: int, max_distance: int = DEFAULT_REUSE_MAX_DISTANCE
) -> List[int]:
    """Vectorized twin of ``trace.analysis.per_set_reuse_histogram``.

    In set-major order the reuse delta of an access is simply the gap to
    its previous occurrence, so this needs one stable argsort and one
    bincount — no stack machinery at all.
    """
    if not is_power_of_two(num_sets):
        raise ValueError("num_sets must be a power of two")
    if max_distance < 1:
        raise ValueError("max_distance must be positive")
    addresses, _ = _extract_addresses(trace)
    np = _np()
    if np is None:
        profile = _profile_py(list(addresses), num_sets, 0, max_distance)
        return profile.per_set_reuse_histogram()
    addrs = np.ascontiguousarray(addresses, dtype=np.int64)
    n = int(addrs.size)
    if n == 0:
        return [0] * (max_distance + 1)
    order = np.argsort(addrs & (num_sets - 1), kind="stable")
    prev = _previous_occurrence(np, addrs[order])
    deltas = (np.arange(n, dtype=np.int64) - prev)[prev >= 0]
    return np.bincount(
        np.minimum(deltas, max_distance), minlength=max_distance + 1
    ).tolist()
