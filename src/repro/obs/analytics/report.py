"""Assemble miss-curve + convergence reports (the ``obs analyze`` backend).

One report document joins the two halves this package produces — a
:class:`~repro.obs.analytics.profile.MattsonProfile` of a workload and a
GA convergence log — plus figure-ready CSV renderers for both, so a
single ``repro obs analyze`` invocation answers "what does this trace
want from a cache" and "what did the GA do about it" side by side.
Everything here is stdlib-only formatting over already-computed numbers;
the heavy lifting happened in :mod:`.profile` / :mod:`.convergence`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from .convergence import (
    convergence_csv,
    read_convergence,
    render_convergence,
)

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "miss_curve_csv",
    "render_profile",
    "render_report",
    "write_report",
]

#: Bump when the combined-report layout changes.
REPORT_SCHEMA = "repro-analytics-report/1"


def build_report(
    profile: Optional[dict] = None,
    convergence: Optional[Sequence[dict]] = None,
    convergence_path: Union[None, str, Path] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Combine a profile payload and convergence records into one report.

    ``profile`` is ``MattsonProfile.to_json()`` output; ``convergence``
    is a record list (or pass ``convergence_path`` to load a
    :class:`~repro.obs.analytics.convergence.ConvergenceLog` file).
    Either half may be absent — analyzing a trace needs no GA run and
    vice versa.
    """
    if convergence is None and convergence_path is not None:
        convergence = read_convergence(convergence_path)
    report = {"schema": REPORT_SCHEMA}
    if meta:
        report["meta"] = dict(meta)
    if profile is not None:
        report["profile"] = profile
    if convergence is not None:
        report["convergence"] = list(convergence)
    return report


def miss_curve_csv(profile: dict) -> str:
    """Figure-ready CSV of a profile's miss curve.

    Columns ``capacity_blocks,misses,miss_rate`` — one row per point of
    the (possibly capacity-subsampled) curve in the profile payload.
    """
    lines = ["capacity_blocks,misses,miss_rate"]
    for capacity, misses, rate in profile.get("miss_curve_points", ()):
        lines.append(f"{capacity},{misses},{rate:.6g}")
    return "\n".join(lines) + "\n"


def _pick_curve_rows(points: Sequence[Sequence[float]], limit: int = 10):
    """An evenly spaced sample of curve rows for terminal display."""
    if len(points) <= limit:
        return list(points)
    step = (len(points) - 1) / (limit - 1)
    picked = [points[round(i * step)] for i in range(limit - 1)]
    picked.append(points[-1])
    return picked


def render_profile(profile: dict) -> str:
    """Terminal summary of a profile payload."""
    ws = profile.get("working_set", {})
    lines = []
    accesses = ws.get("accesses", 0)
    lines.append(
        f"  accesses  {accesses}  footprint {ws.get('footprint', '?')} "
        f"blocks  cold {ws.get('cold_fraction', 0.0):.1%}"
    )
    mean_sd = ws.get("mean_stack_distance")
    if mean_sd is not None:
        lines.append(
            f"  stack-dist mean {mean_sd:.1f}, "
            f"p50 {ws.get('p50_stack_distance')}, "
            f"p90 {ws.get('p90_stack_distance')}, "
            f"max {ws.get('max_stack_distance')}"
        )
    points = profile.get("miss_curve_points", [])
    if points:
        lines.append(f"  miss curve ({len(points)} points):")
        lines.append(f"    {'capacity':>10} {'misses':>12} {'MR(c)':>8}")
        for capacity, misses, rate in _pick_curve_rows(points):
            lines.append(
                f"    {int(capacity):>10} {int(misses):>12} {rate:>8.2%}"
            )
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Terminal rendering of a combined report."""
    sections = []
    meta = report.get("meta")
    if meta:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        sections.append(f"analytics report ({pairs})")
    else:
        sections.append("analytics report")
    profile = report.get("profile")
    if profile is not None:
        sections.append("workload profile:")
        sections.append(render_profile(profile))
    convergence = report.get("convergence")
    if convergence is not None:
        sections.append("GA convergence:")
        sections.append(render_convergence(convergence))
    if profile is None and convergence is None:
        sections.append("(empty report)")
    return "\n".join(sections)


def write_report(
    report: dict,
    json_path: Union[None, str, Path] = None,
    csv_path: Union[None, str, Path] = None,
) -> None:
    """Persist a report: JSON document and/or figure CSVs.

    ``csv_path`` writes the miss curve there and, when convergence
    records are present, the per-generation series next to it with a
    ``.convergence.csv`` suffix — one flag, both figures.
    """
    if json_path is not None:
        path = Path(json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if csv_path is not None:
        path = Path(csv_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        profile = report.get("profile")
        if profile is not None:
            with open(path, "w") as handle:
                handle.write(miss_curve_csv(profile))
        convergence = report.get("convergence")
        if convergence is not None:
            conv_path = path.with_suffix(".convergence.csv")
            if profile is None:
                conv_path = path
            with open(conv_path, "w") as handle:
                handle.write(convergence_csv(convergence))
