"""Hierarchical span profiling: where does a run spend its time?

The second observability leg.  PR 2's event tracer records *policy
dynamics* (what the replacement policy did); this module records *runtime
dynamics* (what the process did): a GA generation is a span, the
population evaluation inside it is a child span, each kernel compile is a
grandchild, and the exported timeline says exactly where the wall clock
went.

Design rules, in order of importance:

1. **Zero-cost when disabled.**  ``span(...)`` with no recorder installed
   returns a shared no-op singleton — no allocation, no clock read, no
   lock.  Instrumented call sites therefore stay inside the repo's ≤5 %
   disabled-overhead budget (``make smoke-obs`` asserts both the identity
   and a generous per-call time bound).
2. **Thread-safe.**  Each thread keeps its own span stack
   (``threading.local``); the recorder appends completed records under a
   lock.  Spans from different threads interleave freely and never
   corrupt each other's nesting.
3. **Exception-safe.**  A span closed by an exception still records its
   duration (tagged ``error=<ExcType>``), and the thread's stack is
   always popped — a crashing generation cannot wedge the profiler.
4. **Mergeable across processes.**  A record is a plain JSON-ready dict
   carrying its pid/tid, so worker-side recorders ship their span trees
   through :mod:`repro.obs.shipping` spool files and the parent merges
   them into one timeline.

Exports: Chrome trace-event JSON (open in ``chrome://tracing`` or
Perfetto) and folded-stack text (pipe into ``flamegraph.pl`` or any
FlameGraph-compatible viewer).

Quick use::

    from repro.obs.spans import SpanRecorder, install_recorder, span

    rec = SpanRecorder()
    install_recorder(rec)
    with span("ga.generation", gen=3):
        with span("ga.evaluate", batch=40):
            ...
    rec.write_chrome_trace("ga-profile.json")
    print(rec.to_folded())
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "SPAN_SCHEMA",
    "SpanRecorder",
    "current_recorder",
    "install_recorder",
    "profiled",
    "span",
    "uninstall_recorder",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]

#: Bump when the span-record payload layout changes.
SPAN_SCHEMA = "repro-spans/1"

# ----------------------------------------------------------------------
# Global recorder slot + per-thread span stacks.
# ----------------------------------------------------------------------
_RECORDER: Optional["SpanRecorder"] = None
_INSTALL_LOCK = threading.Lock()
_TLS = threading.local()


def _stack() -> list:
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = []
        _TLS.stack = stack
    return stack


def install_recorder(recorder: "SpanRecorder") -> "SpanRecorder":
    """Make ``recorder`` the process-wide active recorder (returns it)."""
    global _RECORDER
    with _INSTALL_LOCK:
        _RECORDER = recorder
    return recorder


def uninstall_recorder() -> Optional["SpanRecorder"]:
    """Deactivate profiling; returns the recorder that was active."""
    global _RECORDER
    with _INSTALL_LOCK:
        recorder, _RECORDER = _RECORDER, None
    return recorder


def current_recorder() -> Optional["SpanRecorder"]:
    """The active recorder, or ``None`` when profiling is disabled."""
    return _RECORDER


class _NoopSpan:
    """Shared do-nothing span returned while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs) -> Union[_NoopSpan, "_LiveSpan"]:
    """Open a (context-manager) span named ``name`` with attributes.

    The hot-path contract: when no recorder is installed this returns the
    shared no-op singleton immediately — one global read, no allocation.
    """
    recorder = _RECORDER
    if recorder is None:
        return _NOOP
    return _LiveSpan(recorder, name, attrs)


class _LiveSpan:
    """An open span; records itself into the recorder on exit."""

    __slots__ = ("recorder", "name", "attrs", "_path", "_t0", "_ts_us",
                 "_child_us", "_parent")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs
        self._path = name
        self._t0 = 0.0
        self._ts_us = 0
        self._child_us = 0.0
        self._parent: Optional["_LiveSpan"] = None

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes on an open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        stack = _stack()
        if stack:
            self._parent = stack[-1]
            self._path = f"{self._parent._path};{self.name}"
        stack.append(self)
        self._ts_us = time.time_ns() // 1000
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = (time.perf_counter() - self._t0) * 1e6
        stack = _stack()
        # Pop *this* span even if an inner span leaked (exception safety):
        # everything above it on the stack is abandoned.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if self._parent is not None:
            self._parent._child_us += dur_us
        self.recorder.record(
            name=self.name,
            path=self._path,
            ts_us=self._ts_us,
            dur_us=dur_us,
            self_us=max(0.0, dur_us - self._child_us),
            args=dict(self.attrs) if self.attrs else {},
        )
        return False


# ----------------------------------------------------------------------
# The recorder.
# ----------------------------------------------------------------------
class SpanRecorder:
    """Collects completed span records; exports timelines and flamegraphs.

    Records are plain dicts (JSON-ready), appended under a lock, so any
    number of threads can close spans concurrently.  ``merge_payload``
    folds in records shipped from other processes
    (:mod:`repro.obs.shipping`), preserving their pid/tid so the Chrome
    trace shows one lane per process.
    """

    def __init__(self, process_label: Optional[str] = None):
        self.records: List[dict] = []
        self.process_label = process_label or "repro"
        self._lock = threading.Lock()
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def record(self, name: str, path: str, ts_us: int, dur_us: float,
               self_us: float, args: dict) -> None:
        rec = {
            "name": name,
            "path": path,
            "ts_us": ts_us,
            "dur_us": dur_us,
            "self_us": self_us,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "args": args,
        }
        with self._lock:
            self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def spans_named(self, name: str) -> List[dict]:
        """Completed records with this span name (test/report helper)."""
        with self._lock:
            return [r for r in self.records if r["name"] == name]

    def pids(self) -> List[int]:
        """Distinct process ids present, sorted (merged traces have >1)."""
        with self._lock:
            return sorted({r["pid"] for r in self.records})

    def total_us(self, name: Optional[str] = None) -> float:
        """Summed duration (µs), optionally restricted to one span name."""
        with self._lock:
            return sum(
                r["dur_us"] for r in self.records
                if name is None or r["name"] == name
            )

    # ------------------------------------------------------------------
    # Cross-process shipping.
    # ------------------------------------------------------------------
    def payload(self) -> dict:
        """JSON-ready snapshot for spool shipping (see ``merge_payload``)."""
        with self._lock:
            return {
                "schema": SPAN_SCHEMA,
                "pid": self._pid,
                "label": self.process_label,
                "records": [dict(r) for r in self.records],
            }

    def merge_payload(self, payload: dict) -> int:
        """Fold a ``payload()`` snapshot from another process in.

        Returns the number of records merged.  Raises ``ValueError`` on a
        schema mismatch — silent misinterpretation of span trees would be
        worse than a loud failure.
        """
        if payload.get("schema") != SPAN_SCHEMA:
            raise ValueError(
                f"span payload schema {payload.get('schema')!r} != {SPAN_SCHEMA!r}"
            )
        records = payload.get("records", [])
        with self._lock:
            self.records.extend(dict(r) for r in records)
        return len(records)

    # ------------------------------------------------------------------
    # Chrome trace-event export.
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> dict:
        """Trace-event JSON: complete (``ph: "X"``) events + metadata.

        Loadable in ``chrome://tracing`` and Perfetto.  Timestamps are
        wall-clock microseconds, so spans from merged worker processes
        line up with the parent's on one timeline.
        """
        with self._lock:
            records = list(self.records)
        events: List[dict] = []
        seen: Dict[int, bool] = {}
        tids: Dict[int, int] = {}
        for rec in records:
            pid = rec["pid"]
            tid = tids.setdefault(rec["tid"], len(tids) + 1)
            if pid not in seen:
                seen[pid] = True
                label = (self.process_label if pid == self._pid
                         else f"worker-{pid}")
                events.append({
                    "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                    "args": {"name": label},
                })
            events.append({
                "name": rec["name"],
                "cat": rec["name"].split(".", 1)[0],
                "ph": "X",
                "ts": rec["ts_us"],
                "dur": max(0.0, rec["dur_us"]),
                "pid": pid,
                "tid": tid,
                "args": rec["args"],
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"schema": SPAN_SCHEMA}}

    def write_chrome_trace(self, path: Union[str, Path]) -> Path:
        """Atomically write the Chrome trace JSON; returns the path."""
        return write_chrome_trace(path, self.to_chrome_trace())

    # ------------------------------------------------------------------
    # Folded-stack (flamegraph) export.
    # ------------------------------------------------------------------
    def to_folded(self) -> str:
        """Folded-stack text: ``root;child;leaf <self-microseconds>``.

        Counts are *self* time (duration minus direct children), the
        FlameGraph convention, so frame widths in the rendered graph are
        exclusive time.  Stacks from every process are merged; add the
        pid yourself if you need per-process graphs.
        """
        folded: Dict[str, float] = {}
        with self._lock:
            for rec in self.records:
                folded[rec["path"]] = folded.get(rec["path"], 0.0) + rec["self_us"]
        lines = [
            f"{path} {int(round(us))}"
            for path, us in sorted(folded.items())
            if us >= 0.5  # sub-microsecond self time is clock noise
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_folded(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w") as handle:
            handle.write(self.to_folded())
        os.replace(tmp, path)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpanRecorder({len(self.records)} spans, "
                f"pids={self.pids()})")


def write_chrome_trace(path: Union[str, Path], trace: dict) -> Path:
    """Atomically write a Chrome trace dict as JSON; returns the path."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(tmp, "w") as handle:
        json.dump(trace, handle, separators=(",", ":"))
        handle.write("\n")
    os.replace(tmp, path)
    return path


class profiled:
    """Context manager: install a fresh recorder, export on exit.

    ::

        with profiled("run.trace.json", folded="run.folded") as rec:
            ...instrumented work...

    Restores the previously installed recorder (if any) afterwards, so
    nesting is safe.
    """

    def __init__(self, chrome_path: Optional[Union[str, Path]] = None,
                 folded: Optional[Union[str, Path]] = None,
                 recorder: Optional[SpanRecorder] = None):
        self.chrome_path = chrome_path
        self.folded_path = folded
        self.recorder = recorder or SpanRecorder()
        self._previous: Optional[SpanRecorder] = None

    def __enter__(self) -> SpanRecorder:
        self._previous = current_recorder()
        install_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc) -> None:
        uninstall_recorder()
        if self._previous is not None:
            install_recorder(self._previous)
        if self.chrome_path is not None:
            self.recorder.write_chrome_trace(self.chrome_path)
        if self.folded_path is not None:
            self.recorder.write_folded(self.folded_path)


# ----------------------------------------------------------------------
# Schema validation (used by tests and ``make smoke-obs``).
# ----------------------------------------------------------------------
_PHASES = {"X", "M"}


def validate_chrome_trace(trace: dict) -> int:
    """Validate a Chrome trace-event dict; returns the ``"X"`` event count.

    Checks the subset of the trace-event format this module emits:
    ``traceEvents`` list; every event has a string ``name``, a known
    ``ph``, integer ``pid``/``tid``; complete events carry non-negative
    numeric ``ts``/``dur``; metadata events carry ``args.name``.  Raises
    ``ValueError`` with the offending event index on any violation.
    """
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        raise ValueError("chrome trace must be a dict with a traceEvents list")
    complete = 0
    for i, event in enumerate(trace["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}]: not an object")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"traceEvents[{i}]: missing/empty name")
        ph = event.get("ph")
        if ph not in _PHASES:
            raise ValueError(f"traceEvents[{i}]: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"traceEvents[{i}]: {field} must be an int")
        if ph == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{i}]: {field} must be a non-negative number"
                    )
            complete += 1
        else:  # metadata
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                raise ValueError(f"traceEvents[{i}]: metadata needs args.name")
    return complete


def validate_chrome_trace_file(path: Union[str, Path]) -> int:
    """Load ``path`` and :func:`validate_chrome_trace` it."""
    with open(path) as handle:
        return validate_chrome_trace(json.load(handle))
