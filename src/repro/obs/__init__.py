"""Observability layer: tracing, metrics, provenance, and runtime telemetry.

The simulator's end-of-run counters say *what* happened; this package
records *why* (policy dynamics) and *where the time went* (runtime
telemetry).  All legs are dependency-free (stdlib only) and
zero-overhead when disabled:

* :mod:`repro.obs.events` / :mod:`repro.obs.tracer` / :mod:`repro.obs.sinks`
  — a structured event trace of the replacement-policy dynamics the paper's
  figures are built on: hits, misses, insertions (with the chosen PLRU
  position), promotions (position before/after), evictions, bypasses,
  set-dueling flips and sampled PSEL values.  Events flow through a
  :class:`~repro.obs.tracer.Tracer` into pluggable sinks (in-memory ring
  buffer, JSONL file) with optional per-set and per-interval sampling.
* :mod:`repro.obs.metrics` — a process-wide-capable metrics registry
  (counters, gauges, histograms) with Prometheus-text and JSON exporters;
  :class:`repro.eval.parallel.RunnerMetrics` is built on top of it.
* :mod:`repro.obs.provenance` — run manifests (config hash, policy kwargs,
  seed, code digest, git revision, host, wall time) written next to cached
  results and generated reports, so any number in a figure can be traced
  back to the exact code and configuration that produced it.
* :mod:`repro.obs.spans` — hierarchical span profiling (``with
  span("ga.generation", gen=i):``) exporting Chrome trace-event JSON and
  folded-stack flamegraph text; a no-op singleton when no recorder is
  installed.
* :mod:`repro.obs.shipping` — cross-process telemetry: workers spool
  metrics deltas, span trees and heartbeats to atomic per-worker files
  that the parent merges into one registry/trace; a watchdog flags
  stalled workers.
* :mod:`repro.obs.status` — live ``run-status.json`` publishing (phase,
  progress, throughput, ETA, worker liveness) rendered by ``repro obs
  watch`` (and ``repro obs top`` for serving runs); the final state
  survives completion for post-mortems.
* :mod:`repro.obs.slo` — HDR-style log-bucketed latency histograms
  (exact, mergeable counts) and multi-window burn-rate SLO evaluation.
* :mod:`repro.obs.windows` — sliding offered-load windows over
  hit rate / throughput / shed / queue depth, with EWMA + CUSUM drift
  detection against the run's own warm baseline.
* :mod:`repro.obs.export_http` — a stdlib ``http.server`` OpenMetrics
  scrape endpoint over any metrics registry (``repro serve
  --metrics-port``, ``repro obs serve-metrics``).
* :mod:`repro.obs.trend` — append-only ``BENCH_history.jsonl`` perf
  history keyed by git revision, with a regression comparator behind
  ``repro obs trend --check``.
* :mod:`repro.obs.analytics` — cache-dynamics analytics: the vectorized
  Mattson miss-curve/stack-distance profiler, columnar-engine counter
  flushing, GA convergence telemetry, and the ``repro obs analyze``
  report builder.

The hot path (:meth:`repro.cache.cache.SetAssociativeCache.access`) pays a
single ``is not None`` check when tracing is off; the budget is enforced by
:func:`repro.obs.overhead.disabled_overhead_ratio` and ``make smoke-obs``.
"""

from .analytics import (
    ConvergenceLog,
    MattsonProfile,
    build_report,
    generation_stats,
    profile_trace,
    publish_batch_counters,
    reconcile_with_stats,
)
from .events import (
    EVENT_KINDS,
    EVENT_SCHEMA,
    TraceEvent,
    event_from_dict,
    validate_event_dict,
)
from .export_http import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsServer,
    openmetrics_text,
)
from .logconfig import configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    registry_from_json,
)
from .overhead import disabled_overhead_ratio
from .slo import HdrHistogram, SLOEvaluator, SLOSpec
from .provenance import (
    build_manifest,
    config_hash,
    git_revision,
    manifest_path_for,
    write_manifest,
)
from .shipping import (
    SpoolWriter,
    Watchdog,
    merge_registry_payload,
    merge_spool,
    read_spool,
)
from .sinks import JSONLSink, ListSink, RingBufferSink, SamplingFilter, read_jsonl
from .spans import (
    SpanRecorder,
    current_recorder,
    install_recorder,
    profiled,
    span,
    uninstall_recorder,
    validate_chrome_trace,
)
from .status import (
    StatusPublisher,
    read_status,
    render_status,
    render_top,
    watch,
)
from .tracer import Tracer, registry_from_events, replay_counts
from .windows import DriftDetector, SlidingWindows
from .trend import (
    compare_entries,
    latest_deltas,
    record_bench_kernels,
    record_entry,
)

__all__ = [
    "ConvergenceLog",
    "MattsonProfile",
    "build_report",
    "generation_stats",
    "profile_trace",
    "publish_batch_counters",
    "reconcile_with_stats",
    "SpanRecorder",
    "current_recorder",
    "install_recorder",
    "profiled",
    "span",
    "uninstall_recorder",
    "validate_chrome_trace",
    "SpoolWriter",
    "Watchdog",
    "merge_registry_payload",
    "merge_spool",
    "read_spool",
    "StatusPublisher",
    "read_status",
    "render_status",
    "render_top",
    "watch",
    "DriftDetector",
    "SlidingWindows",
    "HdrHistogram",
    "SLOEvaluator",
    "SLOSpec",
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
    "openmetrics_text",
    "compare_entries",
    "latest_deltas",
    "record_bench_kernels",
    "record_entry",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "TraceEvent",
    "event_from_dict",
    "validate_event_dict",
    "configure_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "parse_prometheus",
    "registry_from_json",
    "disabled_overhead_ratio",
    "build_manifest",
    "config_hash",
    "git_revision",
    "manifest_path_for",
    "write_manifest",
    "JSONLSink",
    "ListSink",
    "RingBufferSink",
    "SamplingFilter",
    "read_jsonl",
    "Tracer",
    "registry_from_events",
    "replay_counts",
]
