"""Trace-event model and JSON schema.

One simulated access can generate several events; they share the access
index so a reader can reassemble the per-access story.  The kinds:

``hit``
    A resident block was re-referenced.  Carries the way and, when the
    policy exposes recency positions, the PLRU stack position before and
    after the policy's hit handling.
``promotion``
    Emitted alongside a ``hit`` when the block's recency position changed
    (``pos_before`` → ``pos_after``); the *promotion distance* is
    ``pos_before - pos_after`` (positive = moved toward MRU).
``miss``
    The access missed.  Carries the block address.
``eviction``
    A valid block is being replaced.  ``way`` is the victim way,
    ``pos_before`` its recency position at eviction time (``assoc - 1``
    for a well-behaved PLRU victim), ``value`` is 1 if the victim was
    dirty.
``insertion``
    The incoming block was placed.  ``pos_after`` is the recency position
    chosen by the policy's insertion rule (the IPV's last entry for
    GIPPR/DGIPPR).
``bypass``
    The policy declined to allocate the missing block.
``duel_flip``
    The set-dueling selector changed its follower policy as a result of
    this access's miss.  ``policy`` is the newly selected policy index,
    ``value`` the previously selected one.
``psel_sample``
    A sampled saturating-counter value (every ``psel_every`` accesses).
    ``label`` names the counter (``psel``, ``pair01``, ``pair23``,
    ``meta``), ``value`` is the raw signed value.
``drift``
    The serving-path drift detector flagged a sustained change in a
    windowed series against the run's warm baseline.  ``label`` names
    the series (``hit_rate``, ``throughput``), ``value`` is the
    triggering window's value (float allowed), ``access`` the offered
    load at the window's end.
``slo_violation``
    A serving SLO objective newly entered multi-window burn.  ``label``
    names the objective (``latency``, ``hit_rate``, ``shed_ratio``),
    ``value`` the offending measurement (float allowed), ``access`` the
    offered load at the window's end.

Events serialize to compact JSON objects with ``None`` fields omitted;
:data:`EVENT_SCHEMA` documents required/optional fields per kind and
:func:`validate_event_dict` enforces it (no external jsonschema needed).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "TraceEvent",
    "event_from_dict",
    "validate_event_dict",
]

#: Every kind a :class:`TraceEvent` may carry, in hot-path order.
EVENT_KINDS = (
    "hit",
    "promotion",
    "miss",
    "eviction",
    "insertion",
    "bypass",
    "duel_flip",
    "psel_sample",
    "drift",
    "slo_violation",
)

#: Required / optional integer fields per event kind.  ``kind`` and
#: ``access`` are required everywhere; ``policy`` (the selected policy /
#: IPV index governing the set, -1 when the policy does not duel) is
#: optional everywhere.
EVENT_SCHEMA = {
    "version": 1,
    "common_required": ("kind", "access"),
    "common_optional": ("policy",),
    "kinds": {
        "hit": {"required": ("set", "way"), "optional": ("pos_before", "pos_after", "block")},
        "promotion": {"required": ("set", "way", "pos_before", "pos_after"), "optional": ("block",)},
        "miss": {"required": ("set",), "optional": ("block",)},
        "eviction": {"required": ("set", "way"), "optional": ("pos_before", "value", "block")},
        "insertion": {"required": ("set", "way"), "optional": ("pos_after", "block")},
        "bypass": {"required": ("set",), "optional": ("block",)},
        "duel_flip": {"required": ("set", "policy", "value"), "optional": ()},
        "psel_sample": {"required": ("label", "value"), "optional": ()},
        "drift": {"required": ("label", "value"), "optional": ()},
        "slo_violation": {"required": ("label", "value"), "optional": ()},
    },
}

_INT_FIELDS = frozenset(
    {"access", "set", "way", "block", "pos_before", "pos_after", "policy", "value"}
)

#: Kinds whose ``value`` is a measurement (hit rate, seconds) rather
#: than a hardware index — floats are legal there, and only there.
_FLOAT_VALUE_KINDS = frozenset({"drift", "slo_violation"})


class TraceEvent:
    """One structured observation from the simulator.

    A plain slotted record; ``to_dict`` omits unset fields so JSONL lines
    stay small.  Field meanings are kind-dependent (see module docstring).
    """

    __slots__ = (
        "kind",
        "access",
        "set",
        "way",
        "block",
        "pos_before",
        "pos_after",
        "policy",
        "value",
        "label",
    )

    def __init__(
        self,
        kind: str,
        access: int,
        set: Optional[int] = None,  # noqa: A002 - matches the wire name
        way: Optional[int] = None,
        block: Optional[int] = None,
        pos_before: Optional[int] = None,
        pos_after: Optional[int] = None,
        policy: Optional[int] = None,
        value: Optional[int] = None,
        label: Optional[str] = None,
    ):
        self.kind = kind
        self.access = access
        self.set = set
        self.way = way
        self.block = block
        self.pos_before = pos_before
        self.pos_after = pos_after
        self.policy = policy
        self.value = value
        self.label = label

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "access": self.access}
        for field in ("set", "way", "block", "pos_before", "pos_after",
                      "policy", "value", "label"):
            v = getattr(self, field)
            if v is not None:
                out[field] = v
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return all(
            getattr(self, f) == getattr(other, f) for f in TraceEvent.__slots__
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(
            f"{f}={getattr(self, f)!r}"
            for f in TraceEvent.__slots__
            if getattr(self, f) is not None
        )
        return f"TraceEvent({fields})"


def event_from_dict(payload: dict) -> TraceEvent:
    """Rebuild a :class:`TraceEvent` from its ``to_dict`` form."""
    return TraceEvent(
        payload["kind"],
        payload["access"],
        set=payload.get("set"),
        way=payload.get("way"),
        block=payload.get("block"),
        pos_before=payload.get("pos_before"),
        pos_after=payload.get("pos_after"),
        policy=payload.get("policy"),
        value=payload.get("value"),
        label=payload.get("label"),
    )


def validate_event_dict(payload: dict) -> None:
    """Raise ``ValueError`` if ``payload`` violates :data:`EVENT_SCHEMA`."""
    if not isinstance(payload, dict):
        raise ValueError(f"event must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in EVENT_SCHEMA["kinds"]:
        raise ValueError(f"unknown event kind {kind!r}")
    spec = EVENT_SCHEMA["kinds"][kind]
    for field in EVENT_SCHEMA["common_required"]:
        if field not in payload:
            raise ValueError(f"{kind} event missing required field {field!r}")
    for field in spec["required"]:
        if field not in payload:
            raise ValueError(f"{kind} event missing required field {field!r}")
    allowed = (
        set(EVENT_SCHEMA["common_required"])
        | set(EVENT_SCHEMA["common_optional"])
        | set(spec["required"])
        | set(spec["optional"])
    )
    for field, value in payload.items():
        if field not in allowed:
            raise ValueError(f"{kind} event has unexpected field {field!r}")
        if field == "kind":
            continue
        if field == "label":
            if not isinstance(value, str):
                raise ValueError(f"{kind} event field 'label' must be a string")
        elif field == "value" and kind in _FLOAT_VALUE_KINDS:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"{kind} event field 'value' must be a number, "
                    f"got {value!r}"
                )
        elif field in _INT_FIELDS:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{kind} event field {field!r} must be an integer, "
                    f"got {value!r}"
                )
