"""Deterministic seed derivation from workload-spec digests.

Generators that accept ``seed=None`` must never fall back to global
random state — an unrecorded seed makes the run unreproducible and the
provenance manifest a lie.  Instead the seed is *derived* from a digest
of the spec itself: the same spec always yields the same seed, different
specs yield uncorrelated ones, and the derived value is recorded in the
manifest (``build_manifest(seed=...)`` / spec ``manifest_extra``) so a
rerun needs nothing but the manifest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

__all__ = ["derive_seed", "resolve_seed", "spec_digest"]


def spec_digest(payload) -> str:
    """SHA-256 hex digest of a JSON-serializable spec payload.

    Canonical encoding (sorted keys, no whitespace) so dict ordering and
    formatting cannot change the digest.
    """
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def derive_seed(digest: str, salt: str = "") -> int:
    """A non-negative 63-bit seed derived from a spec digest.

    ``salt`` separates independent streams drawn from one spec (e.g. a
    warmup trace vs a measured trace).
    """
    if salt:
        digest = hashlib.sha256(
            f"{digest}:{salt}".encode("utf-8")
        ).hexdigest()
    return int(digest[:16], 16) & ((1 << 63) - 1)


def resolve_seed(seed: Optional[int], payload, salt: str = "") -> int:
    """``seed`` itself when given, else :func:`derive_seed` of ``payload``."""
    if seed is not None:
        return int(seed)
    return derive_seed(spec_digest(payload), salt)
