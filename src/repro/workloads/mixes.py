"""Named multi-core workload mixes.

Multi-core cache studies evaluate on standard benchmark *mixes* spanning
the intensity spectrum.  These follow the usual taxonomy: all-thrash,
thrash-vs-friendly, scan-vs-chase, and an all-friendly control.  Used by
``repro.eval.run_multicore`` and the multi-core bench.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import SPEC_BENCHMARKS

__all__ = ["MULTICORE_MIXES", "mix_names", "get_mix"]

MULTICORE_MIXES: Dict[str, List[str]] = {
    # Two memory hogs fighting over the LLC.
    "thrash2": ["436.cactusADM", "482.sphinx3"],
    # A thrasher next to a latency-sensitive friendly core.
    "bully": ["462.libquantum", "400.perlbench"],
    # Pointer chasing next to a tiny working set.
    "chase-quiet": ["429.mcf", "453.povray"],
    # Scan-heavy pair.
    "scans2": ["483.xalancbmk", "445.gobmk"],
    # Streaming pair (nothing to save; a sanity control).
    "streams2": ["433.milc", "470.lbm"],
    # All-friendly control: sharing should cost nearly nothing.
    "friendly2": ["416.gamess", "444.namd"],
    # Four-core capacity brawl.
    "quad-pressure": [
        "436.cactusADM", "462.libquantum", "429.mcf", "450.soplex",
    ],
    # Four cores, mixed intensity.
    "quad-mixed": [
        "482.sphinx3", "400.perlbench", "447.dealII", "433.milc",
    ],
}


def mix_names() -> List[str]:
    return list(MULTICORE_MIXES)


def get_mix(name: str) -> List[str]:
    try:
        benchmarks = MULTICORE_MIXES[name]
    except KeyError:
        raise ValueError(
            f"unknown mix {name!r}; known: {', '.join(MULTICORE_MIXES)}"
        ) from None
    for bench in benchmarks:
        if bench not in SPEC_BENCHMARKS:
            raise AssertionError(f"mix {name} references unknown {bench}")
    return list(benchmarks)
