"""Synthetic stand-ins for the SPEC CPU 2006 suite.

The paper evaluates on traces of all 29 SPEC CPU 2006 benchmarks, collected
at up to six simpoints each (Section 4.6).  Those traces are proprietary, so
each benchmark is modelled by a generator whose *reuse-distance behaviour at
the LLC* matches the benchmark's published characterisation — streaming
(zero-reuse), scanning, thrashing, cache-friendly, pointer-chasing or
phase-alternating.  See DESIGN.md ("Substitutions") for why this preserves
the replacement-policy comparisons the paper makes.

Benchmarks the paper singles out get archetypes reproducing their role in
the evaluation:

* ``462.libquantum``, ``470.lbm``, ``433.milc`` — streaming/scanning, the
  big insertion-policy winners;
* ``429.mcf``, ``436.cactusADM``, ``482.sphinx3`` — thrashing, large gains;
* ``447.dealII`` — an LRU-friendly reuse profile that every non-LRU policy
  damages (Figure 11's notable exception);
* ``456.hmmer`` — phase-alternating, where two duelled vectors are not
  enough but four are (Section 5.1);
* ``416.gamess``, ``453.povray`` — tiny working sets where every policy,
  MIN included, is equivalent.

Working-set sizes are expressed relative to the LLC capacity in blocks, so
the suite scales with the experiment geometry (the set-sampling argument in
DESIGN.md).  ``instructions_per_access`` sets each benchmark's memory
intensity and therefore how much a miss-rate change moves its CPI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..trace.record import Trace, concatenate
from ..trace import synthetic as gen
from .seeding import derive_seed, spec_digest

__all__ = [
    "Simpoint",
    "SpecBenchmark",
    "SPEC_BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
]


class Simpoint(NamedTuple):
    """One weighted program phase, as produced by the SimPoint methodology."""

    weight: float
    build: Callable[[int, int, int], Trace]  # (length, capacity, seed) -> Trace


class SpecBenchmark:
    """A named benchmark: weighted simpoints plus a memory intensity."""

    def __init__(
        self,
        name: str,
        simpoints: Sequence[Simpoint],
        instructions_per_access: float,
        archetype: str,
    ):
        if not simpoints:
            raise ValueError(f"{name}: need at least one simpoint")
        total = sum(s.weight for s in simpoints)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{name}: simpoint weights sum to {total}, not 1")
        self.name = name
        self.simpoints = list(simpoints)
        self.instructions_per_access = instructions_per_access
        self.archetype = archetype

    def spec_digest(self, length: int, capacity: int) -> str:
        """Canonical digest of this benchmark spec at one geometry."""
        return spec_digest({
            "kind": "spec-benchmark",
            "name": self.name,
            "archetype": self.archetype,
            "instructions_per_access": self.instructions_per_access,
            "weights": self.weights(),
            "length": length,
            "capacity": capacity,
        })

    def resolve_seed(
        self, seed: Optional[int], length: int, capacity: int
    ) -> int:
        """``seed`` itself, or — for ``seed=None`` — a deterministic seed
        derived from the spec digest.

        The derived value is what must land in the provenance manifest
        (``build_manifest(seed=...)``): never global random state.
        """
        if seed is not None:
            return int(seed)
        return derive_seed(self.spec_digest(length, capacity))

    def trace(
        self, index: int, length: int, capacity: int,
        seed: Optional[int] = 0,
    ) -> Trace:
        """Generate the trace of one simpoint.

        The per-simpoint seed derivation (``seed * 1009 + index * 31 + 7``)
        is the single source of truth here: parallel workers regenerate
        exactly this trace from ``(benchmark name, index, seed)`` instead
        of receiving a pickled copy, which is what makes parallel runs
        bit-identical to serial ones.  ``seed=None`` resolves through
        :meth:`resolve_seed` (spec-digest derivation), never through
        global random state.
        """
        seed = self.resolve_seed(seed, length, capacity)
        sp = self.simpoints[index]
        trace = sp.build(length, capacity, seed * 1009 + index * 31 + 7)
        return Trace(
            trace.addresses,
            trace.pcs,
            instructions=int(length * self.instructions_per_access),
            name=f"{self.name}.sp{index}",
        )

    def traces(
        self, length: int, capacity: int, seed: Optional[int] = 0
    ) -> List[Trace]:
        """Generate one trace per simpoint.

        ``capacity`` is the LLC size in blocks; ``length`` is accesses per
        simpoint.  The benchmark's intensity is applied to every simpoint's
        instruction count.  ``seed=None`` is resolved once, so all
        simpoints share one derived seed.
        """
        seed = self.resolve_seed(seed, length, capacity)
        return [
            self.trace(index, length, capacity, seed)
            for index in range(len(self.simpoints))
        ]

    def weights(self) -> List[float]:
        return [sp.weight for sp in self.simpoints]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpecBenchmark({self.name!r}, archetype={self.archetype!r}, "
            f"simpoints={len(self.simpoints)})"
        )


# ----------------------------------------------------------------------
# Archetype builders.  Each returns a (length, capacity, seed) -> Trace
# callable; working sets are fractions of LLC capacity.
# ----------------------------------------------------------------------
def _friendly(ws_frac: float, alpha: float = 1.3):
    def build(n, capacity, seed):
        ws = max(64, int(capacity * ws_frac))
        return gen.zipf(ws, n, alpha=alpha, seed=seed)

    return build


def _stream():
    def build(n, capacity, seed):
        return gen.streaming(n, seed=seed)

    return build


def _loop(ws_frac: float, noise: float = 0.0):
    """A cyclic loop; ``noise`` adds an unexploitable random component.

    Thrashing SPEC workloads are loops *plus* irregular traffic, which caps
    the gains any policy can realize (paper speedups top out around 1.5x,
    not the 3x a pure loop would allow)."""

    def build(n, capacity, seed):
        ws = max(64, int(capacity * ws_frac))
        if noise <= 0.0:
            return gen.looping(ws, n, seed=seed)
        return gen.noisy_loop(
            ws, n, noise=noise, noise_working_set=6 * capacity, seed=seed
        )

    return build


def _uniform(ws_frac: float):
    def build(n, capacity, seed):
        ws = max(64, int(capacity * ws_frac))
        return gen.uniform_random(ws, n, seed=seed)

    return build


def _chase(ws_frac: float, locality: float):
    def build(n, capacity, seed):
        ws = max(128, int(capacity * ws_frac))
        return gen.pointer_chase(ws, n, seed=seed, locality=locality)

    return build


def _hot_loop_chase(loop_frac: float, loop_share: float, chase_mult: int = 8):
    """A protectable loop drowned in pointer-chase traffic (mcf-style).

    Under LRU the chase fills push the loop's per-set reuse distance past
    the associativity, so LRU loses the loop; policies that insert the
    zero-reuse chase blocks near eviction keep it — the mechanism behind
    mcf's large gains in the paper."""

    def build(n, capacity, seed):
        loop_len = int(n * loop_share)
        loop = gen.looping(
            max(64, int(capacity * loop_frac)), loop_len, seed=seed, region=0
        )
        chase = gen.uniform_random(
            chase_mult * capacity, n - loop_len, seed=seed + 1, region=1
        )
        return gen.mix([loop, chase], chunk=24, seed=seed)

    return build


def _scans(hot_frac: float, scan_frac: float, period: int = 384):
    def build(n, capacity, seed):
        hot = max(64, int(capacity * hot_frac))
        scan = max(32, int(capacity * scan_frac))
        return gen.scan_interleaved(hot, scan, period, n, seed=seed)

    return build


def _lru_friendly_band(lo_frac: float, hi_frac: float, cold: float = 0.02):
    """Reuse distances concentrated in [lo, hi] of capacity.

    With the band just under capacity this is maximally LRU-friendly and
    fragile under non-MRU insertion — the 447.dealII archetype.
    """

    def build(n, capacity, seed):
        lo = max(8, int(capacity * lo_frac))
        hi = max(lo + 1, int(capacity * hi_frac))
        step = max(1, (hi - lo) // 8)
        band = list(range(lo, hi, step))
        distances = band + [max(4, lo // 8)]
        probabilities = [1.0] * len(band) + [2.0]
        return gen.stack_distance(
            distances, probabilities, n, cold_fraction=cold, seed=seed
        )

    return build


def _phased(*phase_builders, name: str = "phased"):
    """Concatenate equal-length phases built by the given builders."""

    def build(n, capacity, seed):
        per = max(1, n // len(phase_builders))
        parts = [
            b(per, capacity, seed + 101 * i) for i, b in enumerate(phase_builders)
        ]
        return concatenate(parts, name=name)

    return build


def _blend(*phase_builders, chunk: int = 64):
    """Interleave streams from several builders (distinct regions)."""

    def build(n, capacity, seed):
        per = max(1, n // len(phase_builders))
        parts = []
        for i, b in enumerate(phase_builders):
            t = b(per, capacity, seed + 37 * i)
            parts.append(
                Trace(
                    t.addresses + i * gen.REGION,
                    t.pcs,
                    instructions=t.instructions,
                    name=t.name,
                )
            )
        return gen.mix(parts, chunk=chunk, seed=seed)

    return build


def _bench(name, archetype, ipa, *weighted_builders):
    simpoints = [Simpoint(w, b) for w, b in weighted_builders]
    return SpecBenchmark(name, simpoints, ipa, archetype)


#: All 29 SPEC CPU 2006 benchmarks, keyed by name.
SPEC_BENCHMARKS: Dict[str, SpecBenchmark] = {
    b.name: b
    for b in [
        _bench(
            "400.perlbench", "friendly+scans", 120.0,
            (0.7, _friendly(0.45)),
            (0.3, _scans(0.3, 0.4)),
        ),
        _bench(
            "401.bzip2", "loop+uniform", 40.0,
            (0.6, _loop(0.7)),
            (0.4, _uniform(1.5)),
        ),
        _bench(
            "403.gcc", "mixed", 60.0,
            (0.5, _friendly(0.5)),
            (0.5, _loop(1.1, noise=0.5)),
        ),
        _bench(
            "410.bwaves", "stream+loop", 12.0,
            (0.5, _stream()),
            (0.5, _loop(2.0, noise=0.35)),
        ),
        _bench("416.gamess", "tiny-ws", 400.0, (1.0, _friendly(0.08))),
        _bench(
            "429.mcf", "hot-loop+chase", 4.0,
            (0.6, _hot_loop_chase(0.8, 0.45)),
            (0.4, _hot_loop_chase(0.6, 0.40)),
        ),
        _bench(
            "433.milc", "stream+loop", 8.0,
            (0.7, _stream()),
            (0.3, _loop(1.6, noise=0.4)),
        ),
        _bench(
            "434.zeusmp", "loop+stream", 30.0,
            (0.7, _loop(0.85)),
            (0.3, _stream()),
        ),
        _bench("435.gromacs", "friendly", 150.0, (1.0, _friendly(0.3))),
        _bench(
            "436.cactusADM", "thrash", 10.0,
            (0.7, _loop(1.3, noise=0.45)),
            (0.3, _loop(1.15, noise=0.45)),
        ),
        _bench(
            "437.leslie3d", "big-loop+stream", 12.0,
            (0.6, _loop(1.8, noise=0.4)),
            (0.4, _stream()),
        ),
        _bench("444.namd", "friendly", 200.0, (1.0, _friendly(0.2))),
        _bench(
            "445.gobmk", "friendly+scans", 100.0,
            (0.6, _friendly(0.55)),
            (0.4, _scans(0.4, 0.3)),
        ),
        # Low intensity: the paper's dealII shows a *large relative* miss
        # increase under non-LRU policies but only a ~3% performance loss.
        _bench(
            "447.dealII", "lru-friendly-band", 400.0,
            (1.0, _lru_friendly_band(0.6, 0.95, cold=0.18)),
        ),
        _bench(
            "450.soplex", "uniform+loop", 8.0,
            (0.5, _uniform(2.0)),
            (0.5, _loop(1.2, noise=0.45)),
        ),
        _bench("453.povray", "tiny-ws", 500.0, (1.0, _friendly(0.05))),
        _bench("454.calculix", "friendly", 250.0, (1.0, _friendly(0.25))),
        _bench(
            "456.hmmer", "phase-alternating", 50.0,
            (1.0, _phased(_friendly(0.4), _loop(1.25, noise=0.4), _friendly(0.35), _loop(1.2, noise=0.4))),
        ),
        _bench("458.sjeng", "friendly", 300.0, (1.0, _friendly(0.3))),
        _bench(
            "459.GemsFDTD", "stream+big-loop", 10.0,
            (0.6, _stream()),
            (0.4, _loop(3.0, noise=0.35)),
        ),
        _bench("462.libquantum", "scan-loop", 6.0, (1.0, _loop(2.5, noise=0.3))),
        _bench(
            "464.h264ref", "friendly+scans", 80.0,
            (0.7, _friendly(0.5)),
            (0.3, _scans(0.35, 0.25)),
        ),
        _bench("465.tonto", "friendly", 200.0, (1.0, _friendly(0.3))),
        _bench(
            "470.lbm", "stream+loop", 8.0,
            (0.75, _stream()),
            (0.25, _loop(1.4, noise=0.4)),
        ),
        _bench(
            "471.omnetpp", "chase-local", 10.0,
            (1.0, _chase(4.0, 0.4)),
        ),
        _bench(
            "473.astar", "chase", 20.0,
            (0.6, _chase(2.0, 0.3)),
            (0.4, _chase(3.0, 0.2)),
        ),
        _bench(
            "481.wrf", "loop+stream", 40.0,
            (0.7, _loop(0.8)),
            (0.3, _stream()),
        ),
        _bench(
            "482.sphinx3", "thrash+hot", 10.0,
            (0.7, _loop(1.15, noise=0.4)),
            (0.3, _blend(_loop(1.2, noise=0.4), _friendly(0.2))),
        ),
        _bench(
            "483.xalancbmk", "phased-scans", 25.0,
            (1.0, _phased(_scans(0.45, 0.5), _friendly(0.4), _scans(0.3, 0.6))),
        ),
    ]
}


def benchmark_names() -> List[str]:
    """All benchmark names in suite order."""
    return list(SPEC_BENCHMARKS)


def get_benchmark(name: str) -> SpecBenchmark:
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {', '.join(SPEC_BENCHMARKS)}"
        ) from None
