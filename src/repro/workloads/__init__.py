"""Synthetic SPEC CPU 2006 stand-in workload suite and multi-core mixes."""

from .mixes import MULTICORE_MIXES, get_mix, mix_names
from .seeding import derive_seed, resolve_seed, spec_digest
from .spec import SPEC_BENCHMARKS, Simpoint, SpecBenchmark, benchmark_names, get_benchmark

__all__ = [
    "SPEC_BENCHMARKS",
    "Simpoint",
    "SpecBenchmark",
    "benchmark_names",
    "get_benchmark",
    "MULTICORE_MIXES",
    "get_mix",
    "mix_names",
    "derive_seed",
    "resolve_seed",
    "spec_digest",
]
