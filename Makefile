# Convenience targets for the PseudoLRU insertion/promotion reproduction.

PYTHON ?= python

.PHONY: install test test-report bench bench-quick bench-kernels bench-serving conformance conformance-full regen-goldens smoke-parallel smoke-obs smoke-kernels smoke-analytics smoke-surrogate smoke-serving smoke-slo trend-check figures report wn-vectors examples clean

# Targets that run pytest / the library directly need the src layout on the
# import path; the smoke scripts insert it themselves but inherit it too.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s 2>&1 | tee bench_output.txt

bench-quick:
	REPRO_SCALE=0.4 $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Differential conformance gate: every registered policy against its
# reference oracle over the deterministic stream family, plus the
# per-access invariant battery, LUT-vs-walk kernel identity, Belady
# dominance and the committed golden corpus.  Non-zero exit on any
# divergence or golden drift.  `conformance` is the fast CI gate;
# `conformance-full` runs the default fuzz budget and writes a report
# with a provenance manifest sidecar.
conformance:
	$(PYTHON) -m repro.cli verify --all --quick

conformance-full:
	$(PYTHON) -m repro.cli verify --all --report results/conformance.json

# Deliberate, audited regeneration of the golden miss-count corpus.
regen-goldens:
	$(PYTHON) scripts/regen_goldens.py

# Transition-table kernel throughput: accesses/sec LUT vs bit-walk for
# k in {4,8,16}, the columnar GA-population batch, plus GA-generation wall
# time, written to BENCH_kernels.json
# (with a provenance manifest sidecar) at the repository root.  Each run
# also appends a perf-trend entry to BENCH_history.jsonl keyed by git
# revision (`repro obs trend` inspects it; `--no-history` to skip).
bench-kernels:
	$(PYTHON) benchmarks/bench_kernel_throughput.py

# Streaming serving-scenario throughput: the sharded columnar front-end
# on a churning flash-crowd Zipf stream vs the per-access scalar loop,
# with a tracemalloc flat-memory pass and a {1,2,4} shard sweep, written
# to BENCH_serving.json (manifest sidecar alongside) and appended to the
# BENCH_history.jsonl perf trend as the `bench-serving` series.
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Soft perf-regression gate: compare the newest BENCH_history.jsonl entry
# against its predecessor; non-zero exit past the threshold (15% default).
trend-check:
	$(PYTHON) -m repro.cli obs trend --check

# Fast check that the parallel runner matches the serial path bit-for-bit
# and that a warm cache rerun performs zero simulations.
smoke-parallel:
	$(PYTHON) scripts/smoke_parallel.py

# End-to-end observability check: a traced run's JSONL validates against
# the event schema and replays to the untraced counts, the Prometheus
# export parses, a provenance manifest is written, and disabled tracing
# stays within its 5% hot-path overhead budget.
smoke-obs:
	$(PYTHON) scripts/smoke_obs.py

# Fast kernel sanity: tables compile (and the compile cache hits), LUT and
# bit-walk miss counts are bit-identical on a randomized stream, the LUT
# path is >=2x faster at k=16, and policy CacheStats agree lut-vs-walk.
smoke-kernels:
	$(PYTHON) scripts/smoke_kernels.py

# Cache-dynamics analytics check: the vectorized Mattson profiler is
# bit-identical to the trace.analysis oracles (random + SPEC-archetype
# streams), columnar engine counters reconcile exactly with scalar
# CacheStats (batch and duel), the metrics/manifest/event flush surfaces
# validate, and counters=True stays within its 5% overhead budget.
smoke-analytics:
	$(PYTHON) scripts/smoke_analytics.py

# Surrogate prefilter check: the analytic IPV miss-rate model reaches
# the Spearman-rho audit floor on its native LRU substrate, kept
# survivors carry bit-identical simulated fitness, the cross-generation
# memo serves repeated batches with zero simulator calls, a prefiltered
# GA run recovers the unfiltered best, and scoring a 20k population
# takes seconds.
smoke-surrogate:
	$(PYTHON) scripts/smoke_surrogate.py

# Serving-scenario check: sharded front-end miss counts are bit-identical
# across shard counts and engines to a single-cache scalar reference, the
# run_serving report/manifest/status schema holds, seed=None derivation
# is deterministic, and a bounded ingest queue sheds load visibly.
smoke-serving:
	$(PYTHON) scripts/smoke_serving.py

# Serving SLO-telemetry check: a mid-run scrape of the OpenMetrics
# endpoint returns parseable text with per-shard p99 and windowed
# hit-rate gauges, drift detection fires on an injected hot-set flip and
# stays quiet on a stationary stream, attaching telemetry stays within
# the 5% drain-loop overhead budget, and `repro serve --slo-strict`
# exits non-zero on a violated SLO.
smoke-slo:
	$(PYTHON) scripts/smoke_slo.py

figures:
	$(PYTHON) scripts/export_results.py --outdir results

report:
	$(PYTHON) scripts/make_report.py --out results/REPORT.md

wn-vectors:
	$(PYTHON) scripts/evolve_wn1_vectors.py

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script || exit 1; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
