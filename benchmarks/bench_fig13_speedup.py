"""Figure 13 (and the paper's headline numbers): speedup over LRU.

Runs DRRIP, PDP and 4-DGIPPR over the full suite and reports geomean
speedups plus the memory-intensive subset (benchmarks where DRRIP gains
over 1%, Section 5.1).

Paper numbers: 4-DGIPPR +5.61%, DRRIP +5.41%, PDP +5.69% overall;
15.6% / 15.6% / 16.4% on the memory-intensive subset — three policies in
one band, with DGIPPR at less than half of DRRIP's state budget.
"""

from conftest import print_header

from repro.eval import PolicySpec, run_suite, speedup_table


def run_experiment(config, workers, cache=None):
    suite = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("4-DGIPPR", "dgippr"),
        ],
        config=config,
        workers=workers,
        cache=cache,
    )
    print(f"\n[repro-eval] {suite.metrics.summary()}")
    return suite


def test_fig13_speedup(benchmark, bench_config, workers, cache):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers, cache),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["runner_metrics"] = suite.metrics.as_dict()
    print_header("Figure 13: speedup over LRU (sorted by DRRIP, per paper)")
    print(speedup_table(suite))
    drrip = suite.geomean_speedup("DRRIP")
    pdp = suite.geomean_speedup("PDP")
    dgippr = suite.geomean_speedup("4-DGIPPR")
    print(f"\n  geomeans: 4-DGIPPR {dgippr:.4f} (paper 1.0561), "
          f"DRRIP {drrip:.4f} (paper 1.0541), PDP {pdp:.4f} (paper 1.0569)")

    subset = suite.memory_intensive()
    from repro.eval import memory_intensive_summary

    print()
    print("  " + memory_intensive_summary(
        suite, labels=("DRRIP", "PDP", "4-DGIPPR")
    ).replace("\n", "\n  "))
    print("    (paper: DRRIP 1.156, PDP 1.164, DGIPPR 1.156)")
    benchmark.extra_info.update(
        drrip=drrip, pdp=pdp, dgippr4=dgippr,
        subset=[str(b) for b in subset],
    )
    # All three beat LRU and sit within a band of each other.
    assert min(drrip, pdp, dgippr) > 1.0
    assert max(drrip, pdp, dgippr) / min(drrip, pdp, dgippr) < 1.05
    # Gains concentrate in the subset.
    assert suite.geomean_speedup("4-DGIPPR", benchmarks=subset) > dgippr


def test_fig13_consistency(benchmark, bench_config, workers, cache):
    """Section 5.2.2: DGIPPR's worst-case benchmark stays close to LRU
    (>99% for everything but dealII in the paper)."""
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers, cache),
        rounds=1, iterations=1,
    )
    speedups = suite.speedups("4-DGIPPR")
    below = sorted(
        (b for b, s in speedups.items() if s < 0.99), key=speedups.get
    )
    print_header("Figure 13 check: benchmarks where 4-DGIPPR < 0.99 of LRU")
    for b in below:
        print(f"  {b}: {speedups[b]:.4f}")
    assert len(below) <= 3  # the paper has exactly one (447.dealII)
    assert "447.dealII" in below or not below
