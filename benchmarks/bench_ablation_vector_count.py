"""Ablation (Section 3.5): how many duelled vectors are worth having?

The paper: "extending beyond four vectors yields diminishing returns, so
in this research we limit the number of evolved vectors to four."  This
bench duels 1, 2, 4 and 8 vectors (8 uses the generalized bracket
selector) built from the published vector sets and reports geomean
speedups over LRU.

Expected shape: 2 and 4 clearly above 1 (static); 8 within noise of 4 —
no step up comparable to the 1 -> 2 or 2 -> 4 moves.
"""

from conftest import print_header

from repro.core.vectors import (
    DGIPPR2_WI_VECTORS,
    DGIPPR4_WI_VECTORS,
    GIPPR_WI_VECTOR,
    GIPPR_WN1_PERLBENCH,
    LIP16,
)
from repro.eval import PolicySpec, run_suite

EIGHT = DGIPPR4_WI_VECTORS + DGIPPR2_WI_VECTORS + [GIPPR_WN1_PERLBENCH, LIP16]


def run_experiment(config, workers):
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("1-vector", "gippr", {"ipv": GIPPR_WI_VECTOR}),
            PolicySpec("2-vector", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-vector", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("8-vector", "dgippr", {"ipvs": EIGHT}),
        ],
        config=config,
        workers=workers,
    )


def test_ablation_vector_count(benchmark, bench_config, workers):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers), rounds=1, iterations=1
    )
    print_header("Ablation: duelled vector count (Section 3.5)")
    results = {}
    for label in ("1-vector", "2-vector", "4-vector", "8-vector"):
        results[label] = suite.geomean_speedup(label)
        print(f"  {label}: geomean speedup {results[label]:.4f}")
    gain_1_to_4 = results["4-vector"] - results["1-vector"]
    gain_4_to_8 = results["8-vector"] - results["4-vector"]
    print(f"\n  1->4 vector gain: {gain_1_to_4:+.4f}")
    print(f"  4->8 vector gain: {gain_4_to_8:+.4f} (diminishing returns)")
    benchmark.extra_info.update({k.replace("-", "_"): v for k, v in results.items()})
    assert all(v > 1.0 for v in results.values())
    # Beyond four vectors, the improvement collapses (may even be negative:
    # more leader sets run losing policies).
    assert gain_4_to_8 < max(gain_1_to_4, 0.01)
