"""Extension (future work item 6): high effective associativity via zCache.

The paper wants high-associativity insertion/promotion and points at the
zCache as the structure that "provides high effective associativity with
low overhead".  This bench measures the zCache substrate: 4 physical ways
with replacement-walk depths 1-3 against conventional set-associative
caches of 4/8/16 ways at equal capacity, on an index-conflicting workload.

Expected shape: miss rate drops with walk depth; depth >= 2 beats the
4-way conventional cache decisively and approaches 16-way quality.
"""

import random

from conftest import print_header

from repro.cache import SetAssociativeCache
from repro.cache.zcache import ZCache
from repro.policies import TrueLRUPolicy

CAPACITY = 1024


def conflict_trace(n, seed=7):
    """A working set that collides in conventional index bits."""
    rng = random.Random(seed)
    hot = [(i % 64) + 256 * (i // 64) for i in range(900)]
    return [rng.choice(hot) for _ in range(n)]


def run_experiment(n):
    trace = conflict_trace(n)
    results = {}
    for depth in (1, 2, 3):
        z = ZCache(CAPACITY // 4, 4, depth=depth)
        for a in trace:
            z.access(a)
        results[f"zcache-d{depth}"] = z.stats.miss_rate
    for assoc in (4, 8, 16):
        num_sets = CAPACITY // assoc
        cache = SetAssociativeCache(
            num_sets, assoc, TrueLRUPolicy(num_sets, assoc), block_size=1
        )
        for a in trace:
            cache.access(a)
        results[f"setassoc-{assoc}w"] = cache.stats.miss_rate
    return results


def test_ext_zcache(benchmark):
    results = benchmark.pedantic(run_experiment, args=(50_000,), rounds=1,
                                 iterations=1)
    print_header("Extension: zCache effective associativity (conflict workload)")
    for label, rate in results.items():
        print(f"  {label:<12} miss rate {rate:.4f}")
    benchmark.extra_info.update(results)
    assert results["zcache-d2"] <= results["zcache-d1"] + 1e-6
    assert results["zcache-d2"] < results["setassoc-4w"] * 0.6
    assert results["zcache-d3"] <= results["setassoc-16w"] * 1.3
