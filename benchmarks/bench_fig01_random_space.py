"""Figure 1: random exploration of the IPV design space.

The paper samples 15,000 uniformly random IPVs, scores each with the
linear-CPI fitness, and sorts the speedups.  Expected shape: the large
majority of random vectors are inferior to LRU, with a thin winning tail
reaching a few percent speedup.

Paper reference: Figure 1 / Section 4.1 (best random point ~ +2.8%).
"""

from conftest import print_header

from repro.ga import FitnessEvaluator, random_search

#: SPEC is dominated by recency-friendly behaviour — random IPVs wreck
#: promotion ordering there, which is what drives Figure 1's "most points
#: lose" shape.  The sample therefore leans friendly (as SPEC does), with a
#: thrash benchmark and a pointer-chaser for the winning tail.
TRAINING = [
    "447.dealII",
    "400.perlbench",
    "445.gobmk",
    "464.h264ref",
    "483.xalancbmk",
    "453.povray",
    "401.bzip2",
    "473.astar",
]

SAMPLES = 400


def run_experiment(config):
    evaluator = FitnessEvaluator(TRAINING, config=config, substrate="plru")
    results = random_search(evaluator, samples=SAMPLES, seed=42)
    scores = [score for score, _ in results]
    lru_fitness = 1.0  # fitness is speedup over LRU by construction
    losers = sum(1 for s in scores if s < lru_fitness)
    return scores, losers, results[-1]


def test_fig01_random_design_space(benchmark, ga_config):
    scores, losers, (best_score, best_ipv) = benchmark.pedantic(
        run_experiment, args=(ga_config,), rounds=1, iterations=1
    )
    print_header("Figure 1: sorted random IPV design-space sample")
    deciles = [scores[int(q * (len(scores) - 1))] for q in
               (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)]
    labels = ("min", "p10", "p25", "p50", "p75", "p90", "max")
    for label, value in zip(labels, deciles):
        print(f"  {label:>4}: {value:.4f}")
    print(f"  random IPVs losing to LRU: {losers}/{len(scores)} "
          f"({losers / len(scores):.0%})")
    print(f"  best random vector: {list(best_ipv.entries)} -> {best_score:.4f}")
    print("  paper shape: most points < 1.0, best tail a few percent above")
    benchmark.extra_info["losers_fraction"] = losers / len(scores)
    benchmark.extra_info["best_speedup"] = best_score
    assert losers > len(scores) // 2  # most random vectors lose to LRU
    assert best_score > 1.0  # but the tail wins
