"""Figures 2 and 3: transition graphs for LRU and the GIPLR vector.

These figures are structural, not measured: the bench regenerates the DOT
sources and checks the edges the paper describes (LRU: everything promotes
to MRU and inserts at MRU; GIPLR: insertion at 13, LRU-position hits
promote to 11).
"""

from conftest import print_header

from repro.core.ipv import lru_ipv
from repro.core.vectors import GIPLR_VECTOR
from repro.viz import transition_dot, transition_text


def run_experiment():
    lru_dot = transition_dot(lru_ipv(16), title="Figure 2: LRU")
    giplr_dot = transition_dot(GIPLR_VECTOR, title="Figure 3: GIPLR")
    return lru_dot, giplr_dot


def test_fig02_03_transition_graphs(benchmark):
    lru_dot, giplr_dot = benchmark(run_experiment)
    print_header("Figures 2/3: transition graphs (DOT regenerated)")
    print(transition_text(lru_ipv(16)))
    print()
    print(transition_text(GIPLR_VECTOR))
    # Figure 2 structure: LRU inserts and promotes to MRU.
    assert "insertion -> 0;" in lru_dot
    # Figure 3 structure: insertion at 13, position 15 promotes to 11.
    assert "insertion -> 13;" in giplr_dot
    assert "15 -> 11;" in giplr_dot
    benchmark.extra_info["giplr_vector"] = list(GIPLR_VECTOR.entries)
