"""Section 3.6: replacement-state overhead comparison.

Regenerates the paper's storage accounting for a 4MB 16-way LLC:
GIPPR/DGIPPR 15 bits/set (~7KB), DRRIP 2 bits/block (16KB), PDP 4
bits/block (32KB + microcontroller), LRU 4 bits/block (32KB), plus DIP and
SHiP for context.  DGIPPR adds only 33 bits of PSEL counters per cache.
"""

import pytest
from conftest import print_header

from repro.eval import format_overhead, overhead_row, overhead_table


def test_overhead_table(benchmark):
    rows = benchmark(overhead_table)
    print_header("Section 3.6: replacement state at 4MB / 16-way / 64B")
    print(format_overhead(rows))
    by_name = {r["policy"]: r for r in rows}
    # The paper's exact claims:
    assert by_name["gippr"]["bits_per_set"] == 15
    assert by_name["gippr"]["bits_per_block"] < 1.0  # "<1 bit per block"
    assert by_name["lru"]["total_kilobytes"] == pytest.approx(32.0)
    assert by_name["drrip"]["total_kilobytes"] == pytest.approx(16.0, abs=0.01)
    assert by_name["4-dgippr"]["global_bits"] == 33
    # "consume more than twice the area of our technique"
    assert by_name["drrip"]["total_kilobytes"] > 2 * by_name["gippr"]["total_kilobytes"]
    assert by_name["pdp"]["total_kilobytes"] > 4 * by_name["gippr"]["total_kilobytes"]
    benchmark.extra_info["gippr_kb"] = by_name["gippr"]["total_kilobytes"]
    benchmark.extra_info["drrip_kb"] = by_name["drrip"]["total_kilobytes"]


def test_overhead_scales_with_geometry(benchmark):
    """The per-set costs are geometry-invariant; totals scale with sets."""
    small = benchmark(lambda: overhead_row("gippr", num_sets=64))
    assert small["bits_per_set"] == 15
    assert small["total_kilobytes"] == pytest.approx(15 * 64 / 8 / 1024)
