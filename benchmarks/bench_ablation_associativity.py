"""Ablation (future work item 6): IPV policies across associativities.

The paper evaluates only 16-way caches and lists high-associativity
behaviour as future work.  This bench runs PLRU-insertion IPVs at k = 4,
8, 16 and 32 (capacity held constant) on a thrash-plus-noise workload and
reports the miss reduction vs LRU.

Expected shape: the insertion-policy benefit exists at every associativity
and grows with k (more positions to exploit between PMRU and PLRU).
"""

from conftest import print_header

from repro.cache import SetAssociativeCache
from repro.core.ipv import IPV, lru_ipv
from repro.policies import GIPPRPolicy, TrueLRUPolicy
from repro.trace import noisy_loop

CAPACITY = 1024


def run_experiment(trace_length):
    trace = noisy_loop(
        working_set=int(CAPACITY * 1.35), n=trace_length, noise=0.35, seed=3
    )
    pairs = trace.address_list(), trace.pc_list()
    results = {}
    for assoc in (4, 8, 16, 32):
        num_sets = CAPACITY // assoc
        plru_insert = IPV([0] * assoc + [assoc - 1], name=f"plru-ins-{assoc}")
        misses = {}
        for label, policy in (
            ("lru", TrueLRUPolicy(num_sets, assoc)),
            ("gippr", GIPPRPolicy(num_sets, assoc, ipv=plru_insert)),
        ):
            cache = SetAssociativeCache(num_sets, assoc, policy, block_size=1)
            for address, pc in zip(*pairs):
                cache.access(address, pc=pc)
            misses[label] = cache.stats.misses
        results[assoc] = 1.0 - misses["gippr"] / misses["lru"]
    return results


def test_ablation_associativity(benchmark):
    results = benchmark.pedantic(
        run_experiment, args=(60_000,), rounds=1, iterations=1
    )
    print_header("Ablation: PLRU-insertion benefit across associativity")
    for assoc, saved in results.items():
        print(f"  {assoc:>2}-way: {saved:.1%} fewer misses than LRU")
    benchmark.extra_info.update({f"k{k}": v for k, v in results.items()})
    # The benefit exists everywhere and does not collapse at high k.
    assert all(saved > 0.02 for saved in results.values())
    assert results[32] >= results[4] * 0.5


def test_ipv_lengths_scale_with_associativity(benchmark):
    """IPV machinery works at every power-of-two k (structural check)."""

    def build_all():
        return [lru_ipv(k) for k in (2, 4, 8, 16, 32, 64)]

    vectors = benchmark(build_all)
    assert [v.k for v in vectors] == [2, 4, 8, 16, 32, 64]
