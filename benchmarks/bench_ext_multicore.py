"""Extension (future work item 4): DGIPPR on a shared multi-core LLC.

The paper demonstrates DGIPPR on single-threaded workloads and leaves
multi-core to future work.  This bench co-schedules two-benchmark mixes on
one shared LLC and compares LRU against 4-DGIPPR on weighted speedup
normalized to LRU-alone.

Expected shape: DGIPPR's advantage survives sharing — the set-dueling
monitor sees the union of the cores' traffic and still finds the winning
vector, so weighted speedup improves on thrash-containing mixes.
"""

from conftest import print_header

from repro.eval import default_config, run_multicore

MIXES = [
    ("436.cactusADM", "482.sphinx3"),
    ("429.mcf", "453.povray"),
    ("462.libquantum", "447.dealII"),
    ("450.soplex", "403.gcc"),
]


def run_experiment(trace_length):
    config = default_config(trace_length=trace_length)
    out = {}
    for mix in MIXES:
        lru = run_multicore("lru", mix, config=config, alone_policy="lru")
        dgippr = run_multicore(
            "dgippr", mix, config=config, alone_policy="lru"
        )
        out[mix] = (lru.weighted_speedup, dgippr.weighted_speedup)
    return out


def test_ext_multicore(benchmark):
    results = benchmark.pedantic(
        run_experiment, args=(12_000,), rounds=1, iterations=1
    )
    print_header("Extension: shared-LLC weighted speedup (normalized to LRU-alone)")
    print(f"  {'mix':<32} {'LRU':>7} {'4-DGIPPR':>9}")
    wins = 0
    for mix, (lru_ws, dgippr_ws) in results.items():
        label = " + ".join(m.split(".")[1] for m in mix)
        print(f"  {label:<32} {lru_ws:>7.3f} {dgippr_ws:>9.3f}")
        if dgippr_ws > lru_ws:
            wins += 1
    print(f"\n  mixes where 4-DGIPPR improves weighted speedup: "
          f"{wins}/{len(MIXES)}")
    benchmark.extra_info["wins"] = wins
    assert wins >= len(MIXES) // 2 + 1
