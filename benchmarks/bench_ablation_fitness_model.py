"""Ablation (future work item 2): linear vs MLP-aware fitness.

The paper's fitness "cannot take into account the effects of memory-level
parallelism" and lists MLP-awareness as future work; it blames this for
cases where workload-inclusive vectors lose to workload-neutral ones.
This bench scores the same policies under both CPI models.

Expected shape: the MLP-aware model compresses speedups (clustered misses
are cheaper, so saving them is worth less) but preserves the policy
ordering on thrash-dominated workloads.
"""

from conftest import print_header

from repro.eval import PolicySpec, default_config, run_suite
from repro.eval.runner import run_benchmark
from repro.timing import LinearCPIModel, MLPAwareCPIModel
from repro.workloads import get_benchmark

BENCHES = ["462.libquantum", "436.cactusADM", "429.mcf", "482.sphinx3"]
POLICIES = ["lru", "drrip", "dgippr"]


def run_experiment(config):
    linear = LinearCPIModel()
    mlp = MLPAwareCPIModel()
    out = {}
    for bench_name in BENCHES:
        bench = get_benchmark(bench_name)
        cells = {}
        for policy in POLICIES:
            result = run_benchmark(
                policy, bench, config, collect_miss_positions=True
            )
            cells[policy] = result
        lru_runs = cells["lru"].runs
        for policy in POLICIES[1:]:
            runs = cells[policy].runs
            linear_speedup = 0.0
            mlp_speedup = 0.0
            for lru_run, run, weight in zip(
                lru_runs, runs, bench.weights()
            ):
                linear_speedup += weight * linear.speedup(
                    run.instructions, lru_run.misses, run.misses
                )
                mlp_speedup += weight * mlp.speedup(
                    run.instructions,
                    lru_run.miss_positions,
                    run.miss_positions,
                )
            out[(bench_name, policy)] = (linear_speedup, mlp_speedup)
    return out


def test_ablation_fitness_model(benchmark):
    config = default_config(trace_length=12_000)
    results = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    print_header("Ablation: linear-CPI vs MLP-aware CPI speedups")
    print(f"  {'benchmark':<16} {'policy':<8} {'linear':>8} {'MLP-aware':>10}")
    orderings_preserved = 0
    comparisons = 0
    for (bench_name, policy), (lin, mlp) in sorted(results.items()):
        print(f"  {bench_name:<16} {policy:<8} {lin:>8.4f} {mlp:>10.4f}")
    for bench_name in BENCHES:
        lin_order = sorted(
            POLICIES[1:], key=lambda p: results[(bench_name, p)][0]
        )
        mlp_order = sorted(
            POLICIES[1:], key=lambda p: results[(bench_name, p)][1]
        )
        comparisons += 1
        if lin_order == mlp_order:
            orderings_preserved += 1
    print(f"\n  policy orderings preserved: {orderings_preserved}/{comparisons}")
    benchmark.extra_info["orderings_preserved"] = orderings_preserved
    assert orderings_preserved >= comparisons - 1
    # The MLP model must compress (not flip) the large thrash gains.
    for bench_name in BENCHES:
        lin, mlp = results[(bench_name, "dgippr")]
        if lin > 1.05:
            assert mlp > 1.0
