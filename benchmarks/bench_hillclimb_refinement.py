"""Section 2.6: hill-climbing refinement of an evolved vector.

The paper observes the GA's GIPLR vector is not locally optimal (zeroing
its first twelve entries nudges the speedup from 3.10% to 3.12%) and
proposes hill climbing as the refinement.  This bench climbs from the
published GIPLR vector under the linear-CPI fitness.

Expected shape: a small but non-negative fitness improvement — the GA got
close to a local optimum but not onto it.
"""

from conftest import print_header

from repro.core.vectors import GIPLR_VECTOR
from repro.ga import FitnessEvaluator, hill_climb

TRAINING = [
    "462.libquantum",
    "436.cactusADM",
    "447.dealII",
    "429.mcf",
    "400.perlbench",
    "483.xalancbmk",
]


def run_experiment(config):
    evaluator = FitnessEvaluator(TRAINING, config=config, substrate="lru")
    return hill_climb(
        evaluator,
        GIPLR_VECTOR,
        candidate_values=[0, 1, 4, 8, 11, 13, 15],
        max_passes=1,
    )


def test_hillclimb_refinement(benchmark, ga_config):
    result = benchmark.pedantic(
        run_experiment, args=(ga_config,), rounds=1, iterations=1
    )
    print_header("Section 2.6: hill climbing from the published GIPLR vector")
    print(f"  start fitness:   {result.start_fitness:.4f}")
    print(f"  refined fitness: {result.best_fitness:.4f} "
          f"({result.improvement:+.4f})")
    print(f"  improving steps: {len(result.steps)} "
          f"in {result.evaluations} evaluations")
    for index, value, fitness in result.steps[:8]:
        print(f"    V[{index}] -> {value}  (fitness {fitness:.4f})")
    print("  paper: refinement moved 3.10% -> 3.12% — small, non-negative")
    benchmark.extra_info.update(
        start=result.start_fitness, refined=result.best_fitness
    )
    assert result.improvement >= 0.0
