"""Figure 10, honest-WN1 variant: locally evolved workload-neutral vectors.

The main Figure 10 bench uses the paper's published WI vectors.  This bench
runs the *actual WN1 methodology* (Section 4.4): each benchmark is
evaluated with 1-, 2- and 4-vector sets evolved by our GA with that
benchmark held out of training.  It requires the data file produced by
``scripts/evolve_wn1_vectors.py`` and skips if it is absent.

Expected shapes: all three WN1 configurations below 1.0 of LRU's misses;
the dynamic versions at or below the static vector; close to the
WI-vector results (Figure 12's point).
"""

import pytest
from conftest import print_header

from repro.core.vectors import load_wn1_vectors
from repro.eval import ParallelRunner, geometric_mean
from repro.workloads import benchmark_names

VECTOR_COUNTS = (1, 2, 4)


def run_experiment(config, wn1, workers=0, cache=None):
    """Held-out per-benchmark evaluation via the cached parallel runner.

    Every (benchmark, vector set) cell goes through
    :meth:`ParallelRunner.run_benchmark`, so repeated figure builds hit
    the on-disk result cache and the LRU baselines are shared with the
    other figure benches.
    """
    runner = ParallelRunner(workers=workers, cache=cache, progress=False)
    norm = {count: {} for count in VECTOR_COUNTS}
    for bench_name in benchmark_names():
        lru = runner.run_benchmark("lru", bench_name, config)
        for count in VECTOR_COUNTS:
            vectors = wn1[bench_name][count]
            if count == 1:
                result = runner.run_benchmark(
                    "gippr", bench_name, config,
                    policy_kwargs={"ipv": vectors[0]},
                )
            else:
                result = runner.run_benchmark(
                    "dgippr", bench_name, config,
                    policy_kwargs={"ipvs": vectors},
                )
            norm[count][bench_name] = (
                result.mpki / lru.mpki if lru.mpki > 1e-9 else 1.0
            )
    print(f"\n[repro-eval] {runner.metrics.summary()}")
    return norm


def test_fig10_wn1_honest(benchmark, bench_config, workers, cache):
    wn1 = load_wn1_vectors()
    missing = [b for b in benchmark_names() if b not in wn1]
    if not wn1 or missing:
        pytest.skip(
            "no WN1 vector data; run scripts/evolve_wn1_vectors.py first"
        )
    norm = benchmark.pedantic(
        run_experiment, args=(bench_config, wn1, workers, cache),
        rounds=1, iterations=1,
    )
    print_header("Figure 10 (honest WN1): MPKI normalized to LRU")
    geo = {}
    for count in VECTOR_COUNTS:
        geo[count] = geometric_mean(
            max(v, 1e-6) for v in norm[count].values()
        )
        label = "WN1-GIPPR" if count == 1 else f"WN1-{count}-DGIPPR"
        paper = {1: 0.952, 2: 0.965, 4: 0.910}[count]
        print(f"  {label:<14} geomean {geo[count]:.3f} (paper {paper})")
    benchmark.extra_info.update({f"wn1_{c}": geo[c] for c in VECTOR_COUNTS})
    for count in VECTOR_COUNTS:
        assert geo[count] < 1.0  # every WN1 configuration beats LRU
    # Dynamic selection does not lose to the static vector.
    assert min(geo[2], geo[4]) <= geo[1] + 0.02
