"""Figure 10, honest-WN1 variant: locally evolved workload-neutral vectors.

The main Figure 10 bench uses the paper's published WI vectors.  This bench
runs the *actual WN1 methodology* (Section 4.4): each benchmark is
evaluated with 1-, 2- and 4-vector sets evolved by our GA with that
benchmark held out of training.  It requires the data file produced by
``scripts/evolve_wn1_vectors.py`` and skips if it is absent.

Expected shapes: all three WN1 configurations below 1.0 of LRU's misses;
the dynamic versions at or below the static vector; close to the
WI-vector results (Figure 12's point).
"""

import pytest
from conftest import print_header

from repro.core.vectors import load_wn1_vectors
from repro.eval import geometric_mean
from repro.eval.runner import run_benchmark
from repro.workloads import SPEC_BENCHMARKS, benchmark_names

VECTOR_COUNTS = (1, 2, 4)


def run_experiment(config, wn1):
    norm = {count: {} for count in VECTOR_COUNTS}
    for bench_name in benchmark_names():
        benchmark = SPEC_BENCHMARKS[bench_name]
        lru = run_benchmark("lru", benchmark, config)
        for count in VECTOR_COUNTS:
            vectors = wn1[bench_name][count]
            if count == 1:
                result = run_benchmark(
                    "gippr", benchmark, config,
                    policy_kwargs={"ipv": vectors[0]},
                )
            else:
                result = run_benchmark(
                    "dgippr", benchmark, config,
                    policy_kwargs={"ipvs": vectors},
                )
            norm[count][bench_name] = (
                result.mpki / lru.mpki if lru.mpki > 1e-9 else 1.0
            )
    return norm


def test_fig10_wn1_honest(benchmark, bench_config):
    wn1 = load_wn1_vectors()
    missing = [b for b in benchmark_names() if b not in wn1]
    if not wn1 or missing:
        pytest.skip(
            "no WN1 vector data; run scripts/evolve_wn1_vectors.py first"
        )
    norm = benchmark.pedantic(
        run_experiment, args=(bench_config, wn1), rounds=1, iterations=1
    )
    print_header("Figure 10 (honest WN1): MPKI normalized to LRU")
    geo = {}
    for count in VECTOR_COUNTS:
        geo[count] = geometric_mean(
            max(v, 1e-6) for v in norm[count].values()
        )
        label = "WN1-GIPPR" if count == 1 else f"WN1-{count}-DGIPPR"
        paper = {1: 0.952, 2: 0.965, 4: 0.910}[count]
        print(f"  {label:<14} geomean {geo[count]:.3f} (paper {paper})")
    benchmark.extra_info.update({f"wn1_{c}": geo[c] for c in VECTOR_COUNTS})
    for count in VECTOR_COUNTS:
        assert geo[count] < 1.0  # every WN1 configuration beats LRU
    # Dynamic selection does not lose to the static vector.
    assert min(geo[2], geo[4]) <= geo[1] + 0.02
