"""Figure 11: normalized MPKI — 4-DGIPPR vs DRRIP vs PDP (and MIN).

Paper numbers: DRRIP 91.5%, PDP 90.2%, WN1-4-DGIPPR 91.0% of LRU misses —
three policies within a point of each other, with DGIPPR using less than
half of DRRIP's replacement state.  447.dealII is the outlier where all
three increase misses over LRU.
"""

from conftest import print_header

from repro.eval import PolicySpec, normalized_mpki_table, run_suite


def run_experiment(config, workers):
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("4-DGIPPR", "dgippr"),
            PolicySpec("MIN", "belady"),
        ],
        config=config,
        workers=workers,
    )


def test_fig11_normalized_mpki(benchmark, bench_config, workers):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers), rounds=1, iterations=1
    )
    print_header("Figure 11: MPKI normalized to LRU (DRRIP vs PDP vs 4-DGIPPR)")
    print(normalized_mpki_table(suite))
    drrip = suite.geomean_normalized_mpki("DRRIP")
    pdp = suite.geomean_normalized_mpki("PDP")
    dgippr = suite.geomean_normalized_mpki("4-DGIPPR")
    optimal = suite.geomean_normalized_mpki("MIN")
    print(f"\n  geomeans: DRRIP {drrip:.3f} (paper 0.915), "
          f"PDP {pdp:.3f} (paper 0.902), "
          f"4-DGIPPR {dgippr:.3f} (paper 0.910), MIN {optimal:.3f} (paper 0.675)")
    dealii = {l: suite.normalized_mpki(l)["447.dealII"] for l in
              ("DRRIP", "PDP", "4-DGIPPR")}
    print(f"  447.dealII (the outlier): {dealii}")
    benchmark.extra_info.update(drrip=drrip, pdp=pdp, dgippr4=dgippr)
    # The three practical policies land in the same band, far above MIN.
    assert max(drrip, pdp, dgippr) - min(drrip, pdp, dgippr) < 0.08
    assert optimal < min(drrip, pdp, dgippr)
    # dealII increases misses for at least the RRIP-style policies.
    assert dealii["DRRIP"] > 1.0 and dealii["4-DGIPPR"] > 1.0
