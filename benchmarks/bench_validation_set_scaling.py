"""Validation: the set-scaling substitution argument (DESIGN.md).

Every experiment in this repository runs at a scaled-down set count with
working sets scaled in proportion, on the argument that replacement
behaviour is per-set so the policy comparisons are preserved.  This bench
*tests* that argument: the same benchmarks are run at 64 and 256 sets
(workload footprints scale with capacity automatically) and the
per-benchmark speedups over LRU must agree across scales.

If this bench fails, the scaled-down numbers in every other bench are
suspect — which is why it exists.
"""

from conftest import print_header

from repro.eval import PolicySpec, default_config, run_suite

BENCHES = [
    "462.libquantum",
    "436.cactusADM",
    "447.dealII",
    "429.mcf",
    "453.povray",
    "483.xalancbmk",
]
POLICIES = [
    PolicySpec("LRU", "lru"),
    PolicySpec("DRRIP", "drrip"),
    PolicySpec("4-DGIPPR", "dgippr"),
]


def run_experiment(base_length):
    results = {}
    for num_sets in (64, 256):
        # Trace length scales with capacity so per-set pressure matches.
        config = default_config(
            num_sets=num_sets,
            trace_length=base_length * num_sets // 64,
        )
        suite = run_suite(POLICIES, config=config, benchmarks=BENCHES)
        results[num_sets] = {
            label: suite.speedups(label)
            for label in ("DRRIP", "4-DGIPPR")
        }
    return results


def test_validation_set_scaling(benchmark):
    results = benchmark.pedantic(
        run_experiment, args=(12_000,), rounds=1, iterations=1
    )
    print_header("Validation: speedups at 64 vs 256 sets (set-sampling)")
    print(f"  {'benchmark':<16} {'policy':<9} {'64 sets':>8} {'256 sets':>9}")
    worst = 0.0
    for bench in BENCHES:
        for label in ("DRRIP", "4-DGIPPR"):
            small = results[64][label][bench]
            large = results[256][label][bench]
            print(f"  {bench:<16} {label:<9} {small:>8.4f} {large:>9.4f}")
            worst = max(worst, abs(small - large) / large)
    print(f"\n  worst relative disagreement: {worst:.1%}")
    benchmark.extra_info["worst_disagreement"] = worst
    # The ordering claims survive scaling: per-benchmark speedups at the
    # two scales agree in *direction* everywhere and in magnitude within
    # 15% (set-dueling convergence and mix granularity shift magnitudes a
    # little; they never flip a winner).
    for bench in BENCHES:
        for label in ("DRRIP", "4-DGIPPR"):
            small = results[64][label][bench]
            large = results[256][label][bench]
            assert abs(small - large) <= 0.15 * max(large, 1.0), (bench, label)
            # Win/lose direction must match (with a dead zone at parity).
            if abs(large - 1.0) > 0.03:
                assert (small - 1.0) * (large - 1.0) > 0, (bench, label)