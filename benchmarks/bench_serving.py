"""Serving-scenario throughput: sharded columnar front-end vs scalar loop.

Measures the headline of :mod:`repro.serve` — sustained end-to-end
accesses/sec (generation + binning + simulation) of a churning,
flash-crowded Zipf stream through the sharded front-end — against the
per-access scalar loop (the Figure 5/7/9 bit-walk reference, one access
at a time), asserting bit-identical miss counts on a shared sample.  A
separate untimed pass replays the full stream under ``tracemalloc`` and
reports post-warm-up heap growth: the bounded-memory claim, measured.
A paired pass with SLO telemetry attached records the telemetry
throughput ratio (the >= 95 % acceptance bar of the observability PR).

Runs two ways:

* under pytest-benchmark as part of ``make bench`` (scaled down);
* as a script (``make bench-serving``), writing ``BENCH_serving.json``
  plus a provenance manifest sidecar at the repository root and
  appending a ``bench-serving`` perf-trend row (the
  ``serving_throughput_accesses_per_sec`` series) to
  ``BENCH_history.jsonl`` — ``make trend-check`` guards it.

``REPRO_SCALE`` scales the stream length as in the other benches.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

if __name__ == "__main__":  # script mode: make src importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core.ipv import lru_ipv  # noqa: E402
from repro.engine.scalar import ScalarStreamSimulator  # noqa: E402
from repro.ga.fitness import simulate_misses_plru_ipv  # noqa: E402
from repro.serve.frontend import ShardedFrontend  # noqa: E402
from repro.serve.telemetry import ServeTelemetry  # noqa: E402
from repro.serve.workload import (  # noqa: E402
    ServingSpec,
    ServingStream,
    auto_flash_phases,
)

#: Default stream length (script mode) — the ISSUE's >= 10M-access bar.
DEFAULT_ACCESSES = 10_000_000
NUM_SETS = 1024
ASSOC = 16
#: Headline shard count.  More shards mean more lockstep steps per chunk
#: (each shard sees a narrower set range), so on a single process two
#: shards is the throughput sweet spot; the shard sweep below records
#: {1, 2, 4} so the scaling story stays visible in the JSON.
SHARDS = 2
SHARD_SWEEP = (1, 2, 4)
CHUNK_ACCESSES = 1 << 16
#: Accesses in the bit-identity / scalar-baseline sample.
SAMPLE_ACCESSES = 1_000_000
ENTRIES = tuple(lru_ipv(ASSOC).entries)


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1") or "1")
    except ValueError:
        return 1.0


def bench_spec(accesses: int) -> ServingSpec:
    return ServingSpec(
        keys=1 << 15,
        alpha=1.2,
        tenants=2,
        accesses=accesses,
        churn_per_million=20_000,
        phases=auto_flash_phases(accesses, 2, share=0.5, hot_keys=64),
        seed=42,
    )


def measure_serving_throughput(
    accesses: int,
    shards: int = SHARDS,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> dict:
    """Timed end-to-end pass: generation + binning + simulation."""
    spec = bench_spec(accesses)
    frontend = ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=shards, engine="auto"
    )
    stream = ServingStream(spec)
    t0 = time.perf_counter()
    misses = 0
    for chunk in stream.chunks(chunk_accesses):
        misses += frontend.process(chunk)
    wall = time.perf_counter() - t0
    assert frontend.accesses == accesses
    assert frontend.shed_accesses == 0
    return {
        "accesses": accesses,
        "misses": misses,
        "miss_rate": misses / accesses,
        "shards": shards,
        "engine": frontend.engine,
        "backend": stream.backend,
        "chunk_accesses": chunk_accesses,
        "wall_sec": wall,
        "accesses_per_sec": accesses / wall,
        "retired_keys": stream.retired,
    }


def measure_telemetry_overhead(
    accesses: int,
    shards: int = SHARDS,
    chunk_accesses: int = CHUNK_ACCESSES,
) -> dict:
    """Timed pass with SLO telemetry attached vs the plain drain loop.

    Telemetry is fed once per engine batch (HDR histograms, sliding
    windows, drift detection), so the enabled run must sustain >= 95 %
    of the plain run's throughput — the PR's acceptance bar.  Misses
    must be bit-identical: observing a run never changes it.
    """
    spec = bench_spec(accesses)

    def run(telemetry):
        frontend = ShardedFrontend(
            NUM_SETS, ASSOC, ENTRIES, shards=shards, engine="auto",
            telemetry=telemetry,
        )
        stream = ServingStream(spec)
        t0 = time.perf_counter()
        misses = 0
        for chunk in stream.chunks(chunk_accesses):
            misses += frontend.process(chunk)
        return misses, time.perf_counter() - t0

    plain_misses, plain_sec = run(None)
    telem = ServeTelemetry(shards)
    telem_misses, telem_sec = run(telem)
    telem.finalize()
    assert telem_misses == plain_misses, (
        f"telemetry changed misses: {telem_misses} != {plain_misses}"
    )
    ratio = plain_sec / telem_sec if telem_sec > 0 else 1.0
    return {
        "accesses": accesses,
        "shards": shards,
        "plain_accesses_per_sec": accesses / plain_sec,
        "telemetry_accesses_per_sec": accesses / telem_sec,
        "throughput_ratio": ratio,
        "windows_closed": telem.windows.windows_closed,
        "meets_95pct": ratio >= 0.95,
    }


def measure_scalar_baselines(accesses: int, sample: int) -> dict:
    """The per-access scalar loop on a sample prefix, end to end.

    Two flavours, both one-access-at-a-time Python loops over the same
    generated prefix: the Figure 5/7/9 *bit-walk* reference (the
    per-access scalar loop proper — every access walks the tree) and the
    LUT-stepped :class:`ScalarStreamSimulator` (the no-numpy serving
    fallback).  Rates include generation time, like the serving number.
    Miss counts of all paths over the prefix must agree exactly.
    """
    sample = min(sample, accesses)
    spec = bench_spec(accesses).with_accesses(sample)
    stream = ServingStream(spec)
    t0 = time.perf_counter()
    prefix = []
    for chunk in stream.chunks(CHUNK_ACCESSES):
        prefix.extend(int(a) for a in chunk)
    gen_sec = time.perf_counter() - t0

    t0 = time.perf_counter()
    walk_misses = simulate_misses_plru_ipv(
        prefix, NUM_SETS, ASSOC, ENTRIES, 0, kernel="walk"
    )
    walk_sec = time.perf_counter() - t0

    scalar = ScalarStreamSimulator(NUM_SETS, ASSOC, ENTRIES, warmup=0)
    t0 = time.perf_counter()
    scalar_misses = scalar.feed(prefix)
    scalar_sec = time.perf_counter() - t0
    assert scalar_misses == walk_misses

    sharded = ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=SHARDS, engine="auto"
    )
    for lo in range(0, sample, CHUNK_ACCESSES):
        sharded.process(prefix[lo:lo + CHUNK_ACCESSES])
    assert sharded.misses == walk_misses, (
        f"sharded front-end diverged on the sample: "
        f"{sharded.misses} != {walk_misses}"
    )
    return {
        "sample_accesses": sample,
        "sample_misses": walk_misses,
        "generate_sec": gen_sec,
        "walk_sec": walk_sec,
        "scalar_stream_sec": scalar_sec,
        "walk_accesses_per_sec": sample / (gen_sec + walk_sec),
        "scalar_stream_accesses_per_sec": sample / (gen_sec + scalar_sec),
    }


def measure_flat_memory(accesses: int, shards: int = SHARDS) -> dict:
    """Untimed tracemalloc replay: post-warm-up heap growth in bytes."""
    spec = bench_spec(accesses)
    frontend = ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=shards, engine="auto"
    )
    stream = ServingStream(spec)
    warm = max(CHUNK_ACCESSES, accesses // 8)
    baseline = None
    growth = 0
    done = 0
    tracemalloc.start()
    try:
        for chunk in stream.chunks(CHUNK_ACCESSES):
            frontend.process(chunk)
            done += len(chunk)
            if done >= warm:
                current, _ = tracemalloc.get_traced_memory()
                if baseline is None:
                    baseline = current
                else:
                    growth = max(growth, current - baseline)
    finally:
        tracemalloc.stop()
    return {
        "accesses": accesses,
        "warmup_accesses": warm,
        "heap_growth_bytes": growth,
        "flat": growth < (8 << 20),
    }


def measure_shard_sweep(accesses: int) -> list:
    """Throughput at each sweep shard count on a shared shorter stream.

    Miss counts must agree exactly across shard counts — sharding is a
    layout choice, never a semantic one.
    """
    rows = [
        measure_serving_throughput(accesses, shards=s)
        for s in SHARD_SWEEP
    ]
    misses = {row["misses"] for row in rows}
    assert len(misses) == 1, f"shard counts diverged: {sorted(misses)}"
    return rows


def collect(accesses: int, sample: int = SAMPLE_ACCESSES,
            memory_accesses: int = 0, shards: int = SHARDS) -> dict:
    serving = measure_serving_throughput(accesses, shards=shards)
    baselines = measure_scalar_baselines(accesses, sample)
    sweep = measure_shard_sweep(min(accesses, 2_000_000))
    memory = measure_flat_memory(memory_accesses or accesses)
    telemetry = measure_telemetry_overhead(accesses, shards=shards)
    speedup = (
        serving["accesses_per_sec"] / baselines["walk_accesses_per_sec"]
    )
    return {
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z",
                                    time.localtime()),
        "geometry": {"num_sets": NUM_SETS, "assoc": ASSOC,
                     "policy": "lru"},
        "spec": bench_spec(accesses).digest_payload(),
        "serving": serving,
        "scalar_baselines": baselines,
        "shard_sweep": sweep,
        "memory": memory,
        "telemetry": telemetry,
        "speedup_vs_walk": speedup,
        "meets_5x": speedup >= 5.0,
    }


def trend_metrics(results: dict) -> dict:
    """Flatten a BENCH_serving.json payload into perf-trend metrics."""
    return {
        "serving_throughput_accesses_per_sec":
            results["serving"]["accesses_per_sec"],
        "serving_scalar_walk_accesses_per_sec":
            results["scalar_baselines"]["walk_accesses_per_sec"],
        "serving_speedup": results["speedup_vs_walk"],
        "serving_heap_growth_bytes":
            results["memory"]["heap_growth_bytes"],
        "serving_telemetry_ratio":
            results["telemetry"]["throughput_ratio"],
        **{
            f"serving_shard{row['shards']}_accesses_per_sec":
                row["accesses_per_sec"]
            for row in results.get("shard_sweep", ())
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_serving.json"),
        help="output JSON path (default: repo root BENCH_serving.json)",
    )
    parser.add_argument(
        "--accesses", type=int,
        default=max(500_000, int(DEFAULT_ACCESSES * _scale())),
        help="stream length for the timed serving pass",
    )
    parser.add_argument(
        "--shards", type=int, default=SHARDS,
        help="shard count for the headline timed pass",
    )
    parser.add_argument(
        "--sample", type=int, default=SAMPLE_ACCESSES,
        help="sample length for the scalar baselines + bit-identity",
    )
    parser.add_argument(
        "--memory-accesses", type=int, default=0, metavar="N",
        help="stream length for the tracemalloc pass (default: same as "
             "--accesses)",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-trend history file to append to (default: repo root "
             "BENCH_history.jsonl or $REPRO_TREND_HISTORY); --no-history "
             "disables recording",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to the perf-trend history",
    )
    args = parser.parse_args(argv)

    results = collect(args.accesses, args.sample, args.memory_accesses,
                      shards=args.shards)
    out = Path(args.out)
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    from repro.obs.provenance import build_manifest, write_manifest

    write_manifest(
        out,
        build_manifest(extra={"bench": "serving", "output": str(out)}),
    )

    serving = results["serving"]
    base = results["scalar_baselines"]
    mem = results["memory"]
    print(f"== serving throughput ({serving['accesses']:,} accesses, "
          f"{serving['shards']} shards, {serving['engine']}) ==")
    print(f"  serving   {serving['accesses_per_sec']:>12,.0f} acc/s "
          f"end-to-end | miss rate {serving['miss_rate']:.4f}")
    print(f"  walk loop {base['walk_accesses_per_sec']:>12,.0f} acc/s "
          f"(per-access scalar reference, {base['sample_accesses']:,}"
          f"-access sample)")
    print(f"  scalar    {base['scalar_stream_accesses_per_sec']:>12,.0f}"
          f" acc/s (LUT stream fallback)")
    for row in results["shard_sweep"]:
        print(f"  sweep     {row['accesses_per_sec']:>12,.0f} acc/s "
              f"@ {row['shards']} shard(s) "
              f"({row['accesses']:,}-access stream)")
    print(f"  speedup vs per-access scalar loop: "
          f"{results['speedup_vs_walk']:.2f}x "
          f"({'meets' if results['meets_5x'] else 'BELOW'} the 5x bar)")
    print(f"  heap growth after warm-up: "
          f"{mem['heap_growth_bytes'] / 2**20:.2f} MiB "
          f"({'flat' if mem['flat'] else 'NOT FLAT'})")
    telem = results["telemetry"]
    print(f"  telemetry {telem['telemetry_accesses_per_sec']:>12,.0f}"
          f" acc/s with SLO telemetry attached "
          f"({telem['throughput_ratio']:.1%} of plain, "
          f"{'meets' if telem['meets_95pct'] else 'BELOW'} the 95% bar, "
          f"{telem['windows_closed']} windows)")
    print(f"wrote {out}")

    if not args.no_history:
        from repro.obs.trend import default_history_path, record_entry

        history = args.history or default_history_path()
        entry = record_entry(
            history,
            trend_metrics(results),
            source="bench-serving",
            extra={
                "accesses": serving["accesses"],
                "shards": serving["shards"],
                "engine": serving["engine"],
            },
        )
        print(f"recorded {len(entry['metrics'])} metrics "
              f"@ {entry['git_revision'][:12]} -> {history}")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (part of ``make bench``).
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    def test_serving_throughput(benchmark):
        accesses = max(100_000, int(400_000 * _scale()))
        row = benchmark.pedantic(
            measure_serving_throughput,
            kwargs={"accesses": accesses},
            rounds=1, iterations=1,
        )
        baselines = measure_scalar_baselines(accesses, accesses // 4)
        speedup = (
            row["accesses_per_sec"] / baselines["walk_accesses_per_sec"]
        )
        benchmark.extra_info["accesses_per_sec"] = row["accesses_per_sec"]
        benchmark.extra_info["speedup_vs_walk"] = speedup
        # Batched serving must beat the per-access loop even at
        # smoke scale; the 5x bar applies to the full script run.
        assert speedup > 1.0

    def test_serving_memory_flat(benchmark):
        accesses = max(100_000, int(400_000 * _scale()))
        row = benchmark.pedantic(
            measure_flat_memory,
            kwargs={"accesses": accesses},
            rounds=1, iterations=1,
        )
        benchmark.extra_info["heap_growth_bytes"] = row[
            "heap_growth_bytes"
        ]
        assert row["flat"], (
            f"heap grew {row['heap_growth_bytes'] / 2**20:.1f} MiB"
        )


if __name__ == "__main__":
    sys.exit(main())
