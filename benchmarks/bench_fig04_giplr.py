"""Figure 4: speedup of the GIPLR vector on true-LRU stacks.

Runs LRU, tree PLRU, Random and GIPLR (the paper's evolved vector
[0 0 1 0 3 0 1 2 1 0 5 1 0 0 1 11 13] on full LRU stacks) over the suite.

Paper shapes: GIPLR geomean ~ +3.1% over LRU; PseudoLRU ~ LRU; Random
~ 99.9% of LRU.
"""

from conftest import print_header

from repro.eval import PolicySpec, run_suite, speedup_table


def run_experiment(config, workers):
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("GIPLR", "giplr"),
        ],
        config=config,
        workers=workers,
    )


def test_fig04_giplr_speedup(benchmark, bench_config, workers):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers), rounds=1, iterations=1
    )
    print_header("Figure 4: GIPLR vector speedup over LRU (sorted per paper)")
    print(speedup_table(suite, sort_by="GIPLR"))
    giplr = suite.geomean_speedup("GIPLR")
    plru = suite.geomean_speedup("PLRU")
    rand = suite.geomean_speedup("Random")
    print(f"\n  geomeans: GIPLR {giplr:.4f} (paper 1.031), "
          f"PLRU {plru:.4f} (paper ~1.0), Random {rand:.4f} (paper 0.999)")
    benchmark.extra_info.update(
        giplr_geomean=giplr, plru_geomean=plru, random_geomean=rand
    )
    assert giplr > 1.0
    assert abs(plru - 1.0) < 0.05
    assert abs(rand - 1.0) < 0.05
