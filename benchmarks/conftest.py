"""Shared fixtures for the figure-reproduction benches.

Every bench regenerates one of the paper's figures/tables (see DESIGN.md's
per-experiment index) and prints the corresponding rows; run with

    pytest benchmarks/ --benchmark-only -s

``REPRO_SCALE`` scales trace lengths (e.g. REPRO_SCALE=0.25 for a smoke
run, =4 for tighter statistics); ``REPRO_WORKERS`` parallelises the suite
grid.  Figure benches use the on-disk result cache by default
(``~/.cache/repro-eval`` or ``$REPRO_CACHE_DIR``) so repeated figure
builds resimulate nothing; set ``REPRO_CACHE=0`` to disable.
"""

from __future__ import annotations

import os

import pytest

from repro.eval import default_config


def _default_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        return int(env or 0)
    return min(8, (os.cpu_count() or 1))


def _default_cache():
    """Cache setting for ``run_suite``/``run_matrix`` (see REPRO_CACHE)."""
    env = os.environ.get("REPRO_CACHE", "1").strip().lower()
    if env in ("0", "off", "false", "no", ""):
        return None
    if env in ("1", "on", "true", "yes"):
        return True
    return env  # an explicit directory


@pytest.fixture(scope="session")
def bench_config():
    """The standard bench geometry: 64 sets x 16 ways, 20k-access traces."""
    return default_config(trace_length=20_000)


@pytest.fixture(scope="session")
def workers():
    return _default_workers()


@pytest.fixture(scope="session")
def cache():
    """Result-cache setting (None disabled, True default dir, or a path)."""
    return _default_cache()


@pytest.fixture(scope="session")
def ga_config():
    """Smaller traces for search-heavy benches (GA / random sampling)."""
    return default_config(trace_length=8_000)


def print_header(title: str) -> None:
    bar = "=" * len(title)
    print(f"\n{bar}\n{title}\n{bar}")
