"""Figure 12: workload-neutral (WN1) vs workload-inclusive (WI) vectors.

Performs the paper's actual Section 4.4 methodology at laptop scale: for
each held-out benchmark, a GA evolves a vector on the *other* benchmarks
(WN1) — then one more GA run trains on everything (WI).  Each benchmark is
then evaluated with its WN1 vector and with the WI vector.

Paper shape: WI is only marginally better than WN1 (5.66% vs 5.61% for the
4-vector version; 3.68% vs 3.47% for single vectors) — i.e. the technique
does not depend on having trained on the test workload.
"""

import math

from conftest import print_header

from repro.eval import geometric_mean
from repro.ga import FitnessEvaluator, evolve_ipv

#: Scaled-down WN1 universe (full 29-way cross-validation is a cluster job;
#: the methodology is identical).
BENCHES = [
    "462.libquantum",
    "436.cactusADM",
    "447.dealII",
    "429.mcf",
    "483.xalancbmk",
    "400.perlbench",
]

GA = dict(population_size=12, initial_population_size=24, generations=3)


def run_experiment(config):
    wn1_speedups = {}
    for held_out in BENCHES:
        training = [b for b in BENCHES if b != held_out]
        evaluator = FitnessEvaluator(training, config=config)
        result = evolve_ipv(evaluator, seed=7, **GA)
        probe = FitnessEvaluator([held_out], config=config)
        wn1_speedups[held_out] = probe.evaluate(result.best)

    wi_evaluator = FitnessEvaluator(BENCHES, config=config)
    wi_result = evolve_ipv(wi_evaluator, seed=7, **GA)
    wi_speedups = {
        b: FitnessEvaluator([b], config=config).evaluate(wi_result.best)
        for b in BENCHES
    }
    return wn1_speedups, wi_speedups


def test_fig12_wn_vs_wi(benchmark, ga_config):
    wn1, wi = benchmark.pedantic(
        run_experiment, args=(ga_config,), rounds=1, iterations=1
    )
    print_header("Figure 12: WN1 vs WI single-vector GIPPR speedups")
    print(f"  {'benchmark':<16} {'WN1':>8} {'WI':>8}")
    for b in BENCHES:
        print(f"  {b:<16} {wn1[b]:>8.4f} {wi[b]:>8.4f}")
    wn1_geo = geometric_mean(wn1.values())
    wi_geo = geometric_mean(wi.values())
    print(f"  {'GEOMEAN':<16} {wn1_geo:>8.4f} {wi_geo:>8.4f}")
    print("  paper: WN1 1.0347 vs WI 1.0368 (single vector) — small gap")
    benchmark.extra_info.update(wn1_geomean=wn1_geo, wi_geomean=wi_geo)
    # Both methodologies beat LRU; the WI advantage is small.
    assert wn1_geo > 1.0
    assert wi_geo > 1.0
    assert abs(math.log(wi_geo / wn1_geo)) < 0.05
