"""Figure 10: normalized MPKI for 1/2/4-vector GIPPR and optimal MIN.

Runs GIPPR (single WI vector), 2-DGIPPR, 4-DGIPPR and Belady MIN over the
suite and reports MPKI normalized to LRU.

Paper numbers: WN1-GIPPR 95.2%, WN1-2-DGIPPR 96.5%, WN1-4-DGIPPR 91.0%,
MIN 67.5% of LRU's misses.  Expected shapes here: all GIPPR variants below
1.0, the dynamic versions at or below the static one, MIN far below all.
"""

from conftest import print_header

from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS
from repro.eval import PolicySpec, normalized_mpki_table, run_suite


def run_experiment(config, workers, cache=None):
    suite = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("2-DGIPPR", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        config=config,
        workers=workers,
        cache=cache,
    )
    print(f"\n[repro-eval] {suite.metrics.summary()}")
    return suite


def test_fig10_normalized_mpki(benchmark, bench_config, workers, cache):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers, cache),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["runner_metrics"] = suite.metrics.as_dict()
    print_header("Figure 10: MPKI normalized to LRU")
    print(normalized_mpki_table(suite, sort_by="4-DGIPPR"))
    gippr = suite.geomean_normalized_mpki("GIPPR")
    two = suite.geomean_normalized_mpki("2-DGIPPR")
    four = suite.geomean_normalized_mpki("4-DGIPPR")
    optimal = suite.geomean_normalized_mpki("MIN")
    print(f"\n  geomeans: GIPPR {gippr:.3f} (paper 0.952), "
          f"2-DGIPPR {two:.3f} (paper 0.965), "
          f"4-DGIPPR {four:.3f} (paper 0.910), MIN {optimal:.3f} (paper 0.675)")
    benchmark.extra_info.update(
        gippr=gippr, dgippr2=two, dgippr4=four, optimal=optimal
    )
    assert gippr < 1.0 and two < 1.0 and four < 1.0
    assert optimal < min(gippr, two, four)  # MIN dominates everything


def test_fig10_min_dominates_per_benchmark(benchmark, bench_config, workers, cache):
    """MIN must lower-bound every policy on every single benchmark."""
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers, cache),
        rounds=1, iterations=1,
    )
    min_misses = suite.misses("MIN")
    for label in suite.labels:
        if label == "MIN":
            continue
        for bench_name, misses in suite.misses(label).items():
            assert min_misses[bench_name] <= misses + 1e-9, (label, bench_name)
    print_header("Figure 10 check: MIN dominates on all 29 benchmarks: OK")
