"""Extension: the Section 6.3 related-work family, measured.

The paper argues dead-block-style predictors (SDBP, SHiP, counter-based)
buy performance with state and a PC channel to the LLC that DGIPPR does not
need.  This bench puts the whole family on the suite and prints speedup
next to total replacement state, making the area/performance trade-off the
paper describes concrete.

Expected shape: SHiP/SDBP land in DGIPPR's performance band (or above on
scan-heavy workloads) while spending an order of magnitude more state.
"""

from conftest import print_header

from repro.eval import PolicySpec, overhead_row, run_suite

LINEUP = [
    PolicySpec("LRU", "lru"),
    PolicySpec("4-DGIPPR", "dgippr"),
    PolicySpec("SHiP", "ship"),
    PolicySpec("SDBP", "sdbp"),
    PolicySpec("Counter", "counter"),
]

#: Scan/stream-heavy slice where PC-based prediction has the advantage.
BENCHES = [
    "483.xalancbmk",
    "445.gobmk",
    "464.h264ref",
    "462.libquantum",
    "436.cactusADM",
    "429.mcf",
    "400.perlbench",
    "453.povray",
]


def run_experiment(config, workers):
    return run_suite(LINEUP, config=config, benchmarks=BENCHES, workers=workers)


def test_ext_related_work(benchmark, bench_config, workers):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers), rounds=1, iterations=1
    )
    print_header("Related work (Section 6.3): performance vs state")
    rows = []
    for spec in LINEUP[1:]:
        geomean = suite.geomean_speedup(spec.label)
        overhead = overhead_row(spec.policy)
        kb = overhead["total_kilobytes"]
        rows.append((spec.label, geomean, kb))
        print(f"  {spec.label:<10} speedup {geomean:.4f}   state {kb:8.2f} KB")
    by_label = dict((label, (geomean, kb)) for label, geomean, kb in rows)
    benchmark.extra_info.update(
        {label: geomean for label, geomean, _ in rows}
    )
    dgippr_speedup, dgippr_kb = by_label["4-DGIPPR"]
    for label in ("SHiP", "SDBP", "Counter"):
        speedup, kb = by_label[label]
        assert kb > 2 * dgippr_kb, label  # everyone pays more state
        # ...while staying in the same performance band (within ~8%).
        assert abs(speedup - dgippr_speedup) < 0.10, label
