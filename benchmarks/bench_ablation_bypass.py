"""Ablation (future work item 1): DGIPPR combined with a bypass predictor.

The paper proposes pairing DGIPPR with a dead-block/bypass predictor.  This
bench compares plain 4-DGIPPR against the SHiP-style bypass extension on
the scan-heavy and thrash benchmarks where dead-on-arrival blocks exist,
plus friendly benchmarks where bypass must do no harm.

Expected shape: bypass helps where zero-reuse scans exist, never hurts
materially elsewhere (misprediction is bounded by the 2-bit counters).
"""

from conftest import print_header

from repro.eval import PolicySpec, run_suite

BENCHES = [
    "483.xalancbmk",
    "445.gobmk",
    "464.h264ref",
    "400.perlbench",
    "462.libquantum",
    "433.milc",
    "453.povray",
    "447.dealII",
]


def run_experiment(config, workers):
    return run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("4-DGIPPR", "dgippr"),
            PolicySpec("bypass-4-DGIPPR", "bypass-dgippr"),
        ],
        config=config,
        benchmarks=BENCHES,
        workers=workers,
    )


def test_ablation_bypass(benchmark, bench_config, workers):
    suite = benchmark.pedantic(
        run_experiment, args=(bench_config, workers), rounds=1, iterations=1
    )
    print_header("Ablation: DGIPPR with and without the bypass predictor")
    plain = suite.speedups("4-DGIPPR")
    bypass = suite.speedups("bypass-4-DGIPPR")
    print(f"  {'benchmark':<16} {'plain':>8} {'bypass':>8} {'delta':>8}")
    for bench_name in BENCHES:
        delta = bypass[bench_name] - plain[bench_name]
        print(f"  {bench_name:<16} {plain[bench_name]:>8.4f} "
              f"{bypass[bench_name]:>8.4f} {delta:>+8.4f}")
    plain_geo = suite.geomean_speedup("4-DGIPPR")
    bypass_geo = suite.geomean_speedup("bypass-4-DGIPPR")
    print(f"  {'GEOMEAN':<16} {plain_geo:>8.4f} {bypass_geo:>8.4f}")
    benchmark.extra_info.update(plain=plain_geo, bypass=bypass_geo)
    # Bypass must not be a regression overall and must not tank anything.
    assert bypass_geo >= plain_geo - 0.01
    for bench_name in BENCHES:
        assert bypass[bench_name] >= plain[bench_name] - 0.05, bench_name
