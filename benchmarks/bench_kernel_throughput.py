"""Transition-table kernel throughput: LUT vs bit-walk vs columnar.

Measures the claims behind :mod:`repro.kernels` and
:mod:`repro.engine.columnar`:

1. simulator throughput (accesses/second) of the PLRU-IPV fitness loop
   with the precompiled transition tables versus the Figure 5/7/9 bit-walk
   reference, for k in {4, 8, 16} — asserting bit-identical miss counts;
2. GA generation wall-time with ``kernel="lut"`` versus ``kernel="walk"``
   evaluators — asserting the evolved best vector is identical;
3. a GA-population batch (many IPV lanes over one shared trace pass)
   through :class:`repro.engine.columnar.BatchSimulator` versus a per-lane
   walk loop — the headline multi-lane speedup, again bit-identical.

Runs two ways:

* under pytest-benchmark as part of ``make bench``;
* as a script (``make bench-kernels``), writing ``BENCH_kernels.json``
  plus a provenance manifest sidecar at the repository root.

``REPRO_SCALE`` scales the stream and trace lengths as in the other
benches.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make src importable
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.engine.columnar import (  # noqa: E402
    BatchSimulator,
    ColumnarTrace,
    columnar_supported,
)
from repro.ga.fitness import (  # noqa: E402
    FitnessEvaluator,
    simulate_misses_plru_ipv,
)
from repro.ga.genetic import evolve_ipv  # noqa: E402
from repro.kernels import compile_tables, kernel_provenance  # noqa: E402

#: Default accesses per simulated stream (script mode; pytest uses fewer).
DEFAULT_ACCESSES = 200_000
ASSOCIATIVITIES = (4, 8, 16)
NUM_SETS = 256
#: Lanes in the GA-population batch bench — one typical population's worth.
POPULATION_LANES = 24


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SCALE", "1") or "1")
    except ValueError:
        return 1.0


def make_stream(accesses: int, num_sets: int, assoc: int, seed: int = 42):
    """A mixed hit/miss block-address stream over ~2x the cache footprint."""
    rng = random.Random(seed)
    footprint = 2 * num_sets * assoc
    hot = num_sets * assoc // 2
    stream = []
    for _ in range(accesses):
        # 70 % of references hit a hot working set that fits, the rest
        # sweep a footprint twice the capacity: both paths get exercised.
        if rng.random() < 0.7:
            stream.append(rng.randrange(hot))
        else:
            stream.append(rng.randrange(footprint))
    return stream


def bench_ipv(k: int, seed: int = 9):
    """A deterministic non-trivial IPV for a k-way set."""
    rng = random.Random(seed + k)
    return tuple(rng.randrange(k) for _ in range(k + 1))


def measure_sim_throughput(assoc: int, accesses: int) -> dict:
    """Time walk vs LUT on one stream; assert bit-identical misses."""
    entries = bench_ipv(assoc)
    stream = make_stream(accesses, NUM_SETS, assoc)
    warmup = accesses // 10
    compile_tables(assoc, entries)  # compile outside the timed region

    t0 = time.perf_counter()
    walk_misses = simulate_misses_plru_ipv(
        stream, NUM_SETS, assoc, entries, warmup, kernel="walk"
    )
    walk_sec = time.perf_counter() - t0

    t0 = time.perf_counter()
    lut_misses = simulate_misses_plru_ipv(
        stream, NUM_SETS, assoc, entries, warmup, kernel="lut"
    )
    lut_sec = time.perf_counter() - t0

    if walk_misses != lut_misses:
        raise AssertionError(
            f"k={assoc}: LUT misses {lut_misses} != walk misses {walk_misses}"
        )
    row = {
        "assoc": assoc,
        "accesses": accesses,
        "misses": walk_misses,
        "walk_accesses_per_sec": accesses / walk_sec,
        "lut_accesses_per_sec": accesses / lut_sec,
        "speedup": walk_sec / lut_sec,
        "table_bytes": compile_tables(assoc, entries).nbytes,
    }
    if columnar_supported(assoc):
        t0 = time.perf_counter()
        columnar_misses = simulate_misses_plru_ipv(
            stream, NUM_SETS, assoc, entries, warmup, kernel="columnar"
        )
        columnar_sec = time.perf_counter() - t0
        if columnar_misses != walk_misses:
            raise AssertionError(
                f"k={assoc}: columnar misses {columnar_misses}"
                f" != walk misses {walk_misses}"
            )
        row["columnar_accesses_per_sec"] = accesses / columnar_sec
        row["columnar_speedup"] = walk_sec / columnar_sec
    return row


def measure_population_batch(
    assoc: int = 16,
    accesses: int = DEFAULT_ACCESSES,
    lanes: int = POPULATION_LANES,
) -> dict:
    """Time a GA population evaluated per-lane (walk) vs in one columnar
    batch; assert bit-identical misses on every lane.

    This is the scenario the columnar engine exists for: ``lanes`` IPVs
    share one pass over the trace, so the tag-compare work is amortized
    across the whole population instead of repeated per individual.
    """
    stream = make_stream(accesses, NUM_SETS, assoc)
    warmup = accesses // 10
    population = [bench_ipv(assoc, seed=100 + i) for i in range(lanes)]
    # Construct the simulator outside the timed region: _LaneTables holds
    # its own table references, so this is the "compile outside the timed
    # region" idiom of the other benches (a precompile loop would not do —
    # `lanes` can exceed the kernel LRU capacity and churn the cache).
    simulator = BatchSimulator(NUM_SETS, assoc, population, warmup)

    t0 = time.perf_counter()
    walk_misses = [
        simulate_misses_plru_ipv(
            stream, NUM_SETS, assoc, entries, warmup, kernel="walk"
        )
        for entries in population
    ]
    walk_sec = time.perf_counter() - t0

    # Trace preprocessing is part of the measured columnar cost — unlike
    # table compilation it cannot be cached across fresh streams.
    t0 = time.perf_counter()
    trace = ColumnarTrace(stream, NUM_SETS)
    columnar = simulator.run(trace)
    columnar_sec = time.perf_counter() - t0

    mismatched = [
        (i, int(columnar[i]), walk_misses[i])
        for i in range(lanes)
        if int(columnar[i]) != walk_misses[i]
    ]
    if mismatched:
        raise AssertionError(
            f"columnar misses diverge from walk on {len(mismatched)} lanes: "
            f"{mismatched[:3]}"
        )
    return {
        "assoc": assoc,
        "accesses": accesses,
        "lanes": lanes,
        "misses": walk_misses,
        "walk_sec": walk_sec,
        "columnar_sec": columnar_sec,
        "speedup": walk_sec / columnar_sec,
        "lane_accesses_per_sec": (lanes * accesses) / columnar_sec,
    }


def measure_population_surrogate(
    trace_length: int = 6_000,
    population: int = 1_500,
    keep: float = 0.05,
    audit: int = 32,
) -> dict:
    """Analytic-prefilter economics at population scale.

    Times one generation-sized batch three ways: pure surrogate scoring
    (the O(1)-per-candidate closed form), full simulation of everybody,
    and the prefiltered path (surrogate ranks, only ``keep`` of the
    batch plus the audit sample is simulated).  Asserts the kept
    survivors' fitness is bit-identical to the full-simulation floats —
    the prefilter only ever decides *who* gets simulated.

    Two fidelity numbers come back: ``audit_rho`` is the prefilter's own
    control-sample rho against the deployment (tree-PLRU) substrate —
    the number the in-run safety net watches — and ``audit_rho_lru`` is
    the same sample correlated against the ``substrate="lru"`` simulator,
    the recency-stack space the model actually approximates (its honest
    fidelity ceiling; the gap between the two is the PLRU-vs-stack
    substrate gap, not model error).
    """
    from repro.eval import default_config
    from repro.ga.parallel import PopulationEvaluator
    from repro.ga.surrogate import (
        FitnessMemo,
        SurrogateModel,
        SurrogatePrefilter,
        spearman_rho,
    )

    benchmarks = ["429.mcf", "462.libquantum"]
    evaluator = FitnessEvaluator(
        benchmarks=benchmarks,
        config=default_config(trace_length=trace_length),
    )
    t0 = time.perf_counter()
    model = SurrogateModel.from_evaluator(evaluator, cache_dir=None)
    feature_sec = time.perf_counter() - t0

    k = evaluator.k
    rng = random.Random(11)
    candidates = [
        tuple(rng.randrange(k) for _ in range(k + 1))
        for _ in range(population)
    ]

    t0 = time.perf_counter()
    model.score_population(candidates)
    score_sec = time.perf_counter() - t0

    with PopulationEvaluator(evaluator) as pop_eval:
        prefilter = SurrogatePrefilter(
            model, keep=keep, audit=audit, seed=3
        )
        memo = FitnessMemo()
        t0 = time.perf_counter()
        kept = prefilter.evaluate_batch(pop_eval, memo, candidates)
        prefiltered_sec = time.perf_counter() - t0

        t0 = time.perf_counter()
        full = dict(zip(candidates, pop_eval.evaluate_all(candidates)))
        simulate_all_sec = time.perf_counter() - t0

    mismatched = [
        entries for fitness, entries in kept if full[entries] != fitness
    ]
    if mismatched:
        raise AssertionError(
            f"prefiltered fitness diverges from full simulation on "
            f"{len(mismatched)} candidates: {mismatched[:3]}"
        )

    # Native-space fidelity: the same control-sample size against the
    # recency-stack simulator the model approximates.
    lru_eval = FitnessEvaluator(
        benchmarks=benchmarks,
        config=default_config(trace_length=trace_length),
        substrate="lru",
    )
    sample_rng = random.Random(7)
    sample = [
        tuple(sample_rng.randrange(k) for _ in range(k + 1))
        for _ in range(max(audit, 32))
    ]
    audit_rho_lru = spearman_rho(
        model.score_population(sample), lru_eval.evaluate_many(sample)
    )
    return {
        "benchmarks": benchmarks,
        "trace_length": trace_length,
        "population": population,
        "keep": keep,
        "audit": audit,
        "feature_sec": feature_sec,
        "score_sec": score_sec,
        "surrogate_score_per_sec": population / score_sec,
        "simulated": len(kept),
        "simulate_all_sec": simulate_all_sec,
        "prefiltered_sec": prefiltered_sec,
        "generation_speedup": simulate_all_sec / prefiltered_sec,
        "audit_rho": prefilter.rho,
        "audit_rho_lru": audit_rho_lru,
    }


def measure_analytics_profile(
    accesses: int = DEFAULT_ACCESSES,
    oracle_accesses: int = 60_000,
    num_sets: int = NUM_SETS,
) -> dict:
    """Vectorized Mattson profiler vs the ``trace.analysis`` oracle.

    The vectorized single pass runs over the full stream; the
    O(n x footprint) OrderedDict oracle is timed on a prefix (running it
    at a million accesses would take minutes) and the two are compared
    as per-access rates.  Bit-equality of the global stack-distance
    histogram and the per-set reuse histogram is asserted on the prefix
    — the speed claim is only meaningful if the numbers match.
    """
    from repro.obs.analytics import profile_trace
    from repro.trace.analysis import (
        per_set_reuse_histogram,
        stack_distance_histogram,
    )
    from repro.trace.record import Trace

    stream = make_stream(accesses, num_sets, 16, seed=17)
    prefix = stream[: min(oracle_accesses, accesses)]
    prefix_trace = Trace(prefix, name="bench-prefix")

    t0 = time.perf_counter()
    profile = profile_trace(stream, num_sets=num_sets)
    profile_sec = time.perf_counter() - t0

    t0 = time.perf_counter()
    oracle_hist = stack_distance_histogram(prefix_trace)
    oracle_reuse = per_set_reuse_histogram(prefix_trace, num_sets)
    oracle_sec = time.perf_counter() - t0

    prefix_profile = profile_trace(prefix, num_sets=num_sets)
    if prefix_profile.stack_distance_histogram() != oracle_hist:
        raise AssertionError(
            "vectorized stack-distance histogram diverges from the oracle"
        )
    if prefix_profile.per_set_reuse_histogram() != oracle_reuse:
        raise AssertionError(
            "vectorized per-set reuse histogram diverges from the oracle"
        )

    profile_rate = accesses / profile_sec
    oracle_rate = len(prefix) / oracle_sec
    return {
        "accesses": accesses,
        "oracle_accesses": len(prefix),
        "num_sets": num_sets,
        "footprint": profile.footprint,
        "profile_sec": profile_sec,
        "oracle_sec": oracle_sec,
        "profile_accesses_per_sec": profile_rate,
        "oracle_accesses_per_sec": oracle_rate,
        "speedup_vs_oracle": profile_rate / oracle_rate,
    }


def measure_ga_generation(trace_length: int = 6_000) -> dict:
    """Wall-time of a short GA run, walk vs LUT evaluator; same best."""
    from repro.eval import default_config

    benchmarks = ["429.mcf", "462.libquantum"]

    def run(kernel: str):
        evaluator = FitnessEvaluator(
            benchmarks=benchmarks,
            config=default_config(trace_length=trace_length),
            kernel=kernel,
        )
        t0 = time.perf_counter()
        result = evolve_ipv(
            evaluator, population_size=10, initial_population_size=20,
            generations=3, seed=7,
        )
        return time.perf_counter() - t0, result

    walk_sec, walk_result = run("walk")
    lut_sec, lut_result = run("lut")
    if tuple(walk_result.best.entries) != tuple(lut_result.best.entries):
        raise AssertionError(
            "GA best vector differs between walk and LUT evaluators: "
            f"{list(walk_result.best.entries)} vs {list(lut_result.best.entries)}"
        )
    if walk_result.best_fitness != lut_result.best_fitness:
        raise AssertionError("GA best fitness differs between walk and LUT")
    generations = len(walk_result.history)
    return {
        "benchmarks": benchmarks,
        "trace_length": trace_length,
        "generations": generations,
        "walk_wall_sec": walk_sec,
        "lut_wall_sec": lut_sec,
        "walk_sec_per_generation": walk_sec / generations,
        "lut_sec_per_generation": lut_sec / generations,
        "speedup": walk_sec / lut_sec,
        "best_entries": list(walk_result.best.entries),
        "best_fitness": walk_result.best_fitness,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points (part of ``make bench``).
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - script mode without pytest
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("assoc", list(ASSOCIATIVITIES))
    def test_kernel_sim_throughput(benchmark, assoc):
        accesses = max(10_000, int(60_000 * _scale()))
        entries = bench_ipv(assoc)
        stream = make_stream(accesses, NUM_SETS, assoc)
        warmup = accesses // 10
        compile_tables(assoc, entries)
        walk = simulate_misses_plru_ipv(
            stream, NUM_SETS, assoc, entries, warmup, kernel="walk"
        )
        lut = benchmark(
            simulate_misses_plru_ipv,
            stream, NUM_SETS, assoc, entries, warmup, kernel="lut",
        )
        # Bit-exactness is the bench's correctness bar.
        assert lut == walk
        row = measure_sim_throughput(assoc, accesses)
        benchmark.extra_info["speedup_vs_walk"] = row["speedup"]
        benchmark.extra_info["lut_accesses_per_sec"] = row[
            "lut_accesses_per_sec"
        ]
        # The LUT path must never lose to the walk it memoizes.
        assert row["speedup"] > 1.0

    def test_kernel_population_batch(benchmark):
        if not columnar_supported(16):
            pytest.skip("columnar engine needs numpy")
        accesses = max(10_000, int(60_000 * _scale()))
        row = benchmark.pedantic(
            measure_population_batch,
            kwargs={"accesses": accesses, "lanes": 8},
            rounds=1, iterations=1,
        )
        benchmark.extra_info["speedup_vs_walk"] = row["speedup"]
        benchmark.extra_info["lane_accesses_per_sec"] = row[
            "lane_accesses_per_sec"
        ]
        # Batching a population must beat evaluating its lanes one by one.
        assert row["speedup"] > 1.0

    def test_kernel_analytics_profile(benchmark):
        from repro.kernels.tables import numpy_or_none

        if numpy_or_none() is None:
            pytest.skip("vectorized profiler needs numpy")
        accesses = max(10_000, int(60_000 * _scale()))
        row = benchmark.pedantic(
            measure_analytics_profile,
            kwargs={"accesses": accesses, "oracle_accesses": 20_000},
            rounds=1, iterations=1,
        )
        benchmark.extra_info["speedup_vs_oracle"] = row["speedup_vs_oracle"]
        benchmark.extra_info["profile_accesses_per_sec"] = row[
            "profile_accesses_per_sec"
        ]
        # The vectorized pass must beat the OrderedDict stack walk.
        assert row["speedup_vs_oracle"] > 1.0

    def test_kernel_population_surrogate(benchmark):
        from repro.kernels.tables import numpy_or_none

        if numpy_or_none() is None:
            pytest.skip("vectorized surrogate scoring needs numpy")
        row = benchmark.pedantic(
            measure_population_surrogate,
            kwargs={
                "trace_length": max(2_000, int(4_000 * _scale())),
                "population": max(120, int(600 * _scale())),
            },
            rounds=1, iterations=1,
        )
        benchmark.extra_info["generation_speedup"] = row["generation_speedup"]
        benchmark.extra_info["surrogate_score_per_sec"] = row[
            "surrogate_score_per_sec"
        ]
        # Skipping ~90% of the simulations must beat simulating everyone
        # (measure_population_surrogate already asserts bit-identity of
        # the survivors' fitness).
        assert row["generation_speedup"] > 1.0

    def test_kernel_ga_generation(benchmark):
        # Note: each *new* k=16 vector pays a ~20 ms table compile, so the
        # LUT only wins once traces are long enough to amortize it (the
        # script-mode default is; tiny REPRO_SCALE runs may not be).  The
        # assertion here is the determinism contract — same evolved best
        # across kernels — which measure_ga_generation itself enforces.
        trace_length = max(2_000, int(4_000 * _scale()))
        row = benchmark.pedantic(
            measure_ga_generation,
            kwargs={"trace_length": trace_length},
            rounds=1, iterations=1,
        )
        benchmark.extra_info["speedup"] = row["speedup"]
        benchmark.extra_info["best_entries"] = row["best_entries"]
        assert row["walk_wall_sec"] > 0 and row["lut_wall_sec"] > 0


# ----------------------------------------------------------------------
# Script mode (``make bench-kernels``): write BENCH_kernels.json.
# ----------------------------------------------------------------------
def collect(accesses: int, ga_trace_length: int) -> dict:
    sim_rows = [measure_sim_throughput(k, accesses) for k in ASSOCIATIVITIES]
    ga_row = measure_ga_generation(trace_length=ga_trace_length)
    results = {
        "schema": "repro-bench-kernels/1",
        "created_at": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z", time.localtime()
        ),
        "stream": {"num_sets": NUM_SETS, "accesses": accesses},
        "sim_throughput": sim_rows,
        "ga_generation": ga_row,
        "kernels": kernel_provenance(),
    }
    if columnar_supported(16):
        results["population_batch"] = measure_population_batch(
            accesses=accesses
        )
    from repro.kernels.tables import numpy_or_none

    if numpy_or_none() is not None:
        # The speed claim is about the vectorized path; without numpy the
        # profiler falls back to the oracle walk and the row is meaningless.
        results["analytics_profile"] = measure_analytics_profile(
            accesses=accesses
        )
        results["population_surrogate"] = measure_population_surrogate(
            trace_length=ga_trace_length,
            population=max(200, int(1_500 * _scale())),
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json"),
        help="output JSON path (default: repo root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--accesses", type=int,
        default=max(20_000, int(DEFAULT_ACCESSES * _scale())),
        help="accesses per simulated stream",
    )
    parser.add_argument(
        "--ga-trace-length", type=int,
        default=max(2_000, int(6_000 * _scale())),
        help="fitness trace length for the GA timing",
    )
    parser.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-trend history file to append to (default: repo root "
             "BENCH_history.jsonl or $REPRO_TREND_HISTORY); --no-history "
             "disables recording",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="skip appending this run to the perf-trend history",
    )
    args = parser.parse_args(argv)

    results = collect(args.accesses, args.ga_trace_length)
    out = Path(args.out)
    with open(out, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    from repro.obs.provenance import build_manifest, write_manifest

    write_manifest(
        out,
        build_manifest(
            extra={"bench": "kernel-throughput", "output": str(out)}
        ),
    )

    print(f"== kernel throughput ({args.accesses} accesses/stream) ==")
    for row in results["sim_throughput"]:
        line = (
            f"  k={row['assoc']:>2}: walk {row['walk_accesses_per_sec']:>12,.0f}"
            f" acc/s | lut {row['lut_accesses_per_sec']:>12,.0f} acc/s"
            f" | {row['speedup']:.2f}x | misses {row['misses']}"
        )
        if "columnar_speedup" in row:
            line += (
                f" | columnar {row['columnar_accesses_per_sec']:>12,.0f}"
                f" acc/s ({row['columnar_speedup']:.2f}x)"
            )
        print(line)
    pop = results.get("population_batch")
    if pop is not None:
        print(
            f"  population k={pop['assoc']} x{pop['lanes']} lanes:"
            f" walk {pop['walk_sec']:.2f}s"
            f" | columnar {pop['columnar_sec']:.2f}s"
            f" | {pop['speedup']:.1f}x"
            f" | {pop['lane_accesses_per_sec']:,.0f} lane-acc/s"
        )
    sur = results.get("population_surrogate")
    if sur is not None:
        rho = ("n/a" if sur["audit_rho"] is None
               else f"{sur['audit_rho']:+.3f}")
        rho_lru = ("n/a" if sur.get("audit_rho_lru") is None
                   else f"{sur['audit_rho_lru']:+.3f}")
        print(
            f"  surrogate x{sur['population']} candidates:"
            f" score {sur['surrogate_score_per_sec']:,.0f} cand/s"
            f" | simulate-all {sur['simulate_all_sec']:.2f}s"
            f" | prefiltered {sur['prefiltered_sec']:.2f}s"
            f" | {sur['generation_speedup']:.1f}x"
            f" | audit rho {rho} (vs lru substrate {rho_lru})"
        )
    prof = results.get("analytics_profile")
    if prof is not None:
        print(
            f"  analytics profile: {prof['profile_accesses_per_sec']:,.0f}"
            f" acc/s | oracle {prof['oracle_accesses_per_sec']:,.0f} acc/s"
            f" | {prof['speedup_vs_oracle']:.1f}x"
            f" | footprint {prof['footprint']}"
        )
    ga = results["ga_generation"]
    print(
        f"  GA generation: walk {ga['walk_sec_per_generation']:.2f}s"
        f" | lut {ga['lut_sec_per_generation']:.2f}s"
        f" | {ga['speedup']:.2f}x | best {ga['best_entries']}"
    )
    print(f"wrote {out}")

    if not args.no_history:
        from repro.obs.trend import (
            format_deltas,
            latest_deltas,
            record_bench_kernels,
        )

        history = args.history  # None -> default_history_path()
        entry = record_bench_kernels(out, history)
        from repro.obs.trend import default_history_path

        history_path = history if history is not None else default_history_path()
        print(f"trend: recorded {len(entry['metrics'])} metrics "
              f"@ {entry['git_revision'][:12]} -> {history_path}")
        summary = latest_deltas(history_path, source="bench-kernels")
        if summary is not None:
            print(f"trend: vs previous ({summary['prev_revision'][:12]}):")
            print(format_deltas(summary["deltas"]))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
