#!/usr/bin/env python3
"""Export the paper's figure data as CSV for external plotting.

Runs the Figure 4/10/11/13 experiments and writes one CSV per figure into
``--outdir`` (default ``results/``), each row a benchmark and each column a
policy.  The same numbers the benches print, in machine-readable form.

Run:  python scripts/export_results.py [--outdir DIR] [--length N]
"""

import argparse
import csv
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS  # noqa: E402
from repro.eval import PolicySpec, default_config, run_suite  # noqa: E402
from repro.obs import build_manifest, write_manifest  # noqa: E402


FIGURES = {
    "figure04_speedup": (
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("GIPLR", "giplr"),
        ],
        "speedups",
    ),
    "figure10_norm_mpki": (
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("2-DGIPPR", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        "normalized_mpki",
    ),
    "figure11_norm_mpki": (
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("4-DGIPPR", "dgippr"),
            PolicySpec("MIN", "belady"),
        ],
        "normalized_mpki",
    ),
    "figure13_speedup": (
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("4-DGIPPR", "dgippr"),
        ],
        "speedups",
    ),
}


def _kernel_bench_summary():
    """Compact summary of ``BENCH_kernels.json`` (see ``make bench-kernels``).

    Embedded in every figure manifest so the provenance record states which
    measured kernel speedups accompanied the exported numbers; ``None``
    when the bench has not been run.
    """
    path = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return {
        "created_at": data.get("created_at"),
        "sim_speedups": {
            f"k={row['assoc']}": round(row["speedup"], 3)
            for row in data.get("sim_throughput", [])
        },
        "ga_generation_speedup": round(
            data.get("ga_generation", {}).get("speedup", 0.0), 3
        ),
    }


def _trend_summary():
    """Latest perf-trend deltas (``BENCH_history.jsonl``), or ``None``.

    Embedded next to ``kernel_bench`` in the figure manifests: the
    provenance record then answers not just "how fast were the kernels"
    but "had they just regressed" when the figures were exported.
    """
    from repro.obs.trend import default_history_path, latest_deltas

    try:
        summary = latest_deltas(default_history_path(),
                                source="bench-kernels")
    except (OSError, ValueError):
        return None
    if summary is None:
        return None
    return {
        "prev_revision": summary["prev_revision"],
        "cur_revision": summary["cur_revision"],
        "threshold": summary["threshold"],
        "regressions": [d["metric"] for d in summary["regressions"]],
        "deltas": {
            d["metric"]: round(d["delta_frac"], 4)
            for d in summary["deltas"]
        },
    }


def export_figure(name, specs, metric, config, outdir, workers, cache=None):
    suite = run_suite(specs, config=config, workers=workers, cache=cache)
    print(f"[repro-eval] {name}: {suite.metrics.summary()}", file=sys.stderr)
    labels = [s.label for s in specs if s.label != "LRU"]
    path = os.path.join(outdir, f"{name}.csv")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark"] + labels)
        values = {
            label: (
                suite.speedups(label)
                if metric == "speedups"
                else suite.normalized_mpki(label)
            )
            for label in labels
        }
        for bench in suite.benchmarks:
            writer.writerow(
                [bench] + [f"{values[label][bench]:.6f}" for label in labels]
            )
    write_manifest(path, build_manifest(
        config=config,
        extra={"figure": name, "metric": metric,
               "policies": [s.label for s in specs],
               "kernel_bench": _kernel_bench_summary(),
               "kernel_trend": _trend_summary()},
    ))
    print(f"wrote {path} (+ manifest)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: ~/.cache/repro-eval)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument(
        "--figures", nargs="+", choices=sorted(FIGURES), default=sorted(FIGURES)
    )
    args = parser.parse_args()

    os.makedirs(args.outdir, exist_ok=True)
    config = default_config(trace_length=args.length)
    cache = None if args.no_cache else (args.cache_dir or True)
    for name in args.figures:
        specs, metric = FIGURES[name]
        export_figure(
            name, specs, metric, config, args.outdir, args.workers, cache
        )


if __name__ == "__main__":
    main()
