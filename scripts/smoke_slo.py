#!/usr/bin/env python3
"""SLO telemetry smoke check (the ``make smoke-slo`` target).

Asserts, in a few seconds, that the serving-path SLO telemetry is sound
end to end:

1. scrape endpoint: a telemetry-enabled ``run_serving`` with
   ``metrics_port=0`` publishes its ephemeral port through
   ``run-status.json``; a mid-run HTTP scrape returns OpenMetrics text
   (``# EOF``-terminated, parseable by ``parse_prometheus``) carrying
   per-shard p99 latency and windowed hit-rate gauges;
2. drift detection: a stationary Zipf stream stays quiet, while an
   injected hot-set flip (flash crowd over the whole key space, wrecking
   locality) fires a ``drift`` event and — with an SLO attached — a
   burn-rate violation in the final report;
3. overhead: attaching telemetry costs <= 5 % on the serving drain loop
   (paired process_time ratios, min over rounds — the
   ``measure_counters_overhead`` discipline);
4. ``repro serve --slo-strict`` exits non-zero on a violated SLO and
   zero without one.

Exits non-zero on any failure.
"""

import json
import os
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core.ipv import lru_ipv  # noqa: E402
from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.obs.slo import SLOSpec  # noqa: E402
from repro.serve.frontend import ShardedFrontend  # noqa: E402
from repro.serve.service import run_serving  # noqa: E402
from repro.serve.telemetry import ServeTelemetry  # noqa: E402
from repro.serve.workload import (  # noqa: E402
    FlashPhase,
    ServingSpec,
    ServingStream,
)

NUM_SETS = 256
ASSOC = 8
ENTRIES = tuple(lru_ipv(ASSOC).entries)
KEYS = 1 << 12
WINDOW = 4096


def stationary_spec(accesses, seed=11):
    return ServingSpec(keys=KEYS, alpha=1.2, accesses=accesses, seed=seed)


def flipped_spec(accesses, seed=11):
    """Stationary head, then a flash crowd over the *entire* key space.

    Spreading 95 % of traffic uniformly over all keys destroys the Zipf
    locality the cache warmed up on — a hit-rate collapse, not a spike.
    """
    flip_at = accesses // 2
    phase = FlashPhase(start=flip_at, length=accesses - flip_at,
                       share=0.95, hot_keys=KEYS)
    return ServingSpec(keys=KEYS, alpha=1.2, accesses=accesses,
                       phases=(phase,), seed=seed)


def check_scrape_endpoint():
    spec = stationary_spec(3_000_000)
    with tempfile.TemporaryDirectory() as tmp:
        status_path = os.path.join(tmp, "run-status.json")
        report_box = {}

        def run():
            report_box["report"] = run_serving(
                spec, NUM_SETS, ASSOC, policy="lru", shards=2,
                chunk_accesses=1 << 14, window_accesses=WINDOW,
                status_path=status_path, metrics_port=0,
            )

        thread = threading.Thread(target=run)
        thread.start()
        port = None
        body = None
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and thread.is_alive():
            try:
                with open(status_path) as handle:
                    status = json.load(handle)
                port = (status.get("serving") or {}).get("metrics_port")
            except (OSError, ValueError):
                port = None
            if port:
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics", timeout=5
                    ) as resp:
                        content_type = resp.headers.get("Content-Type", "")
                        body = resp.read().decode("utf-8")
                except OSError:
                    continue  # run ended between status read and scrape
                if ("repro_serve_window_hit_rate", ()) in \
                        parse_prometheus(body):
                    break
            time.sleep(0.02)
        thread.join(timeout=60)
        assert not thread.is_alive(), "serving run did not finish"
        assert body is not None, "never scraped the endpoint mid-run"
        assert "openmetrics-text" in content_type
        assert body.endswith("# EOF\n")
        parsed = parse_prometheus(body)
        p99_key = ("repro_serve_shard_latency_seconds",
                   (("quantile", "0.99"), ("shard", "0")))
        assert p99_key in parsed and parsed[p99_key] > 0
        hit_key = ("repro_serve_window_hit_rate", ())
        assert 0.0 <= parsed[hit_key] <= 1.0
        assert ("repro_serve_windows_closed", ()) in parsed
        report = report_box["report"]
        assert report.telemetry is not None
        assert report.telemetry["windows_closed"] > 0
    print(f"  scrape        mid-run OpenMetrics OK on :{port} "
          f"({len(parsed)} series, shard0 p99 {parsed[p99_key]*1e3:.2f}ms)")


def check_drift_and_slo():
    accesses = 600_000
    slo = SLOSpec(min_hit_rate=0.5, short_windows=3, long_windows=12,
                  budget=0.1)

    quiet = run_serving(stationary_spec(accesses), NUM_SETS, ASSOC,
                        shards=2, chunk_accesses=1 << 14,
                        window_accesses=WINDOW, slo=slo)
    # Judge the deterministic hit-rate series; wall-clock throughput is
    # machine noise a CI box may legitimately wobble.
    quiet_hits = [e for e in quiet.telemetry["drift_events"]
                  if e["series"] == "hit_rate"]
    assert quiet_hits == [], (
        f"stationary stream fired hit_rate drift: {quiet_hits}"
    )
    assert quiet.slo_ok, f"stationary stream violated SLO: {quiet.slo_summary}"

    flipped = run_serving(flipped_spec(accesses), NUM_SETS, ASSOC,
                          shards=2, chunk_accesses=1 << 14,
                          window_accesses=WINDOW, slo=slo)
    events = flipped.telemetry["drift_events"]
    hit_events = [e for e in events if e["series"] == "hit_rate"]
    assert hit_events, f"hot-set flip fired no hit_rate drift: {events}"
    flip_at = accesses // 2
    first = hit_events[0]
    # Shard sub-batches reorder accesses inside one chunk, so the first
    # post-flip accesses can land in a window that nominally ends just
    # before flip_at: allow one chunk of slack on the early side.
    assert first["end_access"] >= flip_at - (1 << 14), (
        f"drift fired before the flip: {first}"
    )
    assert first["end_access"] <= flip_at + 16 * WINDOW, (
        f"drift fired too late after the flip: {first}"
    )
    assert not flipped.slo_ok, "hit-rate collapse did not violate the SLO"
    objectives = {v["objective"]
                  for v in flipped.slo_summary["violations"]}
    assert "hit_rate" in objectives
    windows_late = first["end_access"] // WINDOW - flip_at // WINDOW
    print(f"  drift         quiet on stationary; flip detected "
          f"{windows_late} window(s) after onset, SLO violated")


def check_overhead():
    # Paired process_time ratios over identical drain work, min over
    # rounds (the measure_counters_overhead discipline): telemetry
    # attached vs telemetry=None on the same chunk sequence.
    spec = stationary_spec(200_000, seed=23)
    chunks = list(ServingStream(spec).chunks(1 << 14))
    rounds = 5
    best = float("inf")
    misses = set()
    for _ in range(rounds):
        plain = ShardedFrontend(NUM_SETS, ASSOC, ENTRIES, shards=2)
        t0 = time.process_time()
        m_plain = sum(plain.process(c) for c in chunks)
        plain_sec = time.process_time() - t0

        telem = ServeTelemetry(2, window_accesses=WINDOW)
        wired = ShardedFrontend(NUM_SETS, ASSOC, ENTRIES, shards=2,
                                telemetry=telem)
        t0 = time.process_time()
        m_wired = sum(wired.process(c) for c in chunks)
        wired_sec = time.process_time() - t0

        misses.update((m_plain, m_wired))
        if plain_sec > 0:
            best = min(best, wired_sec / plain_sec)
    assert len(misses) == 1, f"telemetry changed miss counts: {misses}"
    assert best <= 1.05, (
        f"telemetry overhead {best:.3f}x exceeds the 1.05x budget"
    )
    print(f"  overhead      {best:.3f}x with telemetry attached "
          f"(budget 1.05x), misses bit-identical")


def check_slo_strict_exit():
    args = [
        "serve", "--keys", str(KEYS), "--accesses", "120000",
        "--sets", str(NUM_SETS), "--assoc", str(ASSOC), "--shards", "2",
        "--seed", "11", "--window", str(WINDOW),
    ]
    devnull = open(os.devnull, "w")
    stdout = sys.stdout
    try:
        sys.stdout = devnull
        rc_ok = cli_main(args + ["--slo-min-hit-rate", "0.01",
                                 "--slo-strict"])
        rc_bad = cli_main(args + ["--slo-min-hit-rate", "0.9999",
                                  "--slo-strict"])
        rc_lax = cli_main(args + ["--slo-min-hit-rate", "0.9999"])
    finally:
        sys.stdout = stdout
        devnull.close()
    assert rc_ok == 0, f"satisfiable SLO exited {rc_ok}"
    assert rc_bad == 1, f"--slo-strict on a violated SLO exited {rc_bad}"
    assert rc_lax == 0, f"violated SLO without --slo-strict exited {rc_lax}"
    print("  slo-strict    exit codes 0/1/0 for ok/violated/lax")


def main():
    t0 = time.perf_counter()
    check_scrape_endpoint()
    check_drift_and_slo()
    check_overhead()
    check_slo_strict_exit()
    print(f"slo smoke OK in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
