#!/usr/bin/env python3
"""Fast parallel-runner smoke check (the ``make smoke-parallel`` target).

Runs a 2-benchmark x 2-policy matrix three ways and asserts:

1. ``--workers 2`` is bit-identical to the serial (``workers=1``) path —
   every aggregate and every per-simpoint statistic;
2. a warm-cache rerun of the same matrix performs **zero** simulations
   (cache hit rate 100 % in the emitted metrics) and still returns
   bit-identical results.

Uses a throwaway cache directory so it never touches (or is fooled by)
``~/.cache/repro-eval``.  Exits non-zero on any mismatch.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval import default_config, run_matrix  # noqa: E402

BENCHMARKS = ["429.mcf", "462.libquantum"]
POLICIES = [("LRU", "lru"), ("4-DGIPPR", "dgippr")]


def assert_identical(a, b, context):
    for label, _, _ in [(p[0], None, None) for p in POLICIES]:
        for bench in BENCHMARKS:
            x, y = a.get(label, bench), b.get(label, bench)
            assert (x.misses, x.instructions, x.mpki) == (
                y.misses, y.instructions, y.mpki
            ), f"{context}: aggregate mismatch for {label}/{bench}"
            assert [
                (r.accesses, r.misses, r.instructions) for r in x.runs
            ] == [
                (r.accesses, r.misses, r.instructions) for r in y.runs
            ], f"{context}: per-simpoint mismatch for {label}/{bench}"


def main():
    config = default_config(trace_length=8_000)
    serial = run_matrix(
        POLICIES, config=config, benchmarks=BENCHMARKS,
        workers=1, cache=None, progress=False,
    )
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache:
        cold = run_matrix(
            POLICIES, config=config, benchmarks=BENCHMARKS,
            workers=2, cache=cache, progress=False,
        )
        assert_identical(serial, cold, "parallel vs serial")
        print(f"parallel == serial OK   [{cold.metrics.summary()}]")
        assert cold.metrics.simulated == cold.metrics.jobs_total

        warm = run_matrix(
            POLICIES, config=config, benchmarks=BENCHMARKS,
            workers=2, cache=cache, progress=False,
        )
        assert_identical(serial, warm, "warm cache vs serial")
        assert warm.metrics.simulated == 0, "warm rerun resimulated jobs"
        assert warm.metrics.cache_hit_rate == 1.0, (
            f"warm hit rate {warm.metrics.cache_hit_rate:.0%} != 100%"
        )
        print(f"warm cache OK           [{warm.metrics.summary()}]")
    print("smoke-parallel: all checks passed")


if __name__ == "__main__":
    main()
