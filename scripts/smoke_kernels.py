#!/usr/bin/env python3
"""Fast kernel smoke check (the ``make smoke-kernels`` target).

Asserts, in a few seconds, that the transition-table kernels are sound and
actually fast:

1. tables compile for k in {4, 8, 16} and the compile cache hits on
   recompilation;
2. a randomized access stream produces bit-identical miss counts under the
   LUT kernel and the Figure 5/7/9 bit-walk reference, for every k;
3. the LUT path is at least 2x faster than the walk at k=16 (the full
   bench, ``make bench-kernels``, measures the headline >=3x);
4. the policy objects agree: a GIPPR run with ``kernel="lut"`` and
   ``kernel="walk"`` produce identical CacheStats.

Exits non-zero on any failure.
"""

import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.cache import SetAssociativeCache  # noqa: E402
from repro.ga.fitness import simulate_misses_plru_ipv  # noqa: E402
from repro.kernels import (  # noqa: E402
    clear_kernel_cache,
    compile_tables,
    kernel_cache_info,
    kernel_provenance,
)
from repro.policies import GIPPRPolicy  # noqa: E402

NUM_SETS = 128
ACCESSES = 60_000


def make_stream(accesses, num_sets, assoc, seed=17):
    rng = random.Random(seed)
    footprint = 2 * num_sets * assoc
    hot = num_sets * assoc // 2
    return [
        rng.randrange(hot if rng.random() < 0.7 else footprint)
        for _ in range(accesses)
    ]


def make_ipv(k, seed=5):
    rng = random.Random(seed + k)
    return tuple(rng.randrange(k) for _ in range(k + 1))


def main():
    clear_kernel_cache()

    # 1. Compilation and compile-cache behaviour.
    for k in (4, 8, 16):
        entries = make_ipv(k)
        t0 = time.perf_counter()
        tables = compile_tables(k, entries)
        compile_sec = time.perf_counter() - t0
        assert tables is not None, f"k={k}: tables did not compile"
        assert compile_tables(k, entries) is tables, f"k={k}: cache missed"
        print(
            f"compile k={k:>2}: {compile_sec * 1e3:6.1f} ms, "
            f"{tables.nbytes / 1024:8.1f} KiB"
        )
    info = kernel_cache_info()
    counters = kernel_provenance()["counters"]
    assert counters["cache_hits"] >= 3, (
        f"expected compile-cache hits, got {counters} / {info}"
    )

    # 2. Bit-identical miss counts, LUT vs walk, per k.
    for k in (4, 8, 16):
        entries = make_ipv(k)
        stream = make_stream(ACCESSES, NUM_SETS, k)
        warmup = ACCESSES // 10
        walk_idx, lut_idx = [], []
        walk = simulate_misses_plru_ipv(
            stream, NUM_SETS, k, entries, warmup,
            miss_indices=walk_idx, kernel="walk",
        )
        lut = simulate_misses_plru_ipv(
            stream, NUM_SETS, k, entries, warmup,
            miss_indices=lut_idx, kernel="lut",
        )
        assert (walk, walk_idx) == (lut, lut_idx), (
            f"k={k}: walk {walk} misses != lut {lut} misses"
        )
        print(f"equivalence k={k:>2}: {walk} misses, identical indices OK")

    # 3. Throughput: LUT >= 2x walk at k=16.
    entries = make_ipv(16)
    stream = make_stream(ACCESSES, NUM_SETS, 16)
    t0 = time.perf_counter()
    simulate_misses_plru_ipv(stream, NUM_SETS, 16, entries, 0, kernel="walk")
    walk_sec = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate_misses_plru_ipv(stream, NUM_SETS, 16, entries, 0, kernel="lut")
    lut_sec = time.perf_counter() - t0
    speedup = walk_sec / lut_sec
    print(f"throughput k=16: {speedup:.2f}x (walk {walk_sec:.3f}s, "
          f"lut {lut_sec:.3f}s)")
    assert speedup >= 2.0, f"LUT only {speedup:.2f}x over walk at k=16"

    # 4. Policy-level agreement: identical CacheStats lut vs walk.
    from repro.core.ipv import IPV

    ipv = IPV(make_ipv(16), name="smoke")
    stats = {}
    for kernel in ("walk", "lut"):
        policy = GIPPRPolicy(NUM_SETS, 16, ipv=ipv, kernel=kernel)
        assert policy.kernel_mode == kernel, policy.kernel_mode
        cache = SetAssociativeCache(NUM_SETS, 16, policy, block_size=1)
        for addr in make_stream(20_000, NUM_SETS, 16, seed=23):
            cache.access(addr)
        snap = cache.stats.snapshot()
        snap.pop("mpki", None)  # NaN with zero instructions; not comparable
        stats[kernel] = snap
    assert stats["walk"] == stats["lut"], (
        f"policy stats diverge: {stats['walk']} vs {stats['lut']}"
    )
    print(f"policy stats lut == walk OK   [{stats['lut']}]")

    prov = kernel_provenance()
    print(f"kernel provenance: mode={prov['mode']}, "
          f"compiles={prov['counters']['compiles']}, "
          f"lut_calls={prov['counters']['lut_calls']}")
    print("smoke-kernels OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
