#!/usr/bin/env python3
"""Fast serving smoke check (the ``make smoke-serving`` target).

Asserts, in a few seconds, that the streaming serving scenario is sound
end to end:

1. sharding is layout, not semantics: the same churning flash-crowd
   stream produces bit-identical miss counts across shards in {1, 2, 4}
   and across the columnar engine vs the forced scalar fallback, all
   equal to a single-cache scalar reference fed one access at a time;
2. the report schema holds: ``run_serving`` with ``report_path`` writes
   a JSON report carrying the documented fields plus a provenance
   manifest sidecar with the spec digest and the derived seed, and the
   status file publishes progress;
3. determinism: two streams from one spec are identical, and
   ``seed=None`` derives the same seed in-process both times;
4. backpressure is bounded and visible: a tiny ingest queue sheds load
   into ``shed_accesses`` instead of growing without bound.

Exits non-zero on any failure.
"""

import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.engine.scalar import ScalarStreamSimulator  # noqa: E402
from repro.core.ipv import lru_ipv  # noqa: E402
from repro.serve.frontend import ShardedFrontend  # noqa: E402
from repro.serve.service import run_serving  # noqa: E402
from repro.serve.workload import (  # noqa: E402
    ServingSpec,
    ServingStream,
    auto_flash_phases,
)

NUM_SETS = 256
ASSOC = 8
ACCESSES = 200_000
CHUNK = 1 << 14
ENTRIES = tuple(lru_ipv(ASSOC).entries)

REPORT_FIELDS = (
    "schema", "spec", "spec_digest", "seed", "seed_derived", "policy",
    "ipv", "num_sets", "assoc", "shards", "engine", "backend",
    "accesses", "misses", "miss_rate", "wall_sec",
    "throughput_accesses_per_sec", "shed_accesses", "shed_ratio",
    "retired_keys", "shards_detail", "totals", "telemetry", "slo",
)


def smoke_spec(accesses=ACCESSES):
    return ServingSpec(
        keys=1 << 12,
        alpha=1.1,
        tenants=2,
        accesses=accesses,
        churn_per_million=25_000,
        phases=auto_flash_phases(accesses, 1, share=0.5, hot_keys=32),
        seed=None,  # exercise spec-digest seed derivation
    )


def stream_addresses(spec):
    out = []
    for chunk in ServingStream(spec).chunks(CHUNK):
        out.extend(int(a) for a in chunk)
    return out


def check_bit_identity():
    spec = smoke_spec()
    prefix = stream_addresses(spec)
    assert len(prefix) == spec.accesses

    reference = ScalarStreamSimulator(NUM_SETS, ASSOC, ENTRIES, warmup=0)
    want = reference.feed(prefix)

    results = {}
    for shards in (1, 2, 4):
        for engine in ("columnar", "scalar"):
            frontend = ShardedFrontend(
                NUM_SETS, ASSOC, ENTRIES, shards=shards, engine=engine
            )
            for lo in range(0, len(prefix), CHUNK):
                frontend.process(prefix[lo:lo + CHUNK])
            assert frontend.accesses == spec.accesses
            results[(shards, engine)] = frontend.misses
    assert set(results.values()) == {want}, (
        f"shard/engine divergence: reference={want}, got {results}"
    )
    print(f"  bit-identity   {want} misses across shards x engines "
          f"== scalar reference ({len(prefix):,} accesses)")
    return want


def check_report_schema():
    spec = smoke_spec(accesses=60_000)
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "serving.json")
        status_path = os.path.join(tmp, "status.json")
        report = run_serving(
            spec, NUM_SETS, ASSOC, policy="lru", shards=2,
            chunk_accesses=CHUNK, status_path=status_path,
            report_path=report_path,
        )
        with open(report_path) as handle:
            payload = json.load(handle)
        missing = [f for f in REPORT_FIELDS if f not in payload]
        assert not missing, f"report missing fields: {missing}"
        assert payload["schema"] == "repro-serving-report/2"
        assert payload["accesses"] == spec.accesses
        assert payload["misses"] == report.misses
        assert payload["seed_derived"] is True
        assert payload["seed"] == spec.resolved_seed()
        assert len(payload["shards_detail"]) == 2

        manifest_path = os.path.join(tmp, "serving.manifest.json")
        assert os.path.exists(manifest_path), "manifest sidecar missing"
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest.get("serving_seed") == spec.resolved_seed()
        assert manifest.get("serving_seed_derived") is True
        assert manifest.get("seed") == spec.resolved_seed()

        with open(status_path) as handle:
            status = json.load(handle)
        assert status.get("accesses_done") == spec.accesses
    print(f"  report schema  {len(REPORT_FIELDS)} fields + manifest "
          f"sidecar + status file OK ({report.misses} misses)")


def check_determinism():
    spec = smoke_spec(accesses=50_000)
    assert spec.resolved_seed() == smoke_spec(50_000).resolved_seed()
    a = stream_addresses(spec)
    b = stream_addresses(smoke_spec(accesses=50_000))
    assert a == b, "seed=None stream is not deterministic"
    other = ServingSpec(
        keys=1 << 12, alpha=1.3, accesses=50_000, seed=None
    )
    assert spec.resolved_seed() != other.resolved_seed()
    print(f"  determinism    derived seed {spec.resolved_seed()} stable; "
          f"distinct spec -> distinct seed")


def check_backpressure():
    frontend = ShardedFrontend(
        NUM_SETS, ASSOC, ENTRIES, shards=2, max_queue_batches=2
    )
    batch = list(range(NUM_SETS * 4))
    shed_before = frontend.shed_accesses
    for _ in range(8):
        frontend.ingest(batch)
    assert frontend.queued_batches <= 2 * frontend.shards
    assert frontend.shed_accesses > shed_before, (
        "overflowing a bounded queue must shed load"
    )
    shed = frontend.shed_accesses
    frontend.drain()
    assert frontend.queued_batches == 0
    print(f"  backpressure   queue stayed bounded, shed {shed} accesses")


def main():
    t0 = time.perf_counter()
    check_bit_identity()
    check_report_schema()
    check_determinism()
    check_backpressure()
    print(f"serving smoke OK in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
