#!/usr/bin/env python3
"""Evolve workload-neutral and workload-inclusive vector sets (Section 4.4).

Two modes, matching the paper's WNk methodology (it defines the general
hold-out-k scheme and uses k=1 on a cluster):

* default (``--folds 2``): WN-half cross-validation — benchmarks are split
  into folds and each benchmark's vectors are trained on the *other*
  fold(s).  Honest leave-out at single-core cost.
* ``--folds 0``: full WN1 (train on all-but-one for every benchmark), the
  paper's exact setting; 29x more GA work.

Each training set yields 1-, 2- and 4-vector IPV sets, plus one
workload-inclusive (WI) set trained on everything.  Results land in
``src/repro/data/wn1_vectors.json`` where
:func:`repro.core.vectors.load_wn1_vectors` and the honest-WN1 bench pick
them up.

Run:  python scripts/evolve_wn1_vectors.py [--workers N] [--folds K] [--quick]
"""

import argparse
import json
import os
import sys
from concurrent.futures import ProcessPoolExecutor

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.config import default_config  # noqa: E402
from repro.eval.crossval import evolve_duel_vectors  # noqa: E402
from repro.workloads import benchmark_names  # noqa: E402

OUTPUT = os.path.join(
    os.path.dirname(__file__), "..", "src", "repro", "data", "wn1_vectors.json"
)
VECTOR_COUNTS = (1, 2, 4)


def _task(args):
    """One GA job: evolve ``num_vectors`` IPVs on an explicit training set."""
    label, training, num_vectors, trace_length, population, generations = args
    config = default_config(trace_length=trace_length)
    vectors = evolve_duel_vectors(
        training,
        num_vectors,
        config=config,
        population_size=population,
        generations=generations,
        seed=(hash((label, num_vectors)) & 0xFFFF),
    )
    return label, num_vectors, [list(v.entries) for v in vectors]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=os.cpu_count() or 1)
    parser.add_argument("--trace-length", type=int, default=5000)
    parser.add_argument("--population", type=int, default=10)
    parser.add_argument("--generations", type=int, default=2)
    parser.add_argument(
        "--folds", type=int, default=2,
        help="cross-validation folds (0 = full leave-one-out WN1)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="only a handful of benchmarks (smoke test)",
    )
    parser.add_argument("--output", default=OUTPUT)
    args = parser.parse_args()

    benches = benchmark_names()
    if args.quick:
        benches = benches[:4]

    # Build (label, training set) pairs.  Fold mode: each fold's members
    # get vectors trained on the complement; WN1 mode: one training set per
    # held-out benchmark.
    jobs = [("WI", benches)]
    bench_to_label = {}
    if args.folds and args.folds >= 2:
        for fold in range(args.folds):
            members = benches[fold :: args.folds]
            training = [b for b in benches if b not in members]
            label = f"fold{fold}"
            jobs.append((label, training))
            for bench in members:
                bench_to_label[bench] = label
    else:
        for bench in benches:
            label = f"wo-{bench}"
            jobs.append((label, [b for b in benches if b != bench]))
            bench_to_label[bench] = label

    tasks = [
        (label, training, n, args.trace_length, args.population,
         args.generations)
        for label, training in jobs
        for n in VECTOR_COUNTS
    ]
    print(f"{len(tasks)} GA tasks over {args.workers} workers", flush=True)

    by_label = {}
    done = 0
    with ProcessPoolExecutor(max_workers=args.workers) as pool:
        for label, num_vectors, vectors in pool.map(_task, tasks):
            by_label.setdefault(label, {})[str(num_vectors)] = vectors
            done += 1
            print(f"[{done}/{len(tasks)}] {label} x{num_vectors}", flush=True)

    # Expand fold labels to per-benchmark entries (the loader's schema).
    results = {"WI": by_label["WI"]}
    for bench, label in bench_to_label.items():
        results[bench] = by_label[label]

    payload = {
        "methodology": (
            "WNk cross-validation per Section 4.4 "
            f"({args.folds or 1}-fold; folds=0 means leave-one-out); "
            "'WI' trained on all"
        ),
        "ga": {
            "trace_length": args.trace_length,
            "population": args.population,
            "generations": args.generations,
            "folds": args.folds,
        },
        "vectors": results,
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
