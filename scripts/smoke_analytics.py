#!/usr/bin/env python3
"""Cache-dynamics analytics smoke check (``make smoke-analytics``).

Exercises ``repro.obs.analytics`` end to end and asserts:

1. the vectorized Mattson profiler is **bit-identical** to the
   ``repro.trace.analysis`` oracles — global stack-distance histogram,
   per-set stack histograms, and the PDP reuse histogram — on a
   randomized mixed hit/miss stream, and its miss curve is sane
   (monotone non-increasing, anchored at ``misses(0) == accesses`` and
   ``misses(footprint) == cold misses``);
2. the same bit-equality holds on a synthetic SPEC-archetype trace
   (``462.libquantum``), i.e. on the streams experiments actually use;
3. columnar :class:`BatchSimulator` counters **reconcile exactly** with
   a scalar ``GIPPRPolicy`` + ``SetAssociativeCache`` run of every lane
   (accesses/hits/misses/evictions via
   :func:`repro.obs.analytics.reconcile_with_stats`), miss counts are
   unchanged by enabling counters, and ``measured_misses`` carries the
   warmup-filtered view;
4. :class:`DuelBatchSimulator` counters reconcile with the scalar
   ``DGIPPRPolicy`` set-dueling oracle, including the final PSEL value;
5. the counter flush surfaces work: gauges/histograms round-trip
   through the Prometheus exporter, the manifest block carries its
   schema, and sampled miss events validate against the tracer's
   ``EVENT_SCHEMA``;
6. the **counters-enabled overhead budget** holds: ``counters=True``
   costs at most 5 % over a plain columnar run (min-of-N interleaved
   timing via :func:`repro.obs.overhead.measure_counters_overhead`).

Exits non-zero on any failure.  Without numpy only the (slow but
identical) profiler fallback can run, so the columnar checks are
skipped with a notice — same posture as ``make smoke-kernels``.
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.analytics import profile_trace  # noqa: E402
from repro.trace.analysis import (  # noqa: E402
    per_set_reuse_histogram,
    stack_distance_histogram,
)
from repro.trace.record import Trace  # noqa: E402

OVERHEAD_BUDGET = 1.05

BENCHMARK = "462.libquantum"
NUM_SETS = 16
ASSOC = 8
LENGTH = 6_000


def make_stream(accesses, num_sets, assoc, seed=5):
    """Mixed hit/miss stream over ~2x the cache footprint."""
    rng = random.Random(seed)
    footprint = 2 * num_sets * assoc
    hot = num_sets * assoc // 2
    return [
        rng.randrange(hot) if rng.random() < 0.7 else rng.randrange(footprint)
        for _ in range(accesses)
    ]


def check_profile_matches_oracle(label, addresses, num_sets, max_distance=64):
    trace = Trace(list(addresses), name=f"smoke-{label}")
    profile = profile_trace(
        addresses, num_sets=num_sets, max_distance=max_distance
    )
    oracle = stack_distance_histogram(trace, max_distance=max_distance)
    assert profile.stack_distance_histogram() == oracle, (
        f"{label}: global stack-distance histogram diverges from oracle"
    )
    reuse = per_set_reuse_histogram(trace, num_sets)
    assert profile.per_set_reuse_histogram() == reuse, (
        f"{label}: per-set reuse histogram diverges from oracle"
    )
    # Per-set stack histograms against the oracle run on each subsequence.
    mask = num_sets - 1
    for s in range(num_sets):
        sub = [a for a in addresses if a & mask == s]
        sub_oracle = stack_distance_histogram(
            Trace(sub, name=f"{label}-s{s}"), max_distance=max_distance
        )
        assert profile.per_set_stack_histogram(s) == sub_oracle, (
            f"{label}: set {s} stack histogram diverges from oracle"
        )
    # Miss-curve sanity: monotone, correctly anchored at both ends.
    counts = profile.miss_counts()
    assert counts[0] == profile.accesses, "misses(0) must equal accesses"
    assert counts[-1] == profile.cold_misses, (
        "misses(footprint) must equal cold misses"
    )
    assert all(a >= b for a, b in zip(counts, counts[1:])), (
        "miss curve must be non-increasing in capacity"
    )
    return profile


def columnar_checks():
    import numpy as np  # noqa: F401  (presence gates this block)

    from repro.cache import SetAssociativeCache
    from repro.core.ipv import IPV, lip_ipv, lru_ipv
    from repro.engine.columnar import BatchSimulator, DuelBatchSimulator
    from repro.obs.analytics import (
        publish_batch_counters,
        reconcile_with_stats,
    )
    from repro.obs.analytics.counters import (
        counters_manifest_extra,
        sampled_miss_events,
    )
    from repro.obs.metrics import MetricsRegistry, parse_prometheus
    from repro.policies import DGIPPRPolicy, GIPPRPolicy

    rng = random.Random(11)
    stream = make_stream(8_000, NUM_SETS, ASSOC, seed=11)
    lanes = [
        tuple(lru_ipv(ASSOC).entries),
        tuple(lip_ipv(ASSOC).entries),
        tuple(rng.randrange(ASSOC) for _ in range(ASSOC + 1)),
    ]

    # 3. Batch counters reconcile with the scalar cache, lane by lane.
    simulator = BatchSimulator(NUM_SETS, ASSOC, lanes)
    plain = simulator.run(stream)
    misses, miss_indices = simulator.run(
        stream, collect_miss_indices=True, counters=True
    )
    assert (plain == misses).all(), (
        "enabling counters changed the simulated miss counts"
    )
    counters = simulator.counters
    for lane, entries in enumerate(lanes):
        policy = GIPPRPolicy(
            NUM_SETS, ASSOC, ipv=IPV(list(entries), name=f"lane{lane}"),
            kernel="walk",
        )
        cache = SetAssociativeCache(NUM_SETS, ASSOC, policy, block_size=1)
        for address in stream:
            cache.access(address)
        reconcile_with_stats(counters, lane, cache.stats)
        assert counters.totals(lane)["measured_misses"] == int(misses[lane])
    print(f"batch counters OK       [{len(lanes)} lanes reconcile with "
          "scalar CacheStats]")

    # measured_misses is the warmup-filtered view; whole-stream totals
    # must not move when warmup does.
    warm = BatchSimulator(NUM_SETS, ASSOC, lanes, warmup=500)
    warm_misses = warm.run(stream, counters=True)
    warm_counters = warm.counters
    for lane in range(len(lanes)):
        assert (
            warm_counters.totals(lane)["misses"]
            == counters.totals(lane)["misses"]
        ), "whole-stream miss total moved with warmup"
        assert (
            warm_counters.totals(lane)["measured_misses"]
            == int(warm_misses[lane])
        )
    print("warmup view OK          [whole-stream totals invariant, "
          "measured_misses filtered]")

    # 4. Duel counters reconcile with the scalar DGIPPR oracle.
    pairs = [(lanes[0], lanes[1]), (lanes[1], lanes[2])]
    duel = DuelBatchSimulator(NUM_SETS, ASSOC, pairs)
    duel_misses = duel.run(stream, counters=True)
    duel_counters = duel.counters
    for lane, (a, b) in enumerate(pairs):
        policy = DGIPPRPolicy(
            NUM_SETS, ASSOC,
            ipvs=[IPV(list(a), name="a"), IPV(list(b), name="b")],
            kernel="walk",
        )
        cache = SetAssociativeCache(NUM_SETS, ASSOC, policy, block_size=1)
        for address in stream:
            cache.access(address)
        reconcile_with_stats(duel_counters, lane, cache.stats)
        assert int(duel.psel[lane]) == policy.selector.psel.value, (
            f"duel lane {lane}: PSEL diverges from scalar policy"
        )
        assert int(duel_misses[lane]) == cache.stats.misses
    print(f"duel counters OK        [{len(pairs)} lanes reconcile, "
          "PSEL exact]")

    # 5. Flush surfaces: registry, manifest block, sampled events.
    registry = MetricsRegistry()
    publish_batch_counters(counters, registry)
    publish_batch_counters(counters, registry)  # republish must not drift
    parsed = parse_prometheus(registry.to_prometheus())
    assert parsed, "Prometheus export parsed to nothing"
    lane0 = (("engine", "batch"), ("lane", "0"))
    hits = parsed.get(("repro_engine_hits", lane0))
    assert hits == counters.totals(0)["hits"], (
        f"published hits {hits} != counter totals"
    )
    assert any(
        name == "repro_engine_hit_depth_bucket" for name, _ in parsed
    ), "hit-depth histogram missing from export"

    extra = counters_manifest_extra(counters)
    assert extra["schema"] == "repro-engine-counters/1"
    assert len(extra["lanes"]) == len(lanes)

    events = sampled_miss_events(
        stream, miss_indices[0], NUM_SETS, sample=16
    )
    assert events, "no sampled miss events produced"
    mask = NUM_SETS - 1
    for event in events:
        payload = event.to_dict()  # validated on construction
        assert payload["set"] == payload["block"] & mask
    print(f"flush OK                [{len(parsed)} samples, "
          f"{len(events)} sampled events validate]")

    # 6. Counters overhead budget.  The ratio's floor is the true cost;
    # noisy-box spikes only ever push it up, so best-of-3 measurement
    # batches gates on the floor without loosening the budget.
    from repro.obs.overhead import measure_counters_overhead

    best_ratio = float("inf")
    for attempt in range(3):
        _, _, ratio, misses_match = measure_counters_overhead(
            accesses=150_000, repeats=7
        )
        assert misses_match, "counters run diverged from plain run"
        best_ratio = min(best_ratio, ratio)
        if best_ratio <= OVERHEAD_BUDGET:
            break
    assert best_ratio <= OVERHEAD_BUDGET, (
        f"counters overhead {best_ratio:.3f}x exceeds "
        f"{OVERHEAD_BUDGET:.2f}x budget"
    )
    print(f"overhead OK             [{best_ratio:.3f}x <= "
          f"{OVERHEAD_BUDGET:.2f}x]")


def main():
    # 1. Profiler vs oracle on a randomized mixed hit/miss stream.
    stream = make_stream(5_000, NUM_SETS, ASSOC, seed=5)
    profile = check_profile_matches_oracle("random", stream, NUM_SETS)
    print(f"profiler OK             [random stream, footprint "
          f"{profile.footprint}, bit-identical to oracle]")

    # 2. Profiler vs oracle on a SPEC-archetype trace.
    from repro.eval.config import ExperimentConfig
    from repro.workloads import get_benchmark

    config = ExperimentConfig(
        num_sets=NUM_SETS, assoc=ASSOC, trace_length=LENGTH, seed=0,
        apply_env_scale=False,
    )
    benchmark = get_benchmark(BENCHMARK)
    trace = benchmark.trace(
        0, config.trace_length, config.capacity_blocks, seed=config.seed
    )
    profile = check_profile_matches_oracle(
        "spec", trace.address_list(), NUM_SETS
    )
    print(f"archetype OK            [{BENCHMARK}, footprint "
          f"{profile.footprint}, bit-identical to oracle]")

    from repro.kernels.tables import numpy_or_none

    if numpy_or_none() is None:
        print("columnar checks SKIPPED [numpy unavailable; profiler "
              "fallback already verified above]")
    else:
        columnar_checks()
    print("smoke-analytics: all checks passed")


if __name__ == "__main__":
    main()
