#!/usr/bin/env python3
"""Plot a set-dueling PSEL timeline for a dueling policy.

Runs one benchmark simpoint through a dueling policy (DGIPPR by default)
with the repro.obs tracer sampling the saturating counters every
``--every`` accesses, then renders the timeline as an ASCII chart and
writes the raw samples as CSV (and a PNG when matplotlib is installed —
the script degrades gracefully without it).

A positive PSEL means the *second* policy of the duel has been missing
less recently; zero crossings are exactly the selector's follower flips.

Run:  python scripts/plot_psel_timeline.py 429.mcf --policy dgippr \
          --length 20000 --every 50 --csv results/psel.csv
"""

import argparse
import csv
import os
import sys
from collections import defaultdict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.config import ExperimentConfig  # noqa: E402
from repro.eval.runner import run_trace  # noqa: E402
from repro.obs import ListSink, Tracer, build_manifest, write_manifest  # noqa: E402
from repro.policies import make_policy  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402

CHART_WIDTH = 72
CHART_HEIGHT = 15


def ascii_timeline(samples, width=CHART_WIDTH, height=CHART_HEIGHT):
    """Render (access, value) pairs as a fixed-size ASCII chart."""
    if not samples:
        return "(no samples)"
    values = [v for _, v in samples]
    lo, hi = min(values), max(values)
    if lo == hi:
        lo, hi = lo - 1, hi + 1
    # Down-sample to the chart width by last-value-in-bucket.
    per_col = max(1, len(samples) // width)
    columns = [samples[min(i * per_col, len(samples) - 1)][1]
               for i in range(min(width, len(samples)))]
    grid = [[" "] * len(columns) for _ in range(height)]
    zero_row = None
    if lo <= 0 <= hi:
        zero_row = height - 1 - int((0 - lo) / (hi - lo) * (height - 1))
        for x in range(len(columns)):
            grid[zero_row][x] = "-"
    for x, value in enumerate(columns):
        y = height - 1 - int((value - lo) / (hi - lo) * (height - 1))
        grid[y][x] = "*"
    lines = []
    for y, row in enumerate(grid):
        label = ""
        if y == 0:
            label = f"{hi:>7}"
        elif y == height - 1:
            label = f"{lo:>7}"
        elif zero_row is not None and y == zero_row:
            label = f"{0:>7}"
        lines.append(f"{label:>7} |{''.join(row)}")
    first, last = samples[0][0], samples[-1][0]
    lines.append(f"{'':>7} +{'-' * len(columns)}")
    lines.append(f"{'':>7}  access {first} .. {last}")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="429.mcf")
    parser.add_argument("--policy", default="dgippr",
                        help="a dueling policy (dgippr, drrip, dip, ...)")
    parser.add_argument("--simpoint", type=int, default=0)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--sets", type=int, default=64)
    parser.add_argument("--assoc", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--every", type=int, default=50,
                        help="sample the counters every N accesses")
    parser.add_argument("--counter", default=None,
                        help="which counter to chart (default: first seen; "
                             "psel, pair01, pair23, meta)")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write all samples as CSV")
    parser.add_argument("--png", default=None, metavar="PATH",
                        help="write a PNG (requires matplotlib)")
    args = parser.parse_args()

    benchmark = get_benchmark(args.benchmark)
    config = ExperimentConfig(
        num_sets=args.sets, assoc=args.assoc, trace_length=args.length,
        seed=args.seed, apply_env_scale=False,
    )
    trace = benchmark.trace(
        args.simpoint, config.trace_length, config.capacity_blocks,
        seed=config.seed,
    )
    policy = make_policy(args.policy, args.sets, args.assoc)
    if getattr(policy, "selector", None) is None:
        parser.error(f"{args.policy} has no set-dueling selector")

    sink = ListSink()
    tracer = Tracer(sink=sink, psel_every=args.every)
    result = run_trace(policy, trace, config, tracer=tracer)

    timelines = defaultdict(list)
    flips = []
    for event in sink:
        if event.kind == "psel_sample":
            timelines[event.label].append((event.access, event.value))
        elif event.kind == "duel_flip":
            flips.append((event.access, event.value, event.policy))

    print(f"{policy.name} @ {trace.name}: miss rate "
          f"{result.miss_rate:.4f}, {len(flips)} follower flips")
    if not timelines:
        print("no PSEL samples recorded — is --every larger than the trace?")
        return 1
    counter = args.counter or sorted(timelines)[0]
    if counter not in timelines:
        parser.error(f"counter {counter!r} not in trace "
                     f"(have: {', '.join(sorted(timelines))})")
    print(f"\nPSEL timeline — counter {counter!r} "
          f"(every {args.every} accesses):\n")
    print(ascii_timeline(timelines[counter]))
    if flips:
        shown = ", ".join(f"@{a} {old}->{new}" for a, old, new in flips[:8])
        more = f" (+{len(flips) - 8} more)" if len(flips) > 8 else ""
        print(f"\nfollower flips: {shown}{more}")

    if args.csv:
        os.makedirs(os.path.dirname(args.csv) or ".", exist_ok=True)
        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["counter", "access", "value"])
            for name in sorted(timelines):
                for access, value in timelines[name]:
                    writer.writerow([name, access, value])
        write_manifest(args.csv, build_manifest(
            config=config, policy=args.policy, seed=args.seed,
            extra={"benchmark": benchmark.name, "simpoint": args.simpoint,
                   "psel_every": args.every, "output": args.csv},
        ))
        print(f"\nsamples written to {args.csv} (+ manifest)")

    if args.png:
        try:
            import matplotlib

            matplotlib.use("Agg")
            import matplotlib.pyplot as plt
        except ImportError:
            print("matplotlib not installed; skipping PNG", file=sys.stderr)
        else:
            fig, ax = plt.subplots(figsize=(10, 4))
            for name in sorted(timelines):
                xs, ys = zip(*timelines[name])
                ax.plot(xs, ys, label=name)
            for access, _, _ in flips:
                ax.axvline(access, color="grey", alpha=0.3, linewidth=0.8)
            ax.axhline(0, color="black", linewidth=0.8)
            ax.set_xlabel("access")
            ax.set_ylabel("counter value")
            ax.set_title(f"{policy.name} PSEL timeline — {trace.name}")
            ax.legend()
            fig.tight_layout()
            fig.savefig(args.png, dpi=120)
            print(f"plot written to {args.png}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
