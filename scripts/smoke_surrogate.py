#!/usr/bin/env python3
"""Surrogate prefilter smoke check (the ``make smoke-surrogate`` target).

Asserts, in under a minute, that the analytic fitness surrogate is
trustworthy where it claims to be:

1. **Rank fidelity**: on the LRU-IPV substrate (the model's native
   Mattson space) a 64-candidate random audit reaches Spearman
   rho >= 0.5 on streaming workloads, and the prefilter stays active;
2. **Bit identity**: every fitness the prefilter returns equals the
   plain evaluator float for the same vector, exactly;
3. **Exact memo accounting**: a repeated batch costs zero simulator
   calls — the :class:`FitnessMemo` serves every lookup, with hit/miss
   counters that add up;
4. **GA equivalence**: a small deterministic GA run recovers the same
   best vector and bit-identical best fitness with the prefilter on and
   off;
5. **Feature cache determinism**: the on-disk feature payload
   round-trips bit-for-bit and re-scores a population identically;
6. **Population scale**: scoring a paper-scale 20 000-candidate
   population takes seconds, not minutes.

Exits non-zero on any failure.
"""

import os
import random
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.config import default_config  # noqa: E402
from repro.ga import FitnessEvaluator, evolve_ipv  # noqa: E402
from repro.ga.parallel import PopulationEvaluator  # noqa: E402
from repro.ga.surrogate import (  # noqa: E402
    FitnessMemo,
    SurrogateModel,
    SurrogatePrefilter,
    clear_feature_memo,
    features_for_trace,
    spearman_rho,
)

#: The smoke's fidelity bar.  On the LRU substrate the model's audit rho
#: sits around 0.7-0.9 on these workloads; 0.5 keeps the check sharp
#: without being flaky, and matches the default deactivation floor.
RHO_FLOOR = 0.5
BENCHMARKS = ["470.lbm", "482.sphinx3"]


class CountingEvaluator:
    """PopulationEvaluator proxy that counts simulator-bound candidates."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def evaluate_all(self, batch):
        self.calls += len(batch)
        return self.inner.evaluate_all(batch)


def random_batch(k, count, seed):
    rng = random.Random(seed)
    return [
        tuple(rng.randrange(k) for _ in range(k + 1)) for _ in range(count)
    ]


def check_fidelity_and_bit_identity():
    cfg = default_config(trace_length=4_000)
    evaluator = FitnessEvaluator(BENCHMARKS, config=cfg, substrate="lru")
    model = SurrogateModel.from_evaluator(evaluator, cache_dir=None)
    batch = random_batch(evaluator.k, 256, seed=13)
    prefilter = SurrogatePrefilter(
        model, keep=0.1, audit=64, rho_floor=RHO_FLOOR, seed=1
    )
    memo = FitnessMemo()
    with PopulationEvaluator(evaluator) as pop_eval:
        kept = prefilter.evaluate_batch(pop_eval, memo, batch)
        assert prefilter.rho is not None, "audit did not run"
        assert prefilter.rho >= RHO_FLOOR, (
            f"audit Spearman rho {prefilter.rho:.3f} below {RHO_FLOOR}"
        )
        assert prefilter.active, "prefilter deactivated on the smoke config"
        assert prefilter.skipped > 0, "prefilter culled nothing"
        for fitness, entries in kept:
            exact = evaluator.evaluate(entries)
            assert exact == fitness, (
                f"prefiltered fitness {fitness!r} != simulated {exact!r} "
                f"for {entries}"
            )
    print(
        f"  fidelity: audit rho {prefilter.rho:+.3f} over "
        f"{prefilter.audits} audit(s); {len(kept)}/{len(batch)} simulated, "
        f"all bit-identical"
    )
    return model


def check_memo_accounting():
    cfg = default_config(trace_length=2_000)
    evaluator = FitnessEvaluator(BENCHMARKS[:1], config=cfg, substrate="lru")
    batch = random_batch(evaluator.k, 24, seed=2) * 2  # in-batch duplicates
    memo = FitnessMemo()
    with PopulationEvaluator(evaluator) as pop_eval:
        counting = CountingEvaluator(pop_eval)
        first = memo.evaluate_all(counting, batch)
        unique = len(set(batch))
        assert counting.calls == unique, (
            f"first pass simulated {counting.calls}, expected {unique}"
        )
        assert memo.misses == unique and memo.hits == len(batch) - unique
        second = memo.evaluate_all(counting, batch)
        assert counting.calls == unique, "second pass hit the simulator"
        assert second == first, "memoized floats differ from simulated"
        assert memo.hits == 2 * len(batch) - unique
    print(
        f"  memo: {unique} simulations served {2 * len(batch)} lookups "
        f"({memo.hits} hits, {memo.misses} misses)"
    )


def check_ga_equivalence():
    cfg = default_config(assoc=4, trace_length=2_500)
    kwargs = dict(
        population_size=16, initial_population_size=32, generations=4,
        seed=5,
    )
    plain = evolve_ipv(
        FitnessEvaluator(BENCHMARKS, config=cfg, substrate="lru"), **kwargs
    )
    filtered_eval = FitnessEvaluator(BENCHMARKS, config=cfg, substrate="lru")
    # rho_floor=-1: keep filtering active for the whole run (the tiny
    # k=4 audit sample makes rho noisy) so the equality below exercises
    # real culling in every generation, not a deactivated fallback.
    prefilter = SurrogatePrefilter.from_evaluator(
        filtered_eval, keep=0.75, audit=8, rho_floor=-1.0, seed=5,
        cache_dir=None,
    )
    filtered = evolve_ipv(filtered_eval, surrogate=prefilter, **kwargs)
    assert tuple(filtered.best.entries) == tuple(plain.best.entries), (
        f"prefiltered GA best {list(filtered.best.entries)} != "
        f"unfiltered {list(plain.best.entries)}"
    )
    assert filtered.best_fitness == plain.best_fitness, (
        "best fitness not bit-identical across prefiltered/unfiltered runs"
    )
    assert filtered.surrogate["skipped"] > 0, "prefilter culled nothing"
    print(
        f"  GA: prefiltered run recovered the unfiltered best "
        f"{list(plain.best.entries)} (fitness {plain.best_fitness:.4f}) "
        f"while culling {filtered.surrogate['skipped']} candidates"
    )


def check_feature_cache(model):
    cfg = default_config(trace_length=2_000)
    evaluator = FitnessEvaluator(BENCHMARKS[:1], config=cfg, substrate="lru")
    _name, _w, addresses, _instr, _pos = evaluator._workloads[0]
    with tempfile.TemporaryDirectory() as tmp:
        clear_feature_memo()
        fresh = features_for_trace(addresses, cfg.num_sets, 64,
                                   cache_dir=tmp)
        clear_feature_memo()
        cached = features_for_trace(addresses, cfg.num_sets, 64,
                                    cache_dir=tmp)
        assert cached.to_payload() == fresh.to_payload(), (
            "disk-cached features differ from freshly profiled ones"
        )
    clear_feature_memo()
    # Re-scoring through a rebuilt model must reproduce identical ranks.
    rebuilt = SurrogateModel.from_evaluator(
        FitnessEvaluator(
            BENCHMARKS, config=default_config(trace_length=4_000),
            substrate="lru",
        ),
        cache_dir=None,
    )
    batch = random_batch(model.assoc, 128, seed=21)
    a = model.score_population(batch)
    b = rebuilt.score_population(batch)
    assert a == b, "rebuilt model scores differ (non-deterministic features)"
    assert spearman_rho(a, b) == 1.0
    print("  features: disk round-trip and rebuilt-model scores identical")
    return batch


def check_population_scale(model):
    batch = random_batch(model.assoc, 20_000, seed=3)
    t0 = time.perf_counter()
    scores = model.score_population(batch)
    elapsed = time.perf_counter() - t0
    assert len(scores) == len(batch)
    assert elapsed < 60.0, (
        f"scoring 20k candidates took {elapsed:.1f}s — surrogate is not O(1)"
    )
    print(
        f"  scale: scored {len(batch)} candidates in {elapsed:.2f}s "
        f"({len(batch) / elapsed:,.0f}/s)"
    )


def main():
    t0 = time.perf_counter()
    print("surrogate smoke:")
    model = check_fidelity_and_bit_identity()
    check_memo_accounting()
    check_ga_equivalence()
    check_feature_cache(model)
    check_population_scale(model)
    print(f"surrogate smoke passed in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
