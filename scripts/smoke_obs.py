#!/usr/bin/env python3
"""Observability smoke check (the ``make smoke-obs`` target).

Exercises the whole ``repro.obs`` stack end to end and asserts:

1. a tiny traced simulation writes a JSONL event stream in which **every**
   line validates against :data:`repro.obs.events.EVENT_SCHEMA`;
2. replaying that stream (:func:`repro.obs.tracer.replay_counts`)
   reproduces the untraced run's hit/miss/eviction/bypass counts exactly
   — tracing observes the simulation without perturbing it;
3. the tracer's metrics registry exports valid Prometheus text
   (round-trips through :func:`repro.obs.metrics.parse_prometheus`) and
   the exported totals agree with the replayed counts;
4. a provenance manifest is written next to the JSONL with the required
   schema fields;
5. the **disabled-tracing overhead budget** holds: with no tracer
   attached, the instrumented hot path is within 5 % of an
   uninstrumented reference cache (min-of-N interleaved timing);
6. the **disabled span profiler is free**: with no recorder installed,
   ``span(...)`` returns the shared no-op singleton (identity, no
   allocation) and a call costs well under 5 µs;
7. the **status publisher throttles**: a tight update loop produces only
   a handful of writes, so a fast job loop cannot turn the status file
   into an I/O hot spot.

Exits non-zero on any failure.
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.eval.config import ExperimentConfig  # noqa: E402
from repro.eval.runner import run_trace  # noqa: E402
from repro.obs import (  # noqa: E402
    JSONLSink,
    Tracer,
    build_manifest,
    disabled_overhead_ratio,
    manifest_path_for,
    parse_prometheus,
    read_jsonl,
    replay_counts,
    write_manifest,
)
from repro.policies import make_policy  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402

OVERHEAD_BUDGET = 1.05

BENCHMARK = "462.libquantum"
POLICY = "dgippr"
LENGTH = 6_000


def traced_and_untraced(workdir):
    """Run the same trace twice (traced + untraced); return paths/stats."""
    config = ExperimentConfig(
        num_sets=16, assoc=16, trace_length=LENGTH, seed=0,
        apply_env_scale=False,
    )
    benchmark = get_benchmark(BENCHMARK)
    trace = benchmark.trace(
        0, config.trace_length, config.capacity_blocks, seed=config.seed
    )
    jsonl_path = os.path.join(workdir, "events.jsonl")

    registry = None
    with Tracer(sink=JSONLSink(jsonl_path), psel_every=100) as tracer:
        run_trace(
            make_policy(POLICY, config.num_sets, config.assoc),
            trace, config, tracer=tracer,
        )
        registry = tracer.registry

    untraced = {}
    run_trace(
        make_policy(POLICY, config.num_sets, config.assoc),
        trace, config, stats_sink=untraced,
    )

    manifest = build_manifest(config=config, policy=POLICY, seed=config.seed,
                              extra={"benchmark": BENCHMARK, "smoke": True})
    write_manifest(jsonl_path, manifest)
    return jsonl_path, registry, untraced


def main():
    with tempfile.TemporaryDirectory(prefix="repro-smoke-obs-") as workdir:
        jsonl_path, registry, untraced = traced_and_untraced(workdir)

        # 1. Schema: read_jsonl(validate=True) raises on any invalid line.
        events = list(read_jsonl(jsonl_path, validate=True))
        assert events, "traced run produced no events"
        print(f"schema OK               [{len(events)} events validate]")

        # 2. Replay fidelity: event counts == untraced CacheStats.
        counts = replay_counts(events)
        for key in ("accesses", "hits", "misses", "evictions", "bypasses"):
            assert counts[key] == untraced[key], (
                f"replay mismatch: {key} {counts[key]} != {untraced[key]}"
            )
        print(f"replay OK               [hits={counts['hits']} "
              f"misses={counts['misses']} evictions={counts['evictions']}]")

        # 3. Prometheus export parses and agrees with the replay.
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed, "Prometheus export parsed to nothing"
        hits = parsed.get(("repro_trace_events_total", (("kind", "hit"),)))
        misses = parsed.get(("repro_trace_events_total", (("kind", "miss"),)))
        assert hits == counts["hits"], f"prometheus hits {hits} != replay"
        assert misses == counts["misses"], (
            f"prometheus misses {misses} != replay"
        )
        assert ("repro_insertion_position_count", ()) in parsed or any(
            name == "repro_insertion_position_bucket"
            for name, _ in parsed
        ), "insertion-position histogram missing from export"
        print(f"prometheus OK           [{len(parsed)} samples parse]")

        # 4. Manifest sidecar with required provenance fields.
        import json

        with open(manifest_path_for(jsonl_path)) as handle:
            manifest = json.load(handle)
        for field in ("schema", "config_hash", "policy", "seed",
                      "code_version", "git_revision", "created_at"):
            assert field in manifest, f"manifest missing {field!r}"
        print(f"manifest OK             [schema={manifest['schema']}]")

    # 5. Overhead budget: disabled tracing within 5% of the reference.
    ratio = disabled_overhead_ratio(accesses=120_000, repeats=5)
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled-tracing overhead {ratio:.3f}x exceeds "
        f"{OVERHEAD_BUDGET:.2f}x budget"
    )
    print(f"overhead OK             [{ratio:.3f}x <= {OVERHEAD_BUDGET:.2f}x]")

    # 6. Disabled spans are free: no-op singleton identity + cheap calls.
    import time as _time

    from repro.obs.spans import current_recorder, span

    assert current_recorder() is None, "a recorder leaked into the smoke run"
    assert span("a") is span("b"), (
        "disabled span() must return the shared no-op singleton"
    )
    calls = 200_000
    started = _time.perf_counter()
    for _ in range(calls):
        with span("smoke.noop", x=1):
            pass
    per_call_us = (_time.perf_counter() - started) / calls * 1e6
    assert per_call_us < 5.0, (
        f"disabled span() costs {per_call_us:.2f}us/call (budget 5us)"
    )
    print(f"spans OK                [no-op identity, "
          f"{per_call_us:.2f}us/call disabled]")

    # 7. Status publisher throttling: tight loops produce few writes.
    from repro.obs.status import StatusPublisher

    with tempfile.TemporaryDirectory(prefix="repro-smoke-obs-") as workdir:
        publisher = StatusPublisher(
            os.path.join(workdir, "run-status.json"), kind="smoke",
            min_interval=0.2,
        )
        publisher.update(force=True, phase="tight-loop")
        for i in range(10_000):
            publisher.update(jobs_done=i)
        publisher.finalize(jobs_done=10_000)
        assert publisher.writes <= 5, (
            f"status publisher wrote {publisher.writes} times in a tight "
            "loop; throttling is broken"
        )
        print(f"status OK               [{publisher.writes} writes "
              f"for 10k updates]")
    print("smoke-obs: all checks passed")


if __name__ == "__main__":
    main()
