#!/usr/bin/env python3
"""Regenerate a full paper-vs-measured report as Markdown.

Runs the Figure 4/10/11/13 experiments plus the overhead table and writes a
self-contained report (default ``results/REPORT.md``) with per-benchmark
tables — the regenerable counterpart to the hand-annotated EXPERIMENTS.md.

Run:  python scripts/make_report.py [--length N] [--out PATH]
"""

import argparse
import os
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS  # noqa: E402
from repro.eval import (  # noqa: E402
    PolicySpec,
    default_config,
    format_overhead,
    normalized_mpki_table,
    overhead_table,
    run_suite,
    speedup_table,
)

PAPER_NUMBERS = """\
Paper reference points (4MB/16-way, SPEC CPU 2006): 4-DGIPPR +5.61%,
DRRIP +5.41%, PDP +5.69% geomean speedup over LRU; 15.6/15.6/16.4% on the
memory-intensive subset; normalized misses 91.0/91.5/90.2% of LRU; MIN at
67.5%.
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--out", default="results/REPORT.md")
    parser.add_argument("--workers", type=int, default=0)
    args = parser.parse_args()

    config = default_config(trace_length=args.length)
    sections = []

    fig4 = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("GIPLR", "giplr"),
        ],
        config=config,
        workers=args.workers,
    )
    sections.append(
        "## Figure 4 — GIPLR speedup over LRU\n\n```\n"
        + speedup_table(fig4, sort_by="GIPLR")
        + "\n```\n"
    )

    main_suite = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("2-DGIPPR", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        config=config,
        workers=args.workers,
    )
    sections.append(
        "## Figures 10/11 — MPKI normalized to LRU\n\n```\n"
        + normalized_mpki_table(main_suite)
        + "\n```\n"
    )
    sections.append(
        "## Figure 13 — speedup over LRU\n\n```\n"
        + speedup_table(
            main_suite,
            labels=["DRRIP", "PDP", "4-DGIPPR"],
        )
        + "\n```\n"
    )
    subset = main_suite.memory_intensive()
    lines = [f"## Memory-intensive subset ({len(subset)} benchmarks)\n"]
    for label in ("DRRIP", "PDP", "4-DGIPPR"):
        lines.append(
            f"* {label}: geomean speedup "
            f"{main_suite.geomean_speedup(label, benchmarks=subset):.4f}"
        )
    sections.append("\n".join(lines) + "\n")

    sections.append(
        "## Section 3.6 — replacement-state overhead (4MB/16-way)\n\n```\n"
        + format_overhead(overhead_table())
        + "\n```\n"
    )

    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    report = (
        "# Reproduction report\n\n"
        f"Generated {stamp}; config: {config!r}.\n\n"
        + PAPER_NUMBERS
        + "\n"
        + "\n".join(sections)
    )
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(report)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
