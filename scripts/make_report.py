#!/usr/bin/env python3
"""Regenerate a full paper-vs-measured report as Markdown.

Runs the Figure 4/10/11/13 experiments plus the overhead table and writes a
self-contained report (default ``results/REPORT.md``) with per-benchmark
tables — the regenerable counterpart to the hand-annotated EXPERIMENTS.md.

Simulation fans out over ``--workers`` processes and hits the on-disk
result cache (``~/.cache/repro-eval`` or ``--cache-dir``), so a rebuild
with unchanged code and config performs zero simulations.  Runner metrics
(jobs, cache hit rate, sims/sec, per-job wall times) land on stderr and in
``--metrics-json`` (default ``results/metrics.json``).

Run:  python scripts/make_report.py [--length N] [--out PATH] [--workers N]
"""

import argparse
import json
import os
import sys
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.vectors import DGIPPR2_WI_VECTORS, DGIPPR4_WI_VECTORS  # noqa: E402
from repro.eval import (  # noqa: E402
    PolicySpec,
    default_config,
    format_overhead,
    memory_intensive_summary,
    normalized_mpki_table,
    overhead_table,
    run_suite,
    speedup_table,
)
from repro.obs import build_manifest, write_manifest  # noqa: E402

PAPER_NUMBERS = """\
Paper reference points (4MB/16-way, SPEC CPU 2006): 4-DGIPPR +5.61%,
DRRIP +5.41%, PDP +5.69% geomean speedup over LRU; 15.6/15.6/16.4% on the
memory-intensive subset; normalized misses 91.0/91.5/90.2% of LRU; MIN at
67.5%.
"""


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=20_000)
    parser.add_argument("--out", default="results/REPORT.md")
    parser.add_argument("--workers", type=int, default=0)
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: ~/.cache/repro-eval)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--metrics-json", default="results/metrics.json",
                        help="where to write runner metrics as JSON")
    args = parser.parse_args()

    config = default_config(trace_length=args.length)
    cache = None if args.no_cache else (args.cache_dir or True)
    sections = []
    all_metrics = {}

    fig4 = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("PLRU", "plru"),
            PolicySpec("Random", "random"),
            PolicySpec("GIPLR", "giplr"),
        ],
        config=config,
        workers=args.workers,
        cache=cache,
    )
    all_metrics["fig4"] = fig4.metrics.as_dict()
    print(f"[repro-eval] fig4: {fig4.metrics.summary()}", file=sys.stderr)
    sections.append(
        "## Figure 4 — GIPLR speedup over LRU\n\n```\n"
        + speedup_table(fig4, sort_by="GIPLR")
        + "\n```\n"
    )

    main_suite = run_suite(
        [
            PolicySpec("LRU", "lru"),
            PolicySpec("DRRIP", "drrip"),
            PolicySpec("PDP", "pdp"),
            PolicySpec("GIPPR", "gippr"),
            PolicySpec("2-DGIPPR", "dgippr", {"ipvs": DGIPPR2_WI_VECTORS}),
            PolicySpec("4-DGIPPR", "dgippr", {"ipvs": DGIPPR4_WI_VECTORS}),
            PolicySpec("MIN", "belady"),
        ],
        config=config,
        workers=args.workers,
        cache=cache,
    )
    all_metrics["main"] = main_suite.metrics.as_dict()
    print(f"[repro-eval] main: {main_suite.metrics.summary()}", file=sys.stderr)
    sections.append(
        "## Figures 10/11 — MPKI normalized to LRU\n\n```\n"
        + normalized_mpki_table(main_suite)
        + "\n```\n"
    )
    sections.append(
        "## Figure 13 — speedup over LRU\n\n```\n"
        + speedup_table(
            main_suite,
            labels=["DRRIP", "PDP", "4-DGIPPR"],
        )
        + "\n```\n"
    )
    # memory_intensive_summary handles the legitimately-empty subset
    # (short configs) instead of crashing on an empty geometric mean.
    sections.append(
        "## Memory-intensive subset\n\n```\n"
        + memory_intensive_summary(
            main_suite, labels=("DRRIP", "PDP", "4-DGIPPR")
        )
        + "\n```\n"
    )

    sections.append(
        "## Section 3.6 — replacement-state overhead (4MB/16-way)\n\n```\n"
        + format_overhead(overhead_table())
        + "\n```\n"
    )

    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    report = (
        "# Reproduction report\n\n"
        f"Generated {stamp}; config: {config!r}.\n\n"
        + PAPER_NUMBERS
        + "\n"
        + "\n".join(sections)
    )
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(report)
    # Provenance sidecar: every number in the report traces back to the
    # exact config/code that produced it.
    manifest = build_manifest(
        config=config, extra={"report": os.path.abspath(args.out),
                              "workers": args.workers},
    )
    write_manifest(args.out, manifest)
    print(f"wrote {args.out} (+ manifest)")
    if args.metrics_json:
        os.makedirs(
            os.path.dirname(os.path.abspath(args.metrics_json)), exist_ok=True
        )
        with open(args.metrics_json, "w") as handle:
            json.dump(all_metrics, handle, indent=2)
        print(f"wrote {args.metrics_json}")


if __name__ == "__main__":
    main()
