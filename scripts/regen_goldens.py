#!/usr/bin/env python3
"""Regenerate the committed golden conformance corpus.

The corpus (``tests/goldens/conformance_goldens.json``) pins exact miss
counts for every registered policy on the deterministic golden matrix
(:func:`repro.verify.goldens.golden_matrix`).  ``repro verify`` and the
test suite fail on any drift, so this script is the *only* sanctioned way
to move those numbers — run it after an intentional behaviour change,
inspect the diff (it names every policy/stream/geometry that moved), and
commit the result together with the change that caused it.

A provenance manifest sidecar records the code digest, git revision and
kernel modes of the regeneration.

Usage::

    python scripts/regen_goldens.py [--out PATH] [--check]

``--check`` verifies the committed corpus against a fresh recomputation
and exits 1 on drift without writing anything (the CI mode).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.verify.goldens import (  # noqa: E402
    DEFAULT_GOLDENS_PATH,
    check_columnar_goldens,
    check_golden_corpus,
    check_serving_goldens,
    golden_matrix,
    load_golden_corpus,
    write_columnar_golden_corpus,
    write_golden_corpus,
    write_serving_golden_corpus,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help=f"corpus path (default: {DEFAULT_GOLDENS_PATH})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed corpus instead of rewriting it",
    )
    parser.add_argument(
        "--no-manifest", action="store_true",
        help="skip the provenance manifest sidecar",
    )
    parser.add_argument(
        "--skip-columnar", action="store_true",
        help="leave the columnar kernel-identity corpus untouched",
    )
    args = parser.parse_args()

    if args.check:
        drift, checked = check_golden_corpus(args.out)
        if not args.skip_columnar and args.out is None:
            col_drift, col_checked = check_columnar_goldens()
            drift = drift + col_drift
            checked += col_checked
        if args.out is None:
            srv_drift, srv_checked = check_serving_goldens()
            drift = drift + srv_drift
            checked += srv_checked
        if drift:
            print(f"golden corpus drift ({len(drift)} entries):",
                  file=sys.stderr)
            for line in drift:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"golden corpus OK: {checked} entries match")
        return 0

    previous = {}
    target = args.out or DEFAULT_GOLDENS_PATH
    try:
        previous = load_golden_corpus(target).get("entries", {})
    except (FileNotFoundError, ValueError):
        pass
    path = write_golden_corpus(target, with_manifest=not args.no_manifest)
    current = load_golden_corpus(path)["entries"]
    changed = {
        k: (previous.get(k), v)
        for k, v in current.items()
        if previous.get(k) != v
    }
    removed = sorted(set(previous) - set(current))
    print(f"wrote {path}: {len(current)} entries "
          f"({len(golden_matrix())} cells)")
    if changed:
        print(f"{len(changed)} entries changed:")
        for key in sorted(changed):
            old, new = changed[key]
            print(f"  {key}: {old} -> {new}")
    if removed:
        print(f"{len(removed)} entries removed:")
        for key in removed:
            print(f"  {key}")
    if not changed and not removed:
        print("no changes (corpus already matched)")
    if not args.skip_columnar and args.out is None:
        col_path = write_columnar_golden_corpus(
            with_manifest=not args.no_manifest
        )
        print(f"wrote {col_path} (columnar kernel-identity corpus)")
    if args.out is None:
        srv_path = write_serving_golden_corpus(
            with_manifest=not args.no_manifest
        )
        print(f"wrote {srv_path} (serving scenario corpus)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
